//! The `dcperf` CLI — the reproduction of DCPerf's `benchpress` driver:
//! list benchmarks, run one or all of them at a chosen scale, and write
//! JSON reports.
//!
//! ```sh
//! dcperf list
//! dcperf run                      # full suite, standard scale
//! dcperf run taobench --scale smoke --threads 8 --out ./reports
//! dcperf figures fig2 fig14      # regenerate paper tables/figures
//! ```

#![forbid(unsafe_code)]

use dcperf::core::{RunConfig, Scale, Suite};
use dcperf::workloads::register_all;

fn usage() -> ! {
    eprintln!(
        "usage:\n  dcperf list\n  dcperf run [benchmark] [--scale smoke|standard|production]\n             [--threads N] [--seed N] [--out DIR]\n  dcperf figures <id>... | all"
    );
    std::process::exit(2);
}

fn parse_scale(s: &str) -> Scale {
    match s {
        "smoke" => Scale::SmokeTest,
        "standard" => Scale::Standard,
        "production" => Scale::Production,
        other => {
            eprintln!("unknown scale '{other}' (smoke|standard|production)");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { usage() };

    match command.as_str() {
        "list" => {
            let mut suite = Suite::new();
            register_all(&mut suite);
            println!("{} benchmarks registered:", suite.len());
            for name in suite.benchmark_names() {
                println!("  {name}");
            }
        }
        "run" => {
            let mut config = RunConfig::new();
            let mut target: Option<String> = None;
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--scale" => {
                        config.scale = parse_scale(it.next().map(String::as_str).unwrap_or(""))
                    }
                    "--threads" => {
                        config.threads = it.next().and_then(|v| v.parse().ok()).or_else(|| usage())
                    }
                    "--seed" => {
                        config.seed = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage())
                    }
                    "--out" => {
                        config.output_dir =
                            it.next().map(std::path::PathBuf::from).or_else(|| usage())
                    }
                    other if !other.starts_with("--") && target.is_none() => {
                        target = Some(other.to_owned())
                    }
                    other => {
                        eprintln!("unknown argument '{other}'");
                        usage()
                    }
                }
            }
            let mut suite = Suite::new();
            register_all(&mut suite);
            match target {
                Some(name) => match suite.run(&name, &config) {
                    Ok(report) => match report.to_json() {
                        Ok(json) => println!("{json}"),
                        Err(e) => {
                            eprintln!("failed to serialize report: {e}");
                            std::process::exit(1);
                        }
                    },
                    Err(e) => {
                        eprintln!("benchmark failed: {e}");
                        std::process::exit(1);
                    }
                },
                None => match suite.run_all(&config) {
                    Ok(summary) => {
                        print!("{}", summary.render_table());
                        if let Some(dir) = &config.output_dir {
                            println!("reports written to {}", dir.display());
                        }
                    }
                    Err(e) => {
                        eprintln!("suite failed: {e}");
                        std::process::exit(1);
                    }
                },
            }
        }
        "figures" => {
            eprintln!("figures live in the dcperf-bench crate; run:");
            eprintln!(
                "  cargo run -p dcperf-bench --bin figures -- {}",
                if args.len() > 1 {
                    args[1..].join(" ")
                } else {
                    "all".into()
                }
            );
            std::process::exit(2);
        }
        _ => usage(),
    }
}
