//! DCPerf-RS — a Rust reproduction of the DCPerf datacenter benchmark
//! suite (Su et al., ISCA 2025).
//!
//! This umbrella crate re-exports every sub-crate of the workspace so that
//! examples and downstream users need only a single dependency:
//!
//! * [`core`] — the automation framework: [`core::Benchmark`] trait, suite
//!   runner, normalized scoring, hooks, and JSON reporting.
//! * [`workloads`] — the six DCPerf benchmarks (TaoBench, FeedSim,
//!   DjangoBench, MediaWiki, SparkBench, VideoTranscode), the
//!   datacenter-tax microbenchmarks, the CloudSuite comparison minis, and
//!   the kernel-scalability demo.
//! * [`platform`] — SKU specifications and the analytical microarchitecture
//!   model used to reproduce the paper's cross-SKU projections.
//! * [`rpc`], [`kvstore`], [`tax`], [`loadgen`], [`util`] — the substrates.
//! * `resilience` (feature `fault-injection`) — deadlines, retries,
//!   circuit breaking, and deterministic fault plans; enables the
//!   `workloads::chaos` SLO-under-chaos scenarios and the
//!   `chaos_taobench` example (`cargo chaos`).
//!
//! # Quickstart
//!
//! ```no_run
//! use dcperf::core::{Suite, RunConfig};
//! use dcperf::workloads::register_all;
//!
//! let mut suite = Suite::new();
//! register_all(&mut suite);
//! let config = RunConfig::smoke_test();
//! let summary = suite.run_all(&config)?;
//! println!("DCPerf overall score: {:.3}", summary.overall_score());
//! # Ok::<(), dcperf::core::Error>(())
//! ```

#![forbid(unsafe_code)]

pub use dcperf_core as core;
pub use dcperf_kvstore as kvstore;
pub use dcperf_loadgen as loadgen;
pub use dcperf_platform as platform;
#[cfg(feature = "fault-injection")]
pub use dcperf_resilience as resilience;
pub use dcperf_rpc as rpc;
pub use dcperf_tax as tax;
pub use dcperf_telemetry as telemetry;
pub use dcperf_util as util;
pub use dcperf_workloads as workloads;
