//! Architecture ablation (§2.2 / §6): quantify the two software-
//! architecture choices the paper says benchmarks must reproduce —
//! read-through caching and TAO's fast/slow thread-pool split — by
//! measuring both variants live on this machine.
//!
//! ```sh
//! cargo run --release --example architecture_ablation
//! ```

use dcperf::workloads::ablation::{compare_cache_architectures, compare_pool_architectures};
use std::time::Duration;

fn main() {
    println!("=== Ablation 1: read-through vs look-aside caching ===\n");
    let results = compare_cache_architectures(20_000, Duration::from_millis(600), 4, 42);
    println!(
        "{:<14} {:>10} {:>16} {:>10}",
        "architecture", "RPS", "rpc calls/req", "hit rate"
    );
    for r in &results {
        println!(
            "{:<14} {:>10.0} {:>16.3} {:>9.1}%",
            r.architecture,
            r.rps,
            r.rpc_calls_per_request,
            r.hit_rate * 100.0
        );
    }
    println!(
        "\nThe look-aside client pays ~3 RPC round trips per miss (GET, DB read,\n\
         SET-back); read-through pays one. That protocol difference is why §2.2\n\
         insists the benchmark reproduce the production cache architecture.\n"
    );

    println!("=== Ablation 2: fast/slow pools vs a single shared pool ===\n");
    let results = compare_pool_architectures(
        0.3,
        Duration::from_millis(2),
        Duration::from_millis(800),
        4,
        7,
    );
    println!(
        "{:<16} {:>14} {:>14} {:>10}",
        "architecture", "hit p95 (us)", "miss p95 (us)", "requests"
    );
    for r in &results {
        println!(
            "{:<16} {:>14.0} {:>14.0} {:>10}",
            r.architecture, r.hit_p95_us, r.miss_p95_us, r.requests
        );
    }
    println!(
        "\nWith one shared pool, 2ms DB misses queue ahead of cache hits and drag\n\
         the hit-path tail with them; TAO's split pools isolate the fast path —\n\
         the design §6 highlights under 'Modeling software architecture'."
    );
}
