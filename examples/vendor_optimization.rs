//! Vendor CPU optimization (§5.2 / Figure 15): express a microcode
//! cache-replacement improvement as miss multipliers, project its effect
//! on MediaWiki in the "vendor lab", and check whether SPEC would have
//! noticed anything at all.
//!
//! ```sh
//! cargo run --release --example vendor_optimization
//! ```

use dcperf::platform::profile::profiles;
use dcperf::platform::sku::SKU2;
use dcperf::platform::vendor::{project_impact, VendorOptimization};
use dcperf::platform::Model;

fn main() {
    let model = Model::new();
    let opt = VendorOptimization::cache_replacement_2023();
    println!("=== 2023 cache-replacement microcode optimization ===");
    println!(
        "expressed as miss multipliers: L1-I x{:.2}, L2 x{:.2}\n",
        opt.l1i_miss_mult, opt.l2_miss_mult
    );

    println!("Projected impact (DCPerf benchmark in the vendor lab, and the");
    println!("production workload it models):\n");
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>9} {:>9} {:>8}",
        "workload", "appPerf", "GIPS", "IPC", "L1I-miss", "LLC-miss", "MemBW"
    );
    for workload in [profiles::mediawiki(), profiles::fbweb_prod()] {
        let impact = project_impact(&model, &workload, &SKU2, &opt);
        println!(
            "{:<16} {:>+7.1}% {:>+7.1}% {:>+7.1}% {:>+8.0}% {:>+8.1}% {:>+7.1}%",
            impact.workload,
            impact.app_perf,
            impact.gips,
            impact.ipc,
            impact.l1i_miss,
            impact.llc_miss,
            impact.mem_bw
        );
    }

    println!("\nAnd on SPEC 2017 (small instruction footprints):");
    let mut max_gain = 0.0f64;
    for p in profiles::spec2017_suite() {
        let impact = project_impact(&model, &p, &SKU2, &opt);
        max_gain = max_gain.max(impact.app_perf);
    }
    println!("  largest SPEC benchmark gain: {max_gain:+.2}% — effectively invisible.");
    println!("  \"Without DCPerf, the vendor could not have made this optimization");
    println!("   relying only on the standard SPEC benchmarks.\" (§5.2)");
}
