//! SKU selection (§5.1): use the calibrated platform model to compare
//! candidate server SKUs the way Meta compared SKU-A and SKU-B — on
//! projected performance *and* Perf/Watt, per benchmark and suite-wide.
//!
//! ```sh
//! cargo run --release --example sku_selection
//! ```

use dcperf::platform::model::OsConfig;
use dcperf::platform::profile::profiles;
use dcperf::platform::{projection, sku, Model};

fn main() {
    let model = Model::new();
    let os = OsConfig::default();

    println!("=== Candidate evaluation: x86 SKU4 vs ARM SKU-A vs ARM SKU-B ===\n");
    println!("{}", sku::render_table4());

    println!("Projected throughput (relative to SKU1) per DCPerf benchmark:");
    println!(
        "{:<14} {:>7} {:>7} {:>7}",
        "benchmark", "SKU4", "SKU-A", "SKU-B"
    );
    for p in profiles::dcperf_suite() {
        let base = model.evaluate(&p, &sku::SKU1, &os).throughput;
        let t4 = model.evaluate(&p, &sku::SKU4, &os).throughput / base;
        let ta = model.evaluate(&p, &sku::SKU_A, &os).throughput / base;
        let tb = model.evaluate(&p, &sku::SKU_B, &os).throughput / base;
        println!("{:<14} {t4:>7.2} {ta:>7.2} {tb:>7.2}", p.name);
    }

    println!("\nPerf/Watt (normalized to SKU1), the §5.1 decision metric:");
    let ppw = projection::figure14(&model);
    println!(
        "{:<14} {:>7} {:>7} {:>7}",
        "benchmark", "SKU4", "SKU-A", "SKU-B"
    );
    let mut names: Vec<String> = Vec::new();
    for row in &ppw {
        if !names.contains(&row.benchmark) {
            names.push(row.benchmark.clone());
        }
    }
    for name in names {
        let get = |sku: &str| {
            ppw.iter()
                .find(|r| r.benchmark == name && r.sku == sku)
                .map(|r| r.value)
                .unwrap_or(0.0)
        };
        println!(
            "{name:<14} {:>7.2} {:>7.2} {:>7.2}",
            get("SKU4"),
            get("SKU-A"),
            get("SKU-B")
        );
    }

    let suite = |sku_name: &str| {
        ppw.iter()
            .find(|r| r.benchmark == "DCPerf" && r.sku == sku_name)
            .map(|r| r.value)
            .unwrap_or(0.0)
    };
    let a_gain = (suite("SKU-A") / suite("SKU4") - 1.0) * 100.0;
    let b_loss = (1.0 - suite("SKU-B") / suite("SKU4")) * 100.0;
    println!("\nDecision:");
    println!("  SKU-A beats SKU4 on suite Perf/Watt by {a_gain:+.0}%  -> select SKU-A");
    println!("  SKU-B trails SKU4 on suite Perf/Watt by {b_loss:.0}%  -> reject SKU-B");
    println!("  (its small L1 I-cache collapses on large-codebase web workloads)");
}
