//! Quickstart: install and run the full DCPerf-RS suite at smoke scale,
//! then print per-benchmark scores and the overall geometric-mean score.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dcperf::core::{RunConfig, Scale, Suite};
use dcperf::workloads::register_all;

fn main() -> Result<(), dcperf::core::Error> {
    let mut suite = Suite::new();
    register_all(&mut suite);

    // Smoke scale finishes in a couple of minutes on a laptop; switch to
    // Scale::Standard or Scale::Production for real measurements.
    let config = RunConfig {
        scale: Scale::SmokeTest,
        output_dir: Some(std::env::temp_dir().join("dcperf-quickstart")),
        ..RunConfig::new()
    };

    println!(
        "DCPerf-RS quickstart — {} benchmarks registered",
        suite.len()
    );
    println!(
        "running at {:?} scale on {} threads\n",
        config.scale,
        config.effective_threads()
    );

    let summary = suite.run_all(&config)?;
    for report in summary.reports() {
        let rps = report
            .metric_f64("requests_per_second")
            .or_else(|| report.metric_f64("rows_per_second"))
            .or_else(|| report.metric_f64("megapixels_per_second"))
            .or_else(|| report.metric_f64("ops_per_second"))
            .unwrap_or(0.0);
        println!(
            "{:<24} {:>14.1} (primary metric)  {:>6.2}s",
            report.benchmark, rps, report.duration_secs
        );
    }
    println!("\n{}", summary.render_table());
    if let Some(dir) = &config.output_dir {
        println!("JSON reports written to {}", dir.display());
    }
    Ok(())
}
