//! SLO-under-chaos: TaoBench's SLO-constrained peak throughput with and
//! without a fault plan, and what the retry layer buys back.
//!
//! Scenario (the resilience layer is active throughout — per-request
//! deadlines, retries under a budget, circuit breaking):
//!
//! 1. Find the peak offered load meeting the SLO on a healthy stack.
//! 2. Repeat under the chaos plan — 50 ms stalls on 10% of backing-store
//!    lookups plus 1% injected RPC errors — and compare peaks.
//! 3. At a fixed offered load with 20% of dispatches shed as overloaded,
//!    compare goodput with retries enabled vs disabled.
//!
//! ```sh
//! cargo chaos   # alias for:
//! cargo run --release --features fault-injection --example chaos_taobench
//! ```

use dcperf::core::SloSpec;
use dcperf::loadgen::find_peak_load;
use dcperf::resilience::RetryPolicy;
use dcperf::workloads::chaos::{run_tao_chaos, TaoChaosConfig};
use std::time::Duration;

fn base_config() -> TaoChaosConfig {
    TaoChaosConfig {
        duration: Duration::from_millis(300),
        key_space: 20_000,
        ..TaoChaosConfig::default()
    }
}

/// One peak search: open-loop trials at doubling offered rates, binary
/// refinement, judged against `slo`.
fn find_peak(label: &str, config: &TaoChaosConfig, slo: &SloSpec) -> f64 {
    let search = find_peak_load(
        250.0,
        50_000.0,
        4,
        |rate| {
            let trial = TaoChaosConfig {
                offered_rps: Some(rate),
                ..config.clone()
            };
            run_tao_chaos(&trial, slo).load
        },
        |report| {
            slo.evaluate(&report.latency_ns, report.error_rate())
                .is_met()
        },
    );
    let peak = search.peak_rps.unwrap_or(0.0);
    println!(
        "  {label:<11} peak {peak:>8.0} rps  ({} trials)",
        search.trials.len()
    );
    peak
}

fn main() {
    // The SLO sits above the 50 ms injected stall so an individual stall
    // is survivable; what kills the faulted stack is capacity: each stall
    // pins a slow-pool thread for 50 ms, so the slow lane saturates and
    // queueing delay blows the percentile at a far lower offered load.
    let slo = SloSpec::p95_under_ms(60.0).with_max_error_rate(0.05);
    println!("SLO: p95 < 60 ms, error rate <= 5%\n");

    println!("SLO-constrained peak throughput:");
    let healthy = find_peak("fault-free", &base_config().fault_free(), &slo);
    let faulted = find_peak("faulted", &base_config(), &slo);
    if faulted < healthy {
        println!(
            "  chaos costs {:.0}% of SLO-attained capacity\n",
            (1.0 - faulted / healthy.max(1.0)) * 100.0
        );
    } else {
        println!("  WARNING: faulted peak not below baseline — inspect the plan\n");
    }

    // Retries on/off at a fixed offered load while 20% of dispatches are
    // shed as overloaded (retryable; below the breaker trip ratio).
    let shed = TaoChaosConfig {
        store_latency_fault: None,
        rpc_error_rate: 0.0,
        request_deadline: None,
        overload_burst: Some((5, 1)),
        offered_rps: Some(2_000.0),
        retry_policy: RetryPolicy::new(4, Duration::from_micros(200))
            .with_max_backoff(Duration::from_millis(1)),
        ..base_config()
    };
    let with_retries = run_tao_chaos(&shed, &slo);
    let without_retries = run_tao_chaos(&shed.clone().without_retries(), &slo);
    println!("Goodput at 2000 rps offered with 20% overload shed:");
    println!(
        "  retries on   {:>6.0} rps  (error rate {:.2}%, {} retries)",
        with_retries.goodput_rps(),
        with_retries.load.error_rate() * 100.0,
        with_retries
            .snapshot
            .counter("rpc.resilient.retries")
            .unwrap_or(0),
    );
    println!(
        "  retries off  {:>6.0} rps  (error rate {:.2}%)",
        without_retries.goodput_rps(),
        without_retries.load.error_rate() * 100.0,
    );

    // One run with every fault class at once — stalls on the store,
    // latency + overload bursts on the RPC path, tight deadlines — so the
    // merged snapshot shows the full resilience layer reacting.
    let everything = TaoChaosConfig {
        rpc_latency_fault: Some((0.2, Duration::from_millis(40))),
        request_deadline: Some(Duration::from_millis(10)),
        overload_burst: Some((10, 2)),
        ..base_config()
    };
    let full = run_tao_chaos(&everything, &slo);
    println!("\nResilience counters under the full chaos plan:");
    for name in [
        "rpc.requests",
        "rpc.resilient.retries",
        "rpc.deadline_exceeded",
        "rpc.deadline_shed",
        "rpc.breaker.open_transitions",
        "rpc.breaker.rejected",
        "loadgen.rejected",
        "chaos.rpc.injected_overloads",
        "chaos.store.injected_latency_ops",
    ] {
        if let Some(value) = full.snapshot.counter(name) {
            println!("  {name:<34} {value}");
        }
    }
}
