//! TaoBench tuning: sweep the cache-capacity fraction and watch the
//! hit-rate / throughput tradeoff — the §4.3 calibration loop in which
//! the DCPerf authors tune TaoBench's working set against the production
//! cache's memory profile.
//!
//! ```sh
//! cargo run --release --example taobench_tuning
//! ```

use dcperf::core::{RunConfig, RunContext};
use dcperf::workloads::taobench::{TaoBench, TaoBenchConfig};
use std::time::Duration;

fn main() -> Result<(), dcperf::core::Error> {
    println!("cache fraction | hit rate | RPS      | p95 (ms)");
    println!("---------------+----------+----------+---------");
    for fraction in [0.1, 0.25, 0.5, 0.8] {
        let bench = TaoBench::with_config(TaoBenchConfig {
            base_key_space: 50_000,
            cache_fraction: fraction,
            db_latency: Duration::from_micros(120),
            base_duration: Duration::from_millis(300),
            ..TaoBenchConfig::default()
        });
        let mut ctx = RunContext::new(RunConfig::smoke_test(), "taobench");
        let report = dcperf::core::Benchmark::run(&bench, &mut ctx)?;
        println!(
            "{:>13.0}% | {:>7.1}% | {:>8.0} | {:>7.2}",
            fraction * 100.0,
            report.metric_f64("cache_hit_rate").unwrap_or(0.0) * 100.0,
            report.metric_f64("requests_per_second").unwrap_or(0.0),
            report.metric_f64("request_p95_ms").unwrap_or(0.0),
        );
    }
    println!("\nBigger caches absorb more of the Zipf head: hit rate and RPS climb");
    println!("together while the p95 (dominated by the slow-path DB latency) falls.");
    Ok(())
}
