//! Kernel scalability (§5.3 / Figure 16): project TaoBench across Linux
//! 6.4/6.9 and 176-/384-core SKUs with the model, then demonstrate the
//! underlying mechanism — a globally contended load counter versus the
//! ratelimited fix — live on this machine.
//!
//! ```sh
//! cargo run --release --example kernel_scalability
//! ```

use dcperf::platform::{projection, Model};
use dcperf::workloads::kernelsim::{run_contention, CounterPolicy};
use std::time::Duration;

fn main() {
    println!("=== Model projection (Figure 16) ===");
    for cell in projection::figure16(&Model::new()) {
        println!(
            "  {:<14} {:<12} {:>6.0}%",
            cell.sku, cell.kernel, cell.relative_percent
        );
    }
    println!("  paper: 100% / 162% / 103% / 249%\n");

    println!("=== Live mechanism demo on this host ===");
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let small = cores.max(2);
    let large = cores * 4;
    println!("  (host has {cores} cores; using {small} vs {large} threads)\n");
    for (threads, label) in [(small, "baseline"), (large, "oversubscribed")] {
        let contended = run_contention(
            threads,
            Duration::from_millis(400),
            CounterPolicy::EveryUpdate,
        );
        let ratelimited = run_contention(
            threads,
            Duration::from_millis(400),
            CounterPolicy::Ratelimited { flush_every: 64 },
        );
        println!(
            "  {label:<15} {threads:>3} threads: every-update {:>9.0}/s | ratelimited {:>9.0}/s ({:+.0}%)",
            contended.throughput,
            ratelimited.throughput,
            (ratelimited.throughput / contended.throughput - 1.0) * 100.0
        );
    }
    println!("\nThe ratelimit win grows with core count — the 6.9 patch in miniature.");
    println!("(On a 1-2 core host both variants look alike; the contention needs");
    println!(" real cache-line ping-pong between cores to hurt.)");
}
