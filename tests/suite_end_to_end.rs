//! End-to-end integration: the full DCPerf-RS suite runs through the
//! framework, produces scored JSON reports, and the overall score is the
//! geometric mean of the per-benchmark scores.

use dcperf::core::{BenchmarkReport, RunConfig, Scale, Suite};
use dcperf::workloads::register_all;

fn smoke_config(dir: &std::path::Path) -> RunConfig {
    RunConfig {
        scale: Scale::SmokeTest,
        output_dir: Some(dir.to_path_buf()),
        sample_interval_ms: 50,
        ..RunConfig::new()
    }
}

#[test]
fn full_suite_runs_and_scores() {
    let dir = std::env::temp_dir().join(format!("dcperf-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut suite = Suite::new();
    register_all(&mut suite);
    let summary = suite
        .run_all(&smoke_config(&dir))
        .expect("the full suite must run at smoke scale");

    // Every benchmark produced a report and a score.
    assert_eq!(summary.reports().len(), suite.len());
    assert_eq!(summary.scores().len(), suite.len());
    for (name, score) in summary.scores().iter() {
        assert!(score > 0.0, "{name} scored {score}");
    }
    // The overall score is the geomean of the individual scores.
    let product: f64 = summary.scores().iter().map(|(_, s)| s.ln()).sum();
    let expected = (product / summary.scores().len() as f64).exp();
    assert!((summary.overall_score() - expected).abs() < 1e-9);

    // JSON reports landed on disk and parse back.
    for report in summary.reports() {
        let path = dir.join(format!("{}.json", report.benchmark));
        assert!(path.exists(), "missing {}", path.display());
        let parsed = BenchmarkReport::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(parsed.benchmark, report.benchmark);
        assert!(!parsed.metrics.is_empty());
        // System info is stamped (§3.1's "key information about the
        // system being tested").
        assert!(parsed.system.logical_cores >= 1);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn suite_reports_include_hook_series() {
    let mut suite = Suite::new();
    register_all(&mut suite);
    let config = RunConfig {
        scale: Scale::SmokeTest,
        sample_interval_ms: 25,
        ..RunConfig::new()
    };
    // One benchmark is enough to validate the hook pipeline.
    let report = suite.run("mediawiki", &config).expect("mediawiki runs");
    assert!(
        !report.hooks.is_empty(),
        "default hooks must be registered and reported"
    );
    let hook_names: Vec<&str> = report.hooks.iter().map(|h| h.hook.as_str()).collect();
    for expected in ["cpu_util", "mem_stat", "net_stat", "cpu_freq"] {
        assert!(hook_names.contains(&expected), "missing hook {expected}");
    }
    // On Linux the CPU and memory hooks must have real samples.
    #[cfg(target_os = "linux")]
    {
        let cpu = report.hooks.iter().find(|h| h.hook == "cpu_util").unwrap();
        let total = cpu
            .series
            .get("cpu_util_total")
            .expect("cpu series sampled");
        assert!(!total.values.is_empty());
        assert!(total.mean >= 0.0 && total.mean <= 100.0);
    }
}

#[test]
fn individual_benchmark_runs_are_reproducible_in_shape() {
    // Two runs of the deterministic SparkBench must agree on all
    // data-derived metrics (times differ, data cannot).
    let mut suite = Suite::new();
    register_all(&mut suite);
    let config = RunConfig {
        scale: Scale::SmokeTest,
        ..RunConfig::new()
    };
    let a = suite.run("spark_bench", &config).unwrap();
    let b = suite.run("spark_bench", &config).unwrap();
    for metric in [
        "scanned_rows",
        "surviving_rows",
        "joined_rows",
        "result_groups",
    ] {
        assert_eq!(
            a.metric_f64(metric),
            b.metric_f64(metric),
            "{metric} differs"
        );
    }
}
