//! Cross-crate telemetry integration: drive the load generator against a
//! real RPC echo server and check that every layer's view of the run
//! agrees — the loadgen report, its embedded telemetry snapshot, the RPC
//! client/server stats, and the server's own telemetry registry.

use dcperf_loadgen::{ClosedLoop, EndpointMix, Service, ServiceError};
use dcperf_rpc::{InProcClient, InProcServer, PoolConfig, Request, Response};
use std::time::Duration;

/// Adapts an RPC client to the loadgen `Service` trait: one request per
/// load-generator call, echoing an 8-byte body.
struct EchoService {
    client: InProcClient,
}

impl Service for EchoService {
    fn call(&self, _endpoint: usize, seq: u64) -> Result<usize, ServiceError> {
        match self.client.call("echo", seq.to_le_bytes().to_vec()) {
            Ok(resp) => Ok(resp.body.len()),
            Err(e) => Err(ServiceError::new(e.to_string())),
        }
    }
}

#[test]
fn loadgen_snapshot_matches_rpc_stats() {
    const REQUESTS: u64 = 400;

    let server = InProcServer::start(
        |req: &Request| Response::ok(req.body.clone()),
        PoolConfig::single_lane(2),
    );
    let client = server.client();
    let mix = EndpointMix::uniform(&["echo"]).expect("non-empty mix");
    let report = ClosedLoop::new(mix)
        .workers(2)
        .duration(Duration::from_secs(30)) // the request cap ends the run
        .max_requests(REQUESTS)
        .run(
            &EchoService {
                client: client.clone(),
            },
            0xD0_0D,
        );

    // The echo handler cannot fail, so every attempt completed.
    assert!(report.completed > 0 && report.completed <= REQUESTS);
    assert_eq!(report.errors, 0);

    // The report's embedded snapshot and its plain fields agree.
    assert_eq!(
        report.telemetry.counter("loadgen.completed"),
        Some(report.completed)
    );
    assert_eq!(report.telemetry.counter("loadgen.errors"), Some(0));
    let latency = report
        .telemetry
        .histogram("loadgen.latency_ns")
        .expect("latency digest present");
    assert_eq!(latency.count, report.completed);
    assert_eq!(latency.p50, report.latency_ns.p50());

    // Each completion was exactly one RPC round trip.
    assert_eq!(client.stats().requests(), report.completed);
    assert_eq!(client.stats().responses(), report.completed);
    assert_eq!(client.stats().errors(), 0);
    assert_eq!(client.stats().shed(), 0);

    // The server's registry snapshot agrees with the stats accessors,
    // including the pool-lane counters fed by the same registry.
    let snap = server.telemetry().snapshot();
    assert_eq!(snap.counter("rpc.requests"), Some(report.completed));
    assert_eq!(snap.counter("rpc.responses"), Some(report.completed));
    assert_eq!(
        snap.counter("rpc.bytes_sent"),
        Some(client.stats().bytes_sent())
    );
    assert_eq!(snap.counter("rpc.pool.fast_jobs"), Some(report.completed));
    assert_eq!(snap.counter("rpc.pool.slow_jobs"), Some(0));
    assert_eq!(snap.counter("rpc.pool.shed_jobs"), Some(0));

    server.shutdown();
}
