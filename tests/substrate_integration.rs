//! Cross-crate integration: the substrates composed the way the
//! benchmarks compose them — RPC carrying serialized values, the cache in
//! front of the backing store, tax codecs on the response path.

use dcperf::kvstore::{BackingStore, BackingStoreConfig, Cache, CacheConfig};
use dcperf::rpc::{InProcServer, PoolConfig, Request, Response, Value};
use dcperf::tax::{compress, crypto};
use std::sync::Arc;

/// A miniature TAO stack: RPC → cache → backing store, with compressed
/// and MACed responses. Verifies the full data path end to end.
#[test]
fn rpc_cache_store_pipeline_round_trips() {
    let store = Arc::new(BackingStore::new(
        BackingStoreConfig::tao_like().without_latency(),
        123,
    ));
    let cache = Arc::new(Cache::new(CacheConfig::with_capacity_bytes(4 << 20)));
    let key_for_mac = [9u8; 32];

    let handler_store = Arc::clone(&store);
    let handler_cache = Arc::clone(&cache);
    let server = InProcServer::start(
        move |req: &Request| {
            let Some(object) = handler_cache.get_or_load(&req.body, |k| handler_store.lookup(k))
            else {
                return Response::error("missing");
            };
            // Response path: serialize → compress → MAC, like FeedSim.
            let value = Value::Struct(vec![
                (1, Value::Bin(req.body.to_vec())),
                (2, Value::Bin(object.to_vec())),
            ])
            .encode();
            let mut packed = compress::lz_compress(&value);
            let mac = crypto::hmac_sha256(&key_for_mac, &packed);
            packed.extend_from_slice(&mac);
            Response::ok(packed)
        },
        PoolConfig::fast_slow(2, 1),
    );

    let client = server.client();
    for i in 0..200u64 {
        let key = (i % 50).to_le_bytes().to_vec();
        let resp = client.call("get", key.clone()).expect("call succeeds");
        // Verify MAC, decompress, decode, compare against the store.
        let (packed, mac) = resp.body.split_at(resp.body.len() - 32);
        assert_eq!(
            mac,
            crypto::hmac_sha256(&key_for_mac, packed),
            "MAC mismatch"
        );
        let value_bytes = compress::lz_decompress(packed).expect("decompresses");
        let value = Value::decode(&value_bytes).expect("decodes");
        assert_eq!(value.field(1).unwrap().as_bin().unwrap(), &key[..]);
        let object = value.field(2).unwrap().as_bin().unwrap();
        assert_eq!(
            object,
            store.lookup(&key).unwrap(),
            "cache served wrong object"
        );
    }
    // 50 distinct keys over 200 requests: 150 hits.
    assert_eq!(cache.stats().misses(), 50);
    assert_eq!(cache.stats().hits(), 150);
    server.shutdown();
}

/// The load generator drives an RPC service and the latency histogram
/// reflects injected service delays.
#[test]
fn loadgen_measures_rpc_service_latency() {
    use dcperf::loadgen::{ClosedLoop, EndpointMix, Service, ServiceError};
    use std::time::{Duration, Instant};

    struct SlowRpc {
        client: dcperf::rpc::InProcClient,
    }
    impl Service for SlowRpc {
        fn call(&self, _e: usize, _seq: u64) -> Result<usize, ServiceError> {
            self.client
                .call("work", vec![0u8; 16])
                .map(|r| r.body.len())
                .map_err(|e| ServiceError::new(e.to_string()))
        }
    }

    let server = InProcServer::start(
        |_req: &Request| {
            let until = Instant::now() + Duration::from_micros(300);
            while Instant::now() < until {
                std::hint::spin_loop();
            }
            Response::ok(vec![1; 8])
        },
        PoolConfig::single_lane(2),
    );
    let service = SlowRpc {
        client: server.client(),
    };
    let report = ClosedLoop::new(EndpointMix::uniform(&["work"]).unwrap())
        .workers(2)
        .duration(Duration::from_millis(150))
        .run(&service, 5);
    assert!(report.completed > 50);
    // P50 must reflect the injected 300µs service time (plus dispatch).
    assert!(
        report.latency_ns.p50() >= 280_000,
        "p50 {}ns below injected service time",
        report.latency_ns.p50()
    );
    server.shutdown();
}
