//! Offline shim for the `serde_json` crate.
//!
//! Renders the serde shim's [`serde::Value`] tree as JSON text and parses
//! JSON text back into it. Covers the calls this workspace makes:
//! [`to_string`], [`to_string_pretty`], and [`from_str`].

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(err: serde::Error) -> Self {
        Self::new(err.to_string())
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails for the supported value shapes; the `Result` mirrors the
/// real `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to JSON indented with two spaces.
///
/// # Errors
///
/// Never fails for the supported value shapes; the `Result` mirrors the
/// real `serde_json` signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a deserializable value.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value).map_err(Error::from)
}

// --- writer ----------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => write_f64(out, *v),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` keeps a fractional part ("3.0") so floats survive a
        // round-trip as floats; real serde_json does the same.
        out.push_str(&format!("{v:?}"));
    } else {
        // JSON has no NaN/Infinity; real serde_json errors here, but for a
        // metrics sink a lossy null is more useful than a failed report.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character '{}' at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape sequence"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by the writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_round_trip() {
        let value = Value::Object(vec![
            ("name".to_string(), Value::String("kvstore".to_string())),
            ("count".to_string(), Value::U64(3)),
            ("ratio".to_string(), Value::F64(0.5)),
            (
                "tags".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let compact = to_string(&value).unwrap();
        assert_eq!(
            compact,
            r#"{"name":"kvstore","count":3,"ratio":0.5,"tags":[true,null]}"#
        );
        let parsed: Value = from_str(&compact).unwrap();
        assert_eq!(parsed, value);
        let pretty = to_string_pretty(&value).unwrap();
        assert!(pretty.contains("\n  \"name\": \"kvstore\""));
        let reparsed: Value = from_str(&pretty).unwrap();
        assert_eq!(reparsed, value);
    }

    #[test]
    fn floats_keep_fractional_form() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        let v: f64 = from_str("3.0").unwrap();
        assert!((v - 3.0).abs() < f64::EPSILON);
    }

    #[test]
    fn string_escapes() {
        let original = "line1\nline2\t\"quoted\" \\ done".to_string();
        let json = to_string(&original).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn negative_and_large_integers() {
        let v: i64 = from_str("-42").unwrap();
        assert_eq!(v, -42);
        let v: u64 = from_str("18446744073709551615").unwrap();
        assert_eq!(v, u64::MAX);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,2").is_err());
        assert!(from_str::<Value>("1 trailing").is_err());
    }
}
