//! Offline shim for the `crossbeam` crate.
//!
//! Provides the subset of the crossbeam API this workspace uses: a bounded
//! MPMC channel (`channel::bounded`) with cloneable senders *and*
//! receivers, and an unbounded concurrent queue (`queue::SegQueue`). Built
//! on `std::sync` primitives; semantics (disconnect on last drop, `Full`
//! vs `Disconnected` on `try_send`) follow crossbeam.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        cap: usize,
        not_empty: Condvar,
        not_full: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Creates a bounded MPMC channel.
    ///
    /// A capacity of zero (crossbeam's rendezvous channel) is approximated
    /// with a single-slot buffer, which preserves hand-off ordering for the
    /// gate patterns this workspace uses.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cap: cap.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// All receivers have been dropped.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders have been dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and all senders have been dropped.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued, or returns it if every
        /// receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(msg));
                }
                if queue.len() < self.shared.cap {
                    queue.push_back(msg);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                queue = self
                    .shared
                    .not_full
                    .wait_timeout(queue, Duration::from_millis(10))
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        }

        /// Enqueues without blocking, or reports why it could not.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if queue.len() >= self.shared.cap {
                return Err(TrySendError::Full(msg));
            }
            queue.push_back(msg);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives, or returns [`RecvError`] once
        /// the channel is empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .not_empty
                    .wait_timeout(queue, Duration::from_millis(10))
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        }

        /// Dequeues without blocking, or reports why it could not.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(msg) = queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Blocks for at most `timeout` waiting for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let wait = (deadline - now).min(Duration::from_millis(10));
                queue = self
                    .shared
                    .not_empty
                    .wait_timeout(queue, wait)
                    .unwrap_or_else(|e| e.into_inner())
                    .0;
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }
}

/// Concurrent queues.
pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// An unbounded MPMC queue (mutex-backed stand-in for crossbeam's
    /// segmented lock-free queue).
    #[derive(Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            Self {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Appends an element to the back of the queue.
        pub fn push(&self, value: T) {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(value);
        }

        /// Removes the front element, if any.
        pub fn pop(&self) -> Option<T> {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
        }

        /// Number of queued elements.
        pub fn len(&self) -> usize {
            self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> std::fmt::Debug for SegQueue<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SegQueue {{ len: {} }}", self.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, RecvTimeoutError, TrySendError};
    use super::queue::SegQueue;
    use std::time::Duration;

    #[test]
    fn mpmc_delivery() {
        let (tx, rx) = bounded::<u32>(8);
        let rx2 = rx.clone();
        let t = std::thread::spawn(move || {
            let mut got = 0;
            while rx2.recv().is_ok() {
                got += 1;
            }
            got
        });
        for i in 0..100 {
            tx.send(i).unwrap();
            if i % 2 == 0 {
                let _ = rx.try_recv();
            }
        }
        drop(tx);
        drop(rx);
        let from_thread = t.join().unwrap();
        assert!(from_thread > 0);
    }

    #[test]
    fn try_send_full_and_disconnected() {
        let (tx, rx) = bounded::<u8>(1);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        drop(rx);
        assert!(matches!(tx.try_send(3), Err(TrySendError::Disconnected(3))));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = bounded::<u8>(1);
        let err = rx.recv_timeout(Duration::from_millis(20)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
    }

    #[test]
    fn recv_disconnect_drains_first() {
        let (tx, rx) = bounded::<u8>(4);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn segqueue_fifo() {
        let q = SegQueue::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }
}
