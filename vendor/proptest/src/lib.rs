//! Offline shim for the `proptest` crate.
//!
//! A deterministic property-testing harness exposing the API subset this
//! workspace's tests use: `Strategy` with `prop_map`/`prop_recursive`/
//! `boxed`, range and `any::<T>()` strategies, `Just`, `prop_oneof!`,
//! `proptest::collection::vec`, simple `".{lo,hi}"` string patterns, and
//! the `proptest!`/`prop_assert*!`/`prop_assume!` macros.
//!
//! Differences from real proptest: no shrinking (a failing case reports
//! its case number and message, not a minimized input), and generation is
//! seeded from the test name so runs are fully reproducible.

#![forbid(unsafe_code)]

use std::ops::Range;
use std::rc::Rc;

// --- rng -------------------------------------------------------------------

/// Deterministic generator (splitmix64) used to drive strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform index in `[0, bound)`; `bound` must be nonzero.
    pub fn next_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "proptest shim: empty choice set");
        (self.next_u64() % bound as u64) as usize
    }
}

// --- strategy core ---------------------------------------------------------

/// A generator of values of type `Self::Value`.
///
/// Object-safe: combinator methods carry `where Self: Sized` so
/// `dyn Strategy<Value = T>` (see [`BoxedStrategy`]) works.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy behind a cheaply-cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds a bounded-depth recursive strategy: `recurse` wraps the
    /// previous level, and generation picks one of the constructed levels.
    ///
    /// `_desired_size` and `_expected_branch_size` are accepted for
    /// signature compatibility; depth alone bounds recursion here.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut level = self.boxed();
        let mut levels = vec![level.clone()];
        for _ in 0..depth {
            level = recurse(level).boxed();
            levels.push(level.clone());
        }
        Union::new(levels).boxed()
    }
}

/// A type-erased, cloneable strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !arms.is_empty(),
            "proptest shim: prop_oneof! needs at least one arm"
        );
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.next_index(self.arms.len());
        self.arms[idx].generate(rng)
    }
}

// --- primitive strategies --------------------------------------------------

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "proptest shim: empty range strategy");
                let span = (hi - lo) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "proptest shim: empty range strategy");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Guard against rounding up to the exclusive bound.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Minimal string-pattern strategy: `".{lo,hi}"` generates `lo..=hi`
/// printable ASCII characters; any other pattern is produced literally.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        if let Some((lo, hi)) = parse_dot_repeat(self) {
            let len = lo + rng.next_index(hi - lo + 1);
            (0..len)
                .map(|_| char::from(b' ' + rng.next_index(95) as u8))
                .collect()
        } else {
            (*self).to_string()
        }
    }
}

fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?;
    let rest = rest.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    let lo: usize = lo.trim().parse().ok()?;
    let hi: usize = hi.trim().parse().ok()?;
    (lo <= hi).then_some((lo, hi))
}

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary: Sized + 'static {
    /// The canonical strategy for this type.
    fn arbitrary() -> BoxedStrategy<Self>;
}

/// The canonical strategy for `T` (`any::<T>()`).
pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    T::arbitrary()
}

struct FnStrategy<T>(fn(&mut TestRng) -> T);

impl<T> Strategy for FnStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> BoxedStrategy<Self> {
                FnStrategy(|rng: &mut TestRng| rng.next_u64() as $t).boxed()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary() -> BoxedStrategy<Self> {
        FnStrategy(|rng: &mut TestRng| rng.next_u64() & 1 == 1).boxed()
    }
}

// --- tuples ----------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A:0);
impl_tuple_strategy!(A:0, B:1);
impl_tuple_strategy!(A:0, B:1, C:2);
impl_tuple_strategy!(A:0, B:1, C:2, D:3);
impl_tuple_strategy!(A:0, B:1, C:2, D:3, E:4);
impl_tuple_strategy!(A:0, B:1, C:2, D:3, E:4, F:5);
impl_tuple_strategy!(A:0, B:1, C:2, D:3, E:4, F:5, G:6);
impl_tuple_strategy!(A:0, B:1, C:2, D:3, E:4, F:5, G:6, H:7);
impl_tuple_strategy!(A:0, B:1, C:2, D:3, E:4, F:5, G:6, H:7, I:8);
impl_tuple_strategy!(A:0, B:1, C:2, D:3, E:4, F:5, G:6, H:7, I:8, J:9);
impl_tuple_strategy!(A:0, B:1, C:2, D:3, E:4, F:5, G:6, H:7, I:8, J:9, K:10);
impl_tuple_strategy!(A:0, B:1, C:2, D:3, E:4, F:5, G:6, H:7, I:8, J:9, K:10, L:11);

// --- arrays ----------------------------------------------------------------

/// Fixed-size array strategies.
pub mod array {
    use super::{Strategy, TestRng};

    /// Strategy producing `[S::Value; N]` with independent elements.
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }

    /// 32-element array with elements drawn from `element`.
    pub fn uniform32<S: Strategy>(element: S) -> UniformArray<S, 32> {
        UniformArray { element }
    }
}

// --- collections -----------------------------------------------------------

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for variable-length vectors.
    pub struct VecStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    /// Generates vectors whose length falls in `sizes` (exclusive upper
    /// bound) with elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
        assert!(
            sizes.start < sizes.end,
            "proptest shim: empty size range for collection::vec"
        );
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.sizes.end - self.sizes.start;
            let len = self.sizes.start + rng.next_index(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// --- harness ---------------------------------------------------------------

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases that must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered this case out; it does not count.
    Reject,
    /// A `prop_assert*!` failed.
    Fail(String),
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: String) -> Self {
        Self::Fail(msg)
    }
}

fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for b in text.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Drives one property: runs `config.cases` accepted cases, panicking on
/// the first failure with the case number and message. Used by the
/// `proptest!` macro; not part of the public proptest API.
pub fn run_proptest<F>(config: ProptestConfig, name: &str, mut property: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name);
    let mut passed: u32 = 0;
    let mut rejected: u64 = 0;
    let max_rejects = u64::from(config.cases).saturating_mul(64).max(4096);
    let mut case: u64 = 0;
    while passed < config.cases {
        let seed = base.wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = TestRng::new(seed);
        case += 1;
        match property(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "proptest shim: '{name}' rejected {rejected} cases via prop_assume!"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest case #{case} failed in '{name}': {msg}")
            }
        }
    }
}

// --- macros ----------------------------------------------------------------

/// Declares property tests (subset of real proptest's macro grammar).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal recursion for [`proptest!`]; do not use directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_proptest($cfg, stringify!($name), |__proptest_rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                #[allow(clippy::redundant_closure_call)]
                let __proptest_outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                __proptest_outcome
            });
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {:?} != {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {:?} != {:?}: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {:?} == {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {:?} == {:?}: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Discards the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let v = Strategy::generate(&(10u64..20), &mut rng);
            assert!((10..20).contains(&v));
            let f = Strategy::generate(&(-2.0f64..3.0), &mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn string_pattern_lengths() {
        let mut rng = crate::TestRng::new(3);
        for _ in 0..200 {
            let s = Strategy::generate(&".{0,24}", &mut rng);
            assert!(s.len() <= 24);
            assert!(s.chars().all(|c| c.is_ascii_graphic() || c == ' '));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec(any::<u64>(), 1..10);
        let a: Vec<u64> = Strategy::generate(&strat, &mut crate::TestRng::new(42));
        let b: Vec<u64> = Strategy::generate(&strat, &mut crate::TestRng::new(42));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_round_trip(x in 0u64..1000, flip in any::<bool>(), s in ".{0,8}") {
            prop_assume!(x != 999);
            prop_assert!(x < 1000);
            let doubled = x * 2;
            prop_assert_eq!(doubled, x * 2, "mismatch for {} (flip={})", x, flip);
            prop_assert!(s.len() <= 8);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1u8), Just(2u8)].prop_map(|x| x * 10)) {
            prop_assert!(v == 10 || v == 20);
        }
    }
}
