//! Offline shim for the `criterion` crate.
//!
//! A minimal wall-clock benchmark harness with criterion's calling
//! convention (`criterion_group!`/`criterion_main!`, benchmark groups,
//! throughput annotations). It auto-calibrates the iteration count to a
//! ~100 ms measurement window and prints mean time per iteration plus
//! derived throughput. No statistical analysis, baselines, or HTML
//! reports; good enough to run `cargo bench` offline and eyeball numbers.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How work per iteration is expressed when reporting throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Top-level benchmark driver handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            throughput: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, None, f);
        self
    }
}

/// A named collection of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the amount of work each iteration represents.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks a function within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, self.throughput, f);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` `self.iters` times and records the elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, mut f: F) {
    // Calibrate: grow the iteration count until one batch takes >= 10 ms,
    // then scale to a ~100 ms measurement window.
    let mut iters: u64 = 1;
    let per_iter = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(10) || iters >= 1 << 30 {
            break b.elapsed.as_secs_f64() / iters as f64;
        }
        iters = iters.saturating_mul(8);
    };
    let measure_iters = ((0.1 / per_iter.max(1e-12)) as u64).clamp(1, 1 << 32);
    let mut b = Bencher {
        iters: measure_iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() / measure_iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => format!(", {:.1} MiB/s", n as f64 / mean / (1 << 20) as f64),
        Throughput::Elements(n) => format!(", {:.0} elem/s", n as f64 / mean),
    });
    println!(
        "  {name}: {} per iter ({measure_iters} iters){}",
        format_duration(mean),
        rate.unwrap_or_default()
    );
}

fn format_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_elapsed() {
        let mut b = Bencher {
            iters: 100,
            elapsed: Duration::ZERO,
        };
        b.iter(|| std::hint::black_box(3u64.wrapping_mul(7)));
        assert!(b.elapsed > Duration::ZERO || b.iters == 100);
    }

    #[test]
    fn format_duration_scales() {
        assert!(format_duration(2.0).ends_with(" s"));
        assert!(format_duration(2e-3).ends_with(" ms"));
        assert!(format_duration(2e-6).ends_with(" us"));
        assert!(format_duration(2e-9).ends_with(" ns"));
    }
}
