//! Offline shim for the `serde` crate.
//!
//! Real serde is a zero-overhead serialization *framework*; this shim is a
//! small value-tree serializer: types convert to and from an in-memory
//! [`Value`] and `serde_json` (the sibling shim) renders that tree as JSON.
//! The `#[derive(Serialize, Deserialize)]` macros are provided by the
//! in-tree `serde_derive` proc-macro, which supports the shapes this
//! workspace uses: structs with named fields, fieldless enums, externally
//! tagged data-carrying enums, and `#[serde(untagged)]` newtype enums.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when the value exceeds `i64::MAX`).
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `i64`, if numeric and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as `u64`, if numeric and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::I64(v) => Some(*v as f64),
            Value::U64(v) => Some(*v as f64),
            _ => None,
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the value's shape does not match `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Looks up a field in object entries (derive-macro helper).
///
/// # Errors
///
/// Returns an [`Error`] naming the missing field.
pub fn field<'a>(entries: &'a [(String, Value)], name: &str) -> Result<&'a Value, Error> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field '{name}'")))
}

// --- primitive impls -------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|v| v as f32)
            .ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for std::path::PathBuf {
    fn to_value(&self) -> Value {
        Value::String(self.to_string_lossy().into_owned())
    }
}

impl Deserialize for std::path::PathBuf {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(std::path::PathBuf::from)
            .ok_or_else(|| Error::custom("expected path string"))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-3i64).to_value()), Ok(-3));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(String::from_value(&"x".to_value()), Ok("x".to_owned()));
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(f64::from_value(&Value::I64(3)), Ok(3.0));
        assert_eq!(u64::from_value(&Value::I64(3)), Ok(3));
        assert!(u64::from_value(&Value::I64(-1)).is_err());
    }

    #[test]
    fn option_and_collections() {
        let v: Option<u32> = None;
        assert_eq!(v.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        let xs = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&xs.to_value()), Ok(xs));
        let mut m = BTreeMap::new();
        m.insert("a".to_owned(), 1u64);
        assert_eq!(BTreeMap::<String, u64>::from_value(&m.to_value()), Ok(m));
    }

    #[test]
    fn missing_field_reports_name() {
        let err = field(&[], "scale").unwrap_err();
        assert!(err.to_string().contains("scale"));
    }
}
