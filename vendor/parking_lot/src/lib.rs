//! Offline shim for the `parking_lot` crate.
//!
//! Implements the subset of the `parking_lot` API used by this workspace
//! (non-poisoning `Mutex` and `RwLock`) on top of `std::sync`. Poisoned
//! locks are recovered transparently, matching `parking_lot`'s behaviour of
//! not propagating panics through lock acquisition.

#![forbid(unsafe_code)]

use std::fmt;

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
///
/// The inner `Option` is `Some` for the guard's whole life except inside
/// [`Condvar::wait`], which must move the `std` guard through
/// `std::sync::Condvar::wait` by value.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    fn inner(&self) -> &std::sync::MutexGuard<'a, T> {
        self.0
            .as_ref()
            .expect("guard invariant: Some outside wait()")
    }

    fn inner_mut(&mut self) -> &mut std::sync::MutexGuard<'a, T> {
        self.0
            .as_mut()
            .expect("guard invariant: Some outside wait()")
    }
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner()
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner_mut()
    }
}

/// A condition variable usable with [`Mutex`], mirroring
/// `parking_lot::Condvar` (no poisoning, no spurious `Result`s).
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Blocks on the condition variable, atomically releasing `guard`'s
    /// lock; the lock is reacquired before returning. Spurious wakeups
    /// are possible — callers re-check their predicate in a loop.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard
            .0
            .take()
            .expect("guard invariant: Some outside wait()");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every blocked waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock whose acquisitions never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = std::sync::Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cvar.wait(&mut ready);
            }
            *ready
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        assert!(waiter.join().expect("waiter thread"));
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
