//! Offline shim for the `serde_derive` crate.
//!
//! Generates `Serialize`/`Deserialize` impls for the in-tree `serde` shim
//! by parsing the raw token stream directly (no `syn`/`quote`, which are
//! unavailable offline). Supported shapes — the ones this workspace uses:
//!
//! * structs with named fields;
//! * enums with unit, newtype, and tuple variants (externally tagged);
//! * `#[serde(untagged)]` enums whose variants are all newtype or unit.
//!
//! Unsupported shapes (generics, tuple structs, struct variants) panic at
//! expansion time with a clear message rather than emitting wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Input {
    name: String,
    untagged: bool,
    kind: Kind,
}

enum Kind {
    /// Named struct: field names in declaration order.
    Struct(Vec<String>),
    /// Enum: `(variant name, tuple arity)`; arity 0 means a unit variant.
    Enum(Vec<(String, usize)>),
}

/// Derives the shim's `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let body = match &parsed.kind {
        Kind::Struct(fields) => gen_struct_serialize(&parsed.name, fields),
        Kind::Enum(variants) => gen_enum_serialize(&parsed.name, variants, parsed.untagged),
    };
    body.parse()
        .expect("serde shim derive: generated invalid Serialize impl")
}

/// Derives the shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let body = match &parsed.kind {
        Kind::Struct(fields) => gen_struct_deserialize(&parsed.name, fields),
        Kind::Enum(variants) => gen_enum_deserialize(&parsed.name, variants, parsed.untagged),
    };
    body.parse()
        .expect("serde shim derive: generated invalid Deserialize impl")
}

// --- parsing ---------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut untagged = false;

    // Outer attributes (doc comments arrive as #[doc = "..."]).
    while i + 1 < tokens.len() {
        let is_hash = matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#');
        if !is_hash {
            break;
        }
        if let TokenTree::Group(g) = &tokens[i + 1] {
            if g.delimiter() == Delimiter::Bracket {
                let text = g.stream().to_string();
                if text.starts_with("serde") && text.contains("untagged") {
                    untagged = true;
                }
                i += 2;
                continue;
            }
        }
        break;
    }

    i = skip_visibility(&tokens, i);

    let is_struct = match &tokens[i] {
        TokenTree::Ident(id) if id.to_string() == "struct" => true,
        TokenTree::Ident(id) if id.to_string() == "enum" => false,
        other => panic!("serde shim derive: expected struct or enum, found `{other}`"),
    };
    i += 1;

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected a type name, found `{other}`"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic type `{name}` is not supported");
        }
    }

    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde shim derive: tuple struct `{name}` is not supported")
            }
            Some(_) => i += 1,
            None => panic!("serde shim derive: no braced body found for `{name}`"),
        }
    };

    let kind = if is_struct {
        Kind::Struct(parse_named_fields(body, &name))
    } else {
        Kind::Enum(parse_variants(body, &name))
    };
    Input {
        name,
        untagged,
        kind,
    }
}

fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn skip_attributes(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        let is_hash = matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#');
        let is_bracket =
            matches!(&tokens[i + 1], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket);
        if is_hash && is_bracket {
            i += 2;
        } else {
            break;
        }
    }
    i
}

fn parse_named_fields(body: TokenStream, type_name: &str) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        i = skip_attributes(&tokens, i);
        i = skip_visibility(&tokens, i);
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                panic!("serde shim derive: expected field name in `{type_name}`, found `{other}`")
            }
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!(
                "serde shim derive: expected `:` after `{type_name}.{field}`, found `{other}`"
            ),
        }
        // Skip the field type up to the next comma outside of angle brackets.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(field);
    }
    fields
}

fn parse_variants(body: TokenStream, type_name: &str) -> Vec<(String, usize)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        i = skip_attributes(&tokens, i);
        let variant = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                panic!("serde shim derive: expected variant name in `{type_name}`, found `{other}`")
            }
        };
        i += 1;
        let mut arity = 0;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                arity = count_tuple_elements(g.stream());
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!(
                    "serde shim derive: struct variant `{type_name}::{variant}` is not supported"
                )
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!(
                    "serde shim derive: explicit discriminant on `{type_name}::{variant}` is not supported"
                )
            }
            _ => {}
        }
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            Some(other) => panic!(
                "serde shim derive: expected `,` after `{type_name}::{variant}`, found `{other}`"
            ),
        }
        variants.push((variant, arity));
    }
    variants
}

fn count_tuple_elements(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle_depth = 0i32;
    let mut count = 1;
    for (idx, tok) in tokens.iter().enumerate() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            // A trailing comma does not start another element.
            TokenTree::Punct(p)
                if p.as_char() == ',' && angle_depth == 0 && idx + 1 < tokens.len() =>
            {
                count += 1;
            }
            _ => {}
        }
    }
    count
}

// --- code generation -------------------------------------------------------

const IMPL_ATTRS: &str = "#[automatically_derived]\n#[allow(unused_mut, clippy::all)]\n";

fn gen_struct_serialize(name: &str, fields: &[String]) -> String {
    let mut pushes = String::new();
    for f in fields {
        pushes.push_str(&format!(
            "entries.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
        ));
    }
    format!(
        "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
         {pushes}\
         ::serde::Value::Object(entries)\n\
         }}\n\
         }}"
    )
}

fn gen_struct_deserialize(name: &str, fields: &[String]) -> String {
    let mut inits = String::new();
    for f in fields {
        inits.push_str(&format!(
            "{f}: ::serde::Deserialize::from_value(::serde::field(entries, \"{f}\")?)?,\n"
        ));
    }
    format!(
        "{IMPL_ATTRS}impl ::serde::Deserialize for {name} {{\n\
         fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         let entries = value.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for {name}\"))?;\n\
         ::std::result::Result::Ok({name} {{\n\
         {inits}\
         }})\n\
         }}\n\
         }}"
    )
}

fn tuple_bindings(arity: usize) -> String {
    (0..arity)
        .map(|k| format!("x{k}"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn gen_enum_serialize(name: &str, variants: &[(String, usize)], untagged: bool) -> String {
    let mut arms = String::new();
    for (variant, arity) in variants {
        let arm = if untagged {
            match arity {
                0 => format!("{name}::{variant} => ::serde::Value::Null,\n"),
                1 => format!("{name}::{variant}(x0) => ::serde::Serialize::to_value(x0),\n"),
                _ => panic!(
                    "serde shim derive: untagged tuple variant `{name}::{variant}` is not supported"
                ),
            }
        } else {
            match arity {
                0 => format!(
                    "{name}::{variant} => ::serde::Value::String(\"{variant}\".to_string()),\n"
                ),
                1 => format!(
                    "{name}::{variant}(x0) => ::serde::Value::Object(::std::vec![(\"{variant}\".to_string(), ::serde::Serialize::to_value(x0))]),\n"
                ),
                n => {
                    let binds = tuple_bindings(*n);
                    let items = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(x{k})"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!(
                        "{name}::{variant}({binds}) => ::serde::Value::Object(::std::vec![(\"{variant}\".to_string(), ::serde::Value::Array(::std::vec![{items}]))]),\n"
                    )
                }
            }
        };
        arms.push_str(&arm);
    }
    format!(
        "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         match self {{\n\
         {arms}\
         }}\n\
         }}\n\
         }}"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[(String, usize)], untagged: bool) -> String {
    if untagged {
        return gen_untagged_deserialize(name, variants);
    }
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for (variant, arity) in variants {
        match arity {
            0 => unit_arms.push_str(&format!(
                "\"{variant}\" => ::std::result::Result::Ok({name}::{variant}),\n"
            )),
            1 => tagged_arms.push_str(&format!(
                "\"{variant}\" => {{ return ::std::result::Result::Ok({name}::{variant}(::serde::Deserialize::from_value(inner)?)); }}\n"
            )),
            n => {
                let items = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                    .collect::<Vec<_>>()
                    .join(", ");
                tagged_arms.push_str(&format!(
                    "\"{variant}\" => {{\n\
                     let items = inner.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for {name}::{variant}\"))?;\n\
                     if items.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::custom(\"wrong arity for {name}::{variant}\")); }}\n\
                     return ::std::result::Result::Ok({name}::{variant}({items}));\n\
                     }}\n"
                ));
            }
        }
    }
    format!(
        "{IMPL_ATTRS}impl ::serde::Deserialize for {name} {{\n\
         fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         if let ::std::option::Option::Some(s) = value.as_str() {{\n\
         return match s {{\n\
         {unit_arms}\
         other => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown variant '{{other}}' for {name}\"))),\n\
         }};\n\
         }}\n\
         if let ::std::option::Option::Some(entries) = value.as_object() {{\n\
         if entries.len() == 1 {{\n\
         let (tag, inner) = &entries[0];\n\
         match tag.as_str() {{\n\
         {tagged_arms}\
         _ => {{}}\n\
         }}\n\
         }}\n\
         }}\n\
         ::std::result::Result::Err(::serde::Error::custom(\"no matching variant for {name}\"))\n\
         }}\n\
         }}"
    )
}

fn gen_untagged_deserialize(name: &str, variants: &[(String, usize)]) -> String {
    let mut attempts = String::new();
    for (variant, arity) in variants {
        match arity {
            0 => attempts.push_str(&format!(
                "if matches!(value, ::serde::Value::Null) {{ return ::std::result::Result::Ok({name}::{variant}); }}\n"
            )),
            1 => attempts.push_str(&format!(
                "{{\n\
                 let attempt: ::std::result::Result<_, ::serde::Error> = ::serde::Deserialize::from_value(value);\n\
                 if let ::std::result::Result::Ok(x) = attempt {{ return ::std::result::Result::Ok({name}::{variant}(x)); }}\n\
                 }}\n"
            )),
            _ => panic!(
                "serde shim derive: untagged tuple variant `{name}::{variant}` is not supported"
            ),
        }
    }
    format!(
        "{IMPL_ATTRS}impl ::serde::Deserialize for {name} {{\n\
         fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {attempts}\
         ::std::result::Result::Err(::serde::Error::custom(\"no untagged variant matched for {name}\"))\n\
         }}\n\
         }}"
    )
}
