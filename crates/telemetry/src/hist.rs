//! Striped concurrent histogram with wait-free recording.
//!
//! Load generators record one latency sample per completed request from
//! many worker threads at once. A mutex-guarded histogram would serialize
//! exactly the operation the benchmark is trying to measure, so
//! [`ConcurrentHistogram`] stripes the bucket array per thread slot: each
//! recording thread owns (modulo striping) a cache-line-aligned stripe of
//! atomic bucket counters, and `record` is a handful of relaxed atomic
//! RMWs with no locks, no CAS loops, and no allocation.
//!
//! The bucket layout is *identical* to [`dcperf_util::Histogram`] — the
//! merged [`snapshot`](ConcurrentHistogram::snapshot) reconstructs a plain
//! `Histogram` that is bit-for-bit equal to single-threaded recording of
//! the same samples (exact count, min, max, and sum; same buckets, hence
//! same percentiles).

use dcperf_util::{Histogram, NUM_BUCKETS};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Process-wide thread slot assignment: each thread that ever records gets
/// a stable small integer, mapped onto stripes modulo the stripe count.
static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SLOT: usize = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
}

fn thread_slot() -> usize {
    THREAD_SLOT.with(|slot| *slot)
}

/// One thread stripe. Aligned to a cache line so concurrent writers on
/// different stripes do not false-share the min/max/sum words.
#[repr(align(64))]
struct Stripe {
    counts: Vec<AtomicU64>,
    min: AtomicU64,
    max: AtomicU64,
    /// Exact sample sum as a 128-bit value split across two atomics:
    /// `sum_lo` carries into `sum_hi` on wrap-around (detected by the
    /// returned previous value of `fetch_add`).
    sum_lo: AtomicU64,
    sum_hi: AtomicU64,
}

impl Stripe {
    fn new() -> Self {
        Self {
            counts: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            sum_lo: AtomicU64::new(0),
            sum_hi: AtomicU64::new(0),
        }
    }
}

/// A log-bucketed histogram that many threads can record into without
/// locking.
///
/// # Examples
///
/// ```
/// use dcperf_telemetry::ConcurrentHistogram;
/// use std::sync::Arc;
///
/// let hist = Arc::new(ConcurrentHistogram::new());
/// let handles: Vec<_> = (0..4)
///     .map(|t| {
///         let hist = Arc::clone(&hist);
///         std::thread::spawn(move || {
///             for v in 1..=1000u64 {
///                 hist.record(v * (t + 1));
///             }
///         })
///     })
///     .collect();
/// for h in handles {
///     h.join().unwrap();
/// }
/// let merged = hist.snapshot();
/// assert_eq!(merged.count(), 4000);
/// assert_eq!(merged.min(), 1);
/// ```
pub struct ConcurrentHistogram {
    stripes: Vec<Stripe>,
}

impl ConcurrentHistogram {
    /// Creates a histogram with one stripe per available core (capped at
    /// 64 to bound snapshot cost on very wide machines).
    pub fn new() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(8);
        Self::with_stripes(cores.min(64))
    }

    /// Creates a histogram with an explicit stripe count (min 1).
    pub fn with_stripes(stripes: usize) -> Self {
        Self {
            stripes: (0..stripes.max(1)).map(|_| Stripe::new()).collect(),
        }
    }

    /// Number of stripes.
    pub fn stripes(&self) -> usize {
        self.stripes.len()
    }

    /// Records one sample. Wait-free: five relaxed atomic RMWs on the
    /// calling thread's stripe.
    pub fn record(&self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples.
    pub fn record_n(&self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let stripe = &self.stripes[thread_slot() % self.stripes.len()];
        stripe.counts[Histogram::bucket_index(value)].fetch_add(n, Ordering::Relaxed);
        stripe.min.fetch_min(value, Ordering::Relaxed);
        stripe.max.fetch_max(value, Ordering::Relaxed);
        let add = (value as u128 * n as u128) as u64; // low 64 bits
        let high = ((value as u128 * n as u128) >> 64) as u64;
        let prev = stripe.sum_lo.fetch_add(add, Ordering::Relaxed);
        let carry = u64::from(prev.checked_add(add).is_none());
        if high > 0 || carry > 0 {
            stripe.sum_hi.fetch_add(high + carry, Ordering::Relaxed);
        }
    }

    /// Total recorded samples across all stripes.
    pub fn count(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| {
                s.counts
                    .iter()
                    .map(|c| c.load(Ordering::Relaxed))
                    .sum::<u64>()
            })
            .sum()
    }

    /// Merges all stripes into a plain [`Histogram`].
    ///
    /// Exact — equal to a single-threaded `Histogram` fed the same
    /// samples — provided recording has quiesced (e.g. workers joined).
    /// A snapshot taken mid-flight is a consistent-enough approximation
    /// but may miss in-progress records.
    pub fn snapshot(&self) -> Histogram {
        let mut counts = vec![0u64; NUM_BUCKETS];
        let mut min = u64::MAX;
        let mut max = 0u64;
        let mut sum = 0u128;
        for stripe in &self.stripes {
            for (total, bucket) in counts.iter_mut().zip(stripe.counts.iter()) {
                *total += bucket.load(Ordering::Relaxed);
            }
            min = min.min(stripe.min.load(Ordering::Relaxed));
            max = max.max(stripe.max.load(Ordering::Relaxed));
            let lo = stripe.sum_lo.load(Ordering::Relaxed);
            let hi = stripe.sum_hi.load(Ordering::Relaxed);
            sum += ((hi as u128) << 64) | lo as u128;
        }
        Histogram::from_parts(counts, min, max, sum)
    }

    /// Clears all stripes (between benchmark phases; not linearizable
    /// with concurrent `record`s).
    pub fn reset(&self) {
        for stripe in &self.stripes {
            for bucket in &stripe.counts {
                bucket.store(0, Ordering::Relaxed);
            }
            stripe.min.store(u64::MAX, Ordering::Relaxed);
            stripe.max.store(0, Ordering::Relaxed);
            stripe.sum_lo.store(0, Ordering::Relaxed);
            stripe.sum_hi.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for ConcurrentHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ConcurrentHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ConcurrentHistogram {{ stripes: {}, count: {} }}",
            self.stripes.len(),
            self.count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_is_empty_histogram() {
        let hist = ConcurrentHistogram::with_stripes(4);
        assert_eq!(hist.snapshot(), Histogram::new());
        assert_eq!(hist.count(), 0);
    }

    #[test]
    fn single_thread_matches_oracle() {
        let concurrent = ConcurrentHistogram::with_stripes(3);
        let mut oracle = Histogram::new();
        let mut x = 9u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = x >> 20;
            concurrent.record(v);
            oracle.record(v);
        }
        assert_eq!(concurrent.snapshot(), oracle);
    }

    #[test]
    fn record_n_matches_oracle() {
        let concurrent = ConcurrentHistogram::with_stripes(2);
        let mut oracle = Histogram::new();
        concurrent.record_n(1_000, 57);
        oracle.record_n(1_000, 57);
        concurrent.record_n(u64::MAX, 3);
        oracle.record_n(u64::MAX, 3);
        assert_eq!(concurrent.snapshot(), oracle);
    }

    #[test]
    fn sum_survives_u64_overflow() {
        let concurrent = ConcurrentHistogram::with_stripes(1);
        let mut oracle = Histogram::new();
        // Three near-max samples overflow a u64 accumulator twice.
        for _ in 0..3 {
            concurrent.record(u64::MAX - 1);
            oracle.record(u64::MAX - 1);
        }
        let snap = concurrent.snapshot();
        assert_eq!(snap, oracle);
        assert!((snap.mean() - (u64::MAX - 1) as f64).abs() < 1e4);
    }

    #[test]
    fn reset_clears_everything() {
        let hist = ConcurrentHistogram::with_stripes(2);
        hist.record(5);
        hist.record(1 << 40);
        hist.reset();
        assert_eq!(hist.snapshot(), Histogram::new());
    }
}
