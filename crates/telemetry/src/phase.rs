//! Phase-scoped timing spans.
//!
//! Benchmark runs move through a fixed lifecycle — setup, warmup,
//! measure, teardown — and a report is only interpretable if it says how
//! long each phase took (a 2-second measure window after a 10-minute
//! setup is a very different experiment than the reverse). A [`PhaseSpan`]
//! is an RAII guard: construct it when the phase starts, and its `Drop`
//! records the elapsed wall time under `"<benchmark>/<phase>"`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A benchmark lifecycle phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Phase {
    /// Building datasets, starting servers, populating caches.
    Setup,
    /// Traffic that runs before measurement to reach steady state.
    Warmup,
    /// The measured interval that produces the reported metrics.
    Measure,
    /// Draining and shutting down.
    Teardown,
}

impl Phase {
    /// Stable lowercase name used in span keys and reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Setup => "setup",
            Phase::Warmup => "warmup",
            Phase::Measure => "measure",
            Phase::Teardown => "teardown",
        }
    }

    /// All phases in lifecycle order.
    pub fn all() -> [Phase; 4] {
        [Phase::Setup, Phase::Warmup, Phase::Measure, Phase::Teardown]
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Accumulated timing for one `"<benchmark>/<phase>"` key.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseSummary {
    /// Number of completed spans.
    pub calls: u64,
    /// Total wall time across those spans, in nanoseconds.
    pub total_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_are_stable() {
        let names: Vec<_> = Phase::all().iter().map(|p| p.name()).collect();
        assert_eq!(names, ["setup", "warmup", "measure", "teardown"]);
    }

    #[test]
    fn phase_serializes_as_variant_name() {
        let json = serde_json::to_string(&Phase::Measure).unwrap();
        assert_eq!(json, "\"Measure\"");
        let back: Phase = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Phase::Measure);
    }
}
