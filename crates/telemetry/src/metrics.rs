//! The central metric-name schema.
//!
//! Every metric name the suite records is declared here, once. Call
//! sites use these constants instead of string literals, so a typo'd
//! counter name is a compile error and an orphaned one is dead code —
//! and `cargo analyze` machine-enforces both directions: dotted metric
//! literals at telemetry call sites must be declared here
//! (`metrics-schema`), and every constant declared here must be
//! referenced somewhere in the workspace (`metrics-orphan`).
//!
//! Three kinds of declaration, distinguished by naming convention (the
//! analyzer parses this file structurally):
//!
//! * plain consts — fully-specified metric names (`loadgen.completed`);
//! * `PREFIX_*` consts — namespaces composable with the [`suffix`]
//!   vocabulary via [`scoped`] (`rpc.breaker` + `rejected`);
//! * `DYN_*` consts — prefixes whose remaining segments are generated at
//!   runtime (`loadgen.endpoint.3.get`).

// --- load generator ------------------------------------------------------

/// Calls that completed successfully.
pub const LOADGEN_COMPLETED: &str = "loadgen.completed";
/// Calls that failed with a generic service error.
pub const LOADGEN_ERRORS: &str = "loadgen.errors";
/// Calls that exhausted their deadline budget.
pub const LOADGEN_DEADLINE_EXCEEDED: &str = "loadgen.deadline_exceeded";
/// Calls rejected by overload shedding or an open circuit breaker.
pub const LOADGEN_REJECTED: &str = "loadgen.rejected";
/// Open-loop arrivals dropped because the queue was full.
pub const LOADGEN_DROPPED: &str = "loadgen.dropped";
/// Response payload bytes received.
pub const LOADGEN_RESPONSE_BYTES: &str = "loadgen.response_bytes";
/// End-to-end call latency histogram (nanoseconds).
pub const LOADGEN_LATENCY_NS: &str = "loadgen.latency_ns";
/// Per-endpoint completion counters: `loadgen.endpoint.<index>.<name>`.
pub const DYN_LOADGEN_ENDPOINT: &str = "loadgen.endpoint";

// --- RPC substrate -------------------------------------------------------

/// Transport counters (`requests`, `responses`, `errors`, `shed`,
/// `deadline_exceeded`, `deadline_shed`, `bytes_sent`, `bytes_received`).
pub const PREFIX_RPC: &str = "rpc";
/// Thread-pool lane counters (`fast_jobs`, `slow_jobs`, `shed_jobs`).
pub const PREFIX_RPC_POOL: &str = "rpc.pool";
/// The resilient client's circuit breaker, sharing the server registry.
pub const PREFIX_RPC_BREAKER: &str = "rpc.breaker";
/// Pipelined-connection depth tracking (`inflight`, `inflight_peak`).
pub const PREFIX_RPC_PIPELINE: &str = "rpc.pipeline";
/// Batched response-burst writes (`flushes`, `responses`).
pub const PREFIX_RPC_BATCH: &str = "rpc.batch";
/// Retries performed by the resilient client.
pub const RPC_RESILIENT_RETRIES: &str = "rpc.resilient.retries";
/// Calls abandoned because the retry budget was exhausted.
pub const RPC_RESILIENT_BUDGET_EXHAUSTED: &str = "rpc.resilient.budget_exhausted";

// --- resilience ----------------------------------------------------------

/// Default namespace of a breaker with a private registry.
pub const PREFIX_RESILIENCE_BREAKER: &str = "resilience.breaker";

// --- kvstore -------------------------------------------------------------

/// Cache counters (`hits`, `misses`, `insertions`, `evictions`,
/// `expirations`, `load_failures`, `singleflight_fills`,
/// `singleflight_waits`, `singleflight_failed_waits`).
pub const PREFIX_CACHE: &str = "kvstore.cache";

// --- chaos / fault injection --------------------------------------------

/// Injection tallies of the backing-store fault plan.
pub const PREFIX_CHAOS_STORE: &str = "chaos.store";
/// Injection tallies of the RPC-dispatch fault plan.
pub const PREFIX_CHAOS_RPC: &str = "chaos.rpc";
/// Injection tallies of the DjangoBench front-of-app fault plan.
pub const PREFIX_CHAOS_DJANGO: &str = "chaos.django";

/// The suffix vocabulary composable with any `PREFIX_*` namespace.
pub mod suffix {
    /// Requests sent.
    pub const REQUESTS: &str = "requests";
    /// Responses received.
    pub const RESPONSES: &str = "responses";
    /// Application errors.
    pub const ERRORS: &str = "errors";
    /// Work shed due to overload.
    pub const SHED: &str = "shed";
    /// Deadline-exceeded outcomes (client view).
    pub const DEADLINE_EXCEEDED: &str = "deadline_exceeded";
    /// Expired work shed server-side.
    pub const DEADLINE_SHED: &str = "deadline_shed";
    /// Payload bytes sent.
    pub const BYTES_SENT: &str = "bytes_sent";
    /// Payload bytes received.
    pub const BYTES_RECEIVED: &str = "bytes_received";
    /// Jobs accepted into the fast lane.
    pub const FAST_JOBS: &str = "fast_jobs";
    /// Jobs accepted into the slow lane.
    pub const SLOW_JOBS: &str = "slow_jobs";
    /// Jobs rejected because a lane queue was full.
    pub const SHED_JOBS: &str = "shed_jobs";
    /// Requests currently in flight on pipelined connections (gauge).
    pub const INFLIGHT: &str = "inflight";
    /// Highest in-flight depth observed (running-maximum gauge).
    pub const INFLIGHT_PEAK: &str = "inflight_peak";
    /// Coalesced response-burst writes to the transport.
    pub const FLUSHES: &str = "flushes";
    /// Breaker transitions to open.
    pub const OPEN_TRANSITIONS: &str = "open_transitions";
    /// Breaker transitions to half-open.
    pub const HALF_OPEN_TRANSITIONS: &str = "half_open_transitions";
    /// Breaker transitions back to closed.
    pub const CLOSE_TRANSITIONS: &str = "close_transitions";
    /// Admissions rejected (open breaker or overload).
    pub const REJECTED: &str = "rejected";
    /// Cache hits.
    pub const HITS: &str = "hits";
    /// Cache misses.
    pub const MISSES: &str = "misses";
    /// Cache insertions (sets plus read-through fills).
    pub const INSERTIONS: &str = "insertions";
    /// Cache evictions for capacity.
    pub const EVICTIONS: &str = "evictions";
    /// Cache entries removed because their TTL elapsed.
    pub const EXPIRATIONS: &str = "expirations";
    /// Read-through loads that returned nothing.
    pub const LOAD_FAILURES: &str = "load_failures";
    /// Cache misses that ran the loader as the single-flight leader.
    pub const SINGLEFLIGHT_FILLS: &str = "singleflight_fills";
    /// Cache misses that parked behind another caller's in-flight fill.
    pub const SINGLEFLIGHT_WAITS: &str = "singleflight_waits";
    /// Parked waiters released by a failed (or panicked) fill.
    pub const SINGLEFLIGHT_FAILED_WAITS: &str = "singleflight_failed_waits";
    /// Operations a fault plan inspected.
    pub const OPERATIONS: &str = "operations";
    /// Operations that had latency injected.
    pub const INJECTED_LATENCY_OPS: &str = "injected_latency_ops";
    /// Total injected latency, in nanoseconds.
    pub const INJECTED_LATENCY_NS: &str = "injected_latency_ns";
    /// Operations failed by error injection.
    pub const INJECTED_ERRORS: &str = "injected_errors";
    /// Operations shed by overload injection.
    pub const INJECTED_OVERLOADS: &str = "injected_overloads";
}

/// Joins a namespace prefix and a suffix into a full metric name.
///
/// ```
/// use dcperf_telemetry::metrics;
/// assert_eq!(
///     metrics::scoped(metrics::PREFIX_RPC_BREAKER, metrics::suffix::REJECTED),
///     "rpc.breaker.rejected"
/// );
/// ```
#[must_use]
pub fn scoped(prefix: &str, suffix: &str) -> String {
    format!("{prefix}.{suffix}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_joins_with_a_dot() {
        assert_eq!(scoped(PREFIX_CACHE, suffix::HITS), "kvstore.cache.hits");
    }

    #[test]
    fn names_are_lower_dotted() {
        for name in [
            LOADGEN_COMPLETED,
            LOADGEN_ERRORS,
            LOADGEN_DEADLINE_EXCEEDED,
            LOADGEN_REJECTED,
            LOADGEN_DROPPED,
            LOADGEN_RESPONSE_BYTES,
            LOADGEN_LATENCY_NS,
            DYN_LOADGEN_ENDPOINT,
            PREFIX_RPC,
            PREFIX_RPC_POOL,
            PREFIX_RPC_BREAKER,
            PREFIX_RPC_PIPELINE,
            PREFIX_RPC_BATCH,
            RPC_RESILIENT_RETRIES,
            RPC_RESILIENT_BUDGET_EXHAUSTED,
            PREFIX_RESILIENCE_BREAKER,
            PREFIX_CACHE,
            PREFIX_CHAOS_STORE,
            PREFIX_CHAOS_RPC,
            PREFIX_CHAOS_DJANGO,
        ] {
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'),
                "bad metric name {name}"
            );
            assert!(!name.starts_with('.') && !name.ends_with('.'));
        }
    }
}
