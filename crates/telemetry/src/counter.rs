//! Atomic counters and gauges.
//!
//! The hot-path cost of a metric update must be a single atomic RMW so
//! that instrumenting a workload does not perturb the latency it measures.
//! Counters are monotonic `u64`s; gauges are signed levels that can move
//! both ways (queue depths, in-flight request counts).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event counter.
///
/// All operations are wait-free single atomics with relaxed ordering:
/// counter values are aggregated after the fact, never used for
/// synchronization.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero (between benchmark runs; not linearizable with
    /// concurrent `add`s).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A signed level that can rise and fall.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicI64::new(0),
        }
    }

    /// Sets the level outright.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the level by `n`.
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Lowers the level by `n`.
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Raises the level to `v` if `v` is higher (running-maximum gauges,
    /// e.g. peak in-flight depth). A single wait-free `fetch_max`, so
    /// concurrent maxima never regress each other.
    pub fn set_max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.add(10);
        g.sub(3);
        assert_eq!(g.get(), 7);
        g.set(-2);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn gauge_set_max_only_raises() {
        let g = Gauge::new();
        g.set_max(5);
        assert_eq!(g.get(), 5);
        g.set_max(3);
        assert_eq!(g.get(), 5, "lower candidate must not regress the peak");
        g.set_max(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn gauge_set_max_is_thread_safe() {
        let g = Arc::new(Gauge::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        g.set_max(t * 1000 + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(g.get(), 7999);
    }

    #[test]
    fn counter_is_thread_safe() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }
}
