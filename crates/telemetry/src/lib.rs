//! Unified concurrent telemetry for DCPerf-RS.
//!
//! Every subsystem in the suite — the kvstore cache, the RPC substrate,
//! the load generators — used to keep its own ad-hoc mutable stats
//! struct. This crate replaces those with one substrate:
//!
//! * [`Counter`] / [`Gauge`] — single-atomic event counts and levels;
//! * [`ConcurrentHistogram`] — a striped, wait-free latency recorder
//!   whose merged snapshot is bit-identical to a single-threaded
//!   [`dcperf_util::Histogram`] of the same samples;
//! * [`Telemetry`] — a cheaply cloneable named registry of the above,
//!   plus phase-scoped timing spans ([`Phase`], [`PhaseSpan`]);
//! * [`TelemetrySnapshot`] — the serializable freeze embedded in every
//!   `BenchmarkReport`.
//!
//! Hot paths touch only atomics they already hold an `Arc` to; the
//! registry's interior mutex is taken on the cold paths (registration and
//! snapshot) only.
//!
//! # Examples
//!
//! ```
//! use dcperf_telemetry::{Phase, Telemetry};
//!
//! let telemetry = Telemetry::new();
//! let requests = telemetry.counter("rpc.requests");
//! let latency = telemetry.histogram("rpc.latency_ns");
//!
//! {
//!     let _span = telemetry.phase_span("echo", Phase::Measure);
//!     for i in 1..=100u64 {
//!         requests.inc();
//!         latency.record(i * 1_000);
//!     }
//! }
//!
//! let snap = telemetry.snapshot();
//! assert_eq!(snap.counter("rpc.requests"), Some(100));
//! assert_eq!(snap.histogram("rpc.latency_ns").unwrap().count, 100);
//! assert_eq!(snap.phase("echo", Phase::Measure).unwrap().calls, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counter;
mod hist;
pub mod metrics;
mod phase;
mod snapshot;

pub use counter::{Counter, Gauge};
pub use hist::ConcurrentHistogram;
pub use phase::{Phase, PhaseSummary};
pub use snapshot::{HistogramSummary, TelemetrySnapshot};

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<ConcurrentHistogram>>,
    phases: BTreeMap<String, PhaseSummary>,
}

/// A named registry of counters, gauges, histograms, and phase timings.
///
/// Cloning is cheap (`Arc` internally); clones share the same metrics.
/// Handles returned by [`counter`](Telemetry::counter) /
/// [`gauge`](Telemetry::gauge) / [`histogram`](Telemetry::histogram) are
/// `Arc`s — hold them on hot paths instead of re-looking-up by name.
#[derive(Clone, Default)]
pub struct Telemetry {
    registry: Arc<Mutex<Registry>>,
}

impl Telemetry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or creates the counter with this name.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut reg = self.registry.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            reg.counters
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Gets or creates the gauge with this name.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut reg = self.registry.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            reg.gauges
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// Gets or creates the concurrent histogram with this name.
    pub fn histogram(&self, name: &str) -> Arc<ConcurrentHistogram> {
        let mut reg = self.registry.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            reg.histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(ConcurrentHistogram::new())),
        )
    }

    /// Starts timing a lifecycle phase of the named benchmark. The
    /// returned guard records elapsed wall time under
    /// `"<benchmark>/<phase>"` when dropped.
    #[must_use = "the span records on drop; binding it to _ ends it immediately"]
    pub fn phase_span(&self, benchmark: &str, phase: Phase) -> PhaseSpan {
        PhaseSpan {
            telemetry: self.clone(),
            key: format!("{benchmark}/{phase}"),
            start: Instant::now(),
        }
    }

    /// Freezes every registered metric into plain serializable data.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let reg = self.registry.lock().unwrap_or_else(|e| e.into_inner());
        TelemetrySnapshot {
            counters: reg
                .counters
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            gauges: reg
                .gauges
                .iter()
                .map(|(name, g)| (name.clone(), g.get()))
                .collect(),
            histograms: reg
                .histograms
                .iter()
                .map(|(name, h)| {
                    (
                        name.clone(),
                        HistogramSummary::from_histogram(&h.snapshot()),
                    )
                })
                .collect(),
            phases: reg.phases.clone(),
        }
    }

    /// Resets every counter, gauge, histogram, and phase timing while
    /// keeping registered names and outstanding handles valid.
    pub fn reset(&self) {
        let mut reg = self.registry.lock().unwrap_or_else(|e| e.into_inner());
        for counter in reg.counters.values() {
            counter.reset();
        }
        for gauge in reg.gauges.values() {
            gauge.set(0);
        }
        for hist in reg.histograms.values() {
            hist.reset();
        }
        reg.phases.clear();
    }

    fn record_phase(&self, key: &str, elapsed_ns: u64) {
        let mut reg = self.registry.lock().unwrap_or_else(|e| e.into_inner());
        let entry = reg.phases.entry(key.to_string()).or_default();
        entry.calls += 1;
        entry.total_ns += elapsed_ns;
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let reg = self.registry.lock().unwrap_or_else(|e| e.into_inner());
        write!(
            f,
            "Telemetry {{ counters: {}, gauges: {}, histograms: {}, phases: {} }}",
            reg.counters.len(),
            reg.gauges.len(),
            reg.histograms.len(),
            reg.phases.len()
        )
    }
}

/// RAII guard from [`Telemetry::phase_span`]; records on drop.
#[derive(Debug)]
pub struct PhaseSpan {
    telemetry: Telemetry,
    key: String,
    start: Instant,
}

impl Drop for PhaseSpan {
    fn drop(&mut self) {
        let elapsed_ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.telemetry.record_phase(&self.key, elapsed_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_same_metric() {
        let telemetry = Telemetry::new();
        telemetry.counter("hits").add(3);
        telemetry.counter("hits").add(4);
        assert_eq!(telemetry.snapshot().counter("hits"), Some(7));
    }

    #[test]
    fn clones_share_state() {
        let telemetry = Telemetry::new();
        let clone = telemetry.clone();
        clone.counter("shared").inc();
        assert_eq!(telemetry.snapshot().counter("shared"), Some(1));
    }

    #[test]
    fn phase_span_records_on_drop() {
        let telemetry = Telemetry::new();
        {
            let _span = telemetry.phase_span("bench", Phase::Setup);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let summary = telemetry.snapshot().phase("bench", Phase::Setup).unwrap();
        assert_eq!(summary.calls, 1);
        assert!(summary.total_ns >= 1_000_000, "got {}", summary.total_ns);
    }

    #[test]
    fn reset_zeroes_but_keeps_handles_live() {
        let telemetry = Telemetry::new();
        let counter = telemetry.counter("n");
        let hist = telemetry.histogram("h");
        counter.add(5);
        hist.record(10);
        telemetry.reset();
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("n"), Some(0));
        assert_eq!(snap.histogram("h").unwrap().count, 0);
        // Old handles still feed the registry after reset.
        counter.inc();
        assert_eq!(telemetry.snapshot().counter("n"), Some(1));
    }

    #[test]
    fn snapshot_includes_gauges() {
        let telemetry = Telemetry::new();
        telemetry.gauge("depth").set(12);
        telemetry.gauge("depth").sub(2);
        assert_eq!(telemetry.snapshot().gauges.get("depth"), Some(&10));
    }
}
