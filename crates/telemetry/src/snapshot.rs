//! Serializable point-in-time views of a telemetry registry.
//!
//! Live metrics are atomics and striped histograms — cheap to write,
//! awkward to ship. A [`TelemetrySnapshot`] freezes everything into plain
//! sorted maps of numbers so reports can embed, serialize, diff, and
//! assert on them.

use crate::phase::PhaseSummary;
use dcperf_util::Histogram;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Fixed percentile digest of one histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Arithmetic mean (0.0 when empty).
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 95th percentile (the paper's newsfeed SLO percentile).
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

impl HistogramSummary {
    /// Digests a merged histogram.
    pub fn from_histogram(hist: &Histogram) -> Self {
        Self {
            count: hist.count(),
            min: hist.min(),
            max: hist.max(),
            mean: hist.mean(),
            p50: hist.value_at_percentile(50.0),
            p95: hist.value_at_percentile(95.0),
            p99: hist.value_at_percentile(99.0),
            p999: hist.value_at_percentile(99.9),
        }
    }
}

/// Everything a registry knew at one instant, as plain data.
///
/// Keys are sorted (`BTreeMap`) so serialized snapshots are byte-stable
/// across runs, which keeps report diffs readable.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram digests by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Phase timings by `"<benchmark>/<phase>"` key.
    pub phases: BTreeMap<String, PhaseSummary>,
}

impl TelemetrySnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Convenience counter lookup.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Convenience histogram-digest lookup.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.get(name)
    }

    /// Convenience phase-timing lookup.
    pub fn phase(&self, benchmark: &str, phase: crate::Phase) -> Option<PhaseSummary> {
        self.phases.get(&format!("{benchmark}/{phase}")).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_digests_histogram() {
        let mut hist = Histogram::new();
        for v in 1..=1000u64 {
            hist.record(v);
        }
        let digest = HistogramSummary::from_histogram(&hist);
        assert_eq!(digest.count, 1000);
        assert_eq!(digest.min, 1);
        assert_eq!(digest.max, 1000);
        assert!(digest.p50 <= digest.p95 && digest.p95 <= digest.p99);
        assert!(digest.p99 <= digest.p999);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut snap = TelemetrySnapshot::new();
        snap.counters.insert("requests".into(), 123);
        snap.gauges.insert("in_flight".into(), -4);
        snap.histograms.insert(
            "latency_ns".into(),
            HistogramSummary {
                count: 10,
                min: 1,
                max: 99,
                mean: 12.5,
                p50: 10,
                p95: 90,
                p99: 99,
                p999: 99,
            },
        );
        snap.phases.insert(
            "kvstore/measure".into(),
            PhaseSummary {
                calls: 1,
                total_ns: 5_000,
            },
        );
        let json = serde_json::to_string_pretty(&snap).unwrap();
        let back: TelemetrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn lookups_return_none_for_missing_keys() {
        let snap = TelemetrySnapshot::new();
        assert_eq!(snap.counter("nope"), None);
        assert!(snap.histogram("nope").is_none());
        assert!(snap.phase("nope", crate::Phase::Setup).is_none());
    }
}
