//! Serializable point-in-time views of a telemetry registry.
//!
//! Live metrics are atomics and striped histograms — cheap to write,
//! awkward to ship. A [`TelemetrySnapshot`] freezes everything into plain
//! sorted maps of numbers so reports can embed, serialize, diff, and
//! assert on them.

use crate::phase::PhaseSummary;
use dcperf_util::Histogram;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Fixed percentile digest of one histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Arithmetic mean (0.0 when empty).
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 95th percentile (the paper's newsfeed SLO percentile).
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

impl HistogramSummary {
    /// Digests a merged histogram.
    pub fn from_histogram(hist: &Histogram) -> Self {
        Self {
            count: hist.count(),
            min: hist.min(),
            max: hist.max(),
            mean: hist.mean(),
            p50: hist.value_at_percentile(50.0),
            p95: hist.value_at_percentile(95.0),
            p99: hist.value_at_percentile(99.0),
            p999: hist.value_at_percentile(99.9),
        }
    }
}

/// Everything a registry knew at one instant, as plain data.
///
/// Keys are sorted (`BTreeMap`) so serialized snapshots are byte-stable
/// across runs, which keeps report diffs readable.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram digests by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Phase timings by `"<benchmark>/<phase>"` key.
    pub phases: BTreeMap<String, PhaseSummary>,
}

impl TelemetrySnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Convenience counter lookup.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Convenience gauge lookup.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Convenience histogram-digest lookup.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.get(name)
    }

    /// Convenience phase-timing lookup.
    pub fn phase(&self, benchmark: &str, phase: crate::Phase) -> Option<PhaseSummary> {
        self.phases.get(&format!("{benchmark}/{phase}")).copied()
    }

    /// Folds `other` into `self`: counters and gauges add, phase timings
    /// accumulate, and histogram digests transfer only for names `self`
    /// lacks (percentile digests cannot be re-merged; the earlier digest
    /// wins on collision).
    ///
    /// Chaos scenarios use this to combine the server registry's `rpc.*`
    /// counters with the load generator's `loadgen.*` counters into one
    /// reportable snapshot.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &other.gauges {
            *self.gauges.entry(name.clone()).or_insert(0) += value;
        }
        for (name, digest) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .or_insert_with(|| digest.clone());
        }
        for (name, summary) in &other.phases {
            let entry = self.phases.entry(name.clone()).or_default();
            entry.calls += summary.calls;
            entry.total_ns += summary.total_ns;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_digests_histogram() {
        let mut hist = Histogram::new();
        for v in 1..=1000u64 {
            hist.record(v);
        }
        let digest = HistogramSummary::from_histogram(&hist);
        assert_eq!(digest.count, 1000);
        assert_eq!(digest.min, 1);
        assert_eq!(digest.max, 1000);
        assert!(digest.p50 <= digest.p95 && digest.p95 <= digest.p99);
        assert!(digest.p99 <= digest.p999);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut snap = TelemetrySnapshot::new();
        snap.counters.insert("requests".into(), 123);
        snap.gauges.insert("in_flight".into(), -4);
        snap.histograms.insert(
            "latency_ns".into(),
            HistogramSummary {
                count: 10,
                min: 1,
                max: 99,
                mean: 12.5,
                p50: 10,
                p95: 90,
                p99: 99,
                p999: 99,
            },
        );
        snap.phases.insert(
            "kvstore/measure".into(),
            PhaseSummary {
                calls: 1,
                total_ns: 5_000,
            },
        );
        let json = serde_json::to_string_pretty(&snap).unwrap();
        let back: TelemetrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn merge_adds_counters_and_keeps_first_digest() {
        let mut a = TelemetrySnapshot::new();
        a.counters.insert("rpc.requests".into(), 10);
        a.gauges.insert("in_flight".into(), 3);
        a.histograms.insert(
            "lat".into(),
            HistogramSummary {
                count: 1,
                min: 1,
                max: 1,
                mean: 1.0,
                p50: 1,
                p95: 1,
                p99: 1,
                p999: 1,
            },
        );
        a.phases.insert(
            "x/measure".into(),
            PhaseSummary {
                calls: 1,
                total_ns: 100,
            },
        );

        let mut b = TelemetrySnapshot::new();
        b.counters.insert("rpc.requests".into(), 5);
        b.counters.insert("rpc.resilient.retries".into(), 2);
        b.gauges.insert("in_flight".into(), -1);
        b.histograms.insert(
            "lat".into(),
            HistogramSummary {
                count: 99,
                min: 9,
                max: 9,
                mean: 9.0,
                p50: 9,
                p95: 9,
                p99: 9,
                p999: 9,
            },
        );
        b.phases.insert(
            "x/measure".into(),
            PhaseSummary {
                calls: 2,
                total_ns: 50,
            },
        );

        a.merge(&b);
        assert_eq!(a.counter("rpc.requests"), Some(15));
        assert_eq!(a.counter("rpc.resilient.retries"), Some(2));
        assert_eq!(a.gauges["in_flight"], 2);
        assert_eq!(a.histogram("lat").unwrap().count, 1, "first digest wins");
        let phase = a.phases["x/measure"];
        assert_eq!(phase.calls, 3);
        assert_eq!(phase.total_ns, 150);
    }

    #[test]
    fn lookups_return_none_for_missing_keys() {
        let snap = TelemetrySnapshot::new();
        assert_eq!(snap.counter("nope"), None);
        assert!(snap.histogram("nope").is_none());
        assert!(snap.phase("nope", crate::Phase::Setup).is_none());
    }
}
