//! N-thread stress test for [`ConcurrentHistogram`]: after every writer
//! has joined, the merged snapshot must be *identical* to a
//! single-threaded oracle [`Histogram`] fed the same samples — same
//! count, bounds, sum-derived mean, and every percentile.

use dcperf_telemetry::ConcurrentHistogram;
use dcperf_util::Histogram;
use std::sync::Arc;

const THREADS: u64 = 8;
const PER_THREAD: u64 = 50_000;

/// Deterministic per-thread sample stream (LCG over a splitmix-seeded
/// state) so the oracle can replay exactly what the writers recorded.
fn samples(thread: u64) -> impl Iterator<Item = u64> {
    let mut x = thread
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(0x1234_5678_9ABC_DEF0);
    (0..PER_THREAD).map(move |_| {
        x = x
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        // Spread across many orders of magnitude to hit every bucket range.
        x >> (x % 48)
    })
}

#[test]
fn merged_snapshot_equals_single_threaded_oracle() {
    let concurrent = Arc::new(ConcurrentHistogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let hist = Arc::clone(&concurrent);
            std::thread::spawn(move || {
                for v in samples(t) {
                    hist.record(v);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer thread panicked");
    }

    let mut oracle = Histogram::new();
    for t in 0..THREADS {
        for v in samples(t) {
            oracle.record(v);
        }
    }

    let snap = concurrent.snapshot();
    assert_eq!(snap.count(), THREADS * PER_THREAD);
    assert_eq!(snap.count(), oracle.count());
    assert_eq!(snap.min(), oracle.min());
    assert_eq!(snap.max(), oracle.max());
    assert_eq!(snap.mean(), oracle.mean(), "exact sums must match");
    for pct in [0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 99.9, 100.0] {
        assert_eq!(
            snap.value_at_percentile(pct),
            oracle.value_at_percentile(pct),
            "percentile {pct} diverged"
        );
    }
    // The snapshot is a real Histogram: full structural equality holds.
    assert_eq!(snap, oracle);
}

#[test]
fn concurrent_count_is_exact_under_contention() {
    // Few stripes + many threads forces stripe sharing; totals must
    // still be exact.
    let hist = Arc::new(ConcurrentHistogram::with_stripes(2));
    let handles: Vec<_> = (0..16)
        .map(|t| {
            let hist = Arc::clone(&hist);
            std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    hist.record(t * 10_000 + i + 1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer thread panicked");
    }
    let snap = hist.snapshot();
    assert_eq!(snap.count(), 160_000);
    assert_eq!(snap.min(), 1);
    assert_eq!(snap.max(), 160_000);
}
