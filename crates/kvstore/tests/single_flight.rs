//! Concurrency tests for the single-flight fill path: one loader per cold
//! key no matter how many threads miss it simultaneously, and failure
//! outcomes that release waiters without poisoning the key.

use dcperf_kvstore::{Cache, CacheConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

const THREADS: usize = 8;

fn cache() -> Arc<Cache> {
    Arc::new(Cache::new(
        CacheConfig::with_capacity_bytes(1 << 20).with_shards(4),
    ))
}

#[test]
fn cold_key_loader_runs_exactly_once_across_threads() {
    let c = cache();
    let loads = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let c = Arc::clone(&c);
            let loads = Arc::clone(&loads);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                c.get_or_load(b"cold", |_| {
                    loads.fetch_add(1, Ordering::SeqCst);
                    // Hold the fill open long enough that the other
                    // threads reach the miss path and park behind it.
                    std::thread::sleep(Duration::from_millis(30));
                    Some(b"filled".to_vec())
                })
            })
        })
        .collect();
    for h in handles {
        let got = h.join().expect("thread");
        assert_eq!(
            got.as_deref(),
            Some(&b"filled"[..]),
            "all callers same value"
        );
    }
    assert_eq!(
        loads.load(Ordering::SeqCst),
        1,
        "single-flight must run the loader exactly once"
    );
    let stats = c.stats();
    assert_eq!(stats.singleflight_fills(), 1);
    assert!(
        stats.singleflight_fills() + stats.singleflight_waits() <= stats.misses(),
        "leads and waits never exceed misses"
    );
    assert!(
        stats.singleflight_waits() >= 1,
        "some threads must have parked"
    );
}

#[test]
fn many_cold_keys_each_fill_once() {
    let c = cache();
    let loads = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(THREADS));
    const KEYS: u64 = 64;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let c = Arc::clone(&c);
            let loads = Arc::clone(&loads);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                // Each thread walks the key space from a different start,
                // so every key sees racing threads at some point.
                for i in 0..KEYS {
                    let key = ((i + t as u64 * 7) % KEYS).to_le_bytes();
                    let got = c.get_or_load(&key, |k| {
                        loads.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_millis(1));
                        Some(k.to_vec())
                    });
                    assert_eq!(got.as_deref(), Some(&key[..]));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("thread");
    }
    assert_eq!(
        loads.load(Ordering::SeqCst),
        KEYS,
        "each cold key must be loaded exactly once"
    );
}

#[test]
fn failing_loader_releases_waiters_without_poisoning() {
    let c = cache();
    let loads = Arc::new(AtomicU64::new(0));
    let nones = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let c = Arc::clone(&c);
            let loads = Arc::clone(&loads);
            let nones = Arc::clone(&nones);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let got = c.get_or_load(b"absent", |_| {
                    loads.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(30));
                    None
                });
                if got.is_none() {
                    nones.fetch_add(1, Ordering::SeqCst);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("thread");
    }
    assert_eq!(
        nones.load(Ordering::SeqCst),
        THREADS as u64,
        "all observe the failure"
    );
    let racing_loads = loads.load(Ordering::SeqCst);
    assert!(
        racing_loads < THREADS as u64,
        "waiters must not retry-stampede ({racing_loads} loads)"
    );
    assert_eq!(
        c.stats().load_failures(),
        racing_loads,
        "leader-only failures"
    );
    // The key is not poisoned: the next miss runs a fresh loader.
    let got = c.get_or_load(b"absent", |_| Some(vec![1]));
    assert_eq!(got.as_deref(), Some(&[1u8][..]));
}

#[test]
fn panicking_loader_releases_waiters_and_unpoisons_key() {
    let c = cache();
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let c = Arc::clone(&c);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                if t == 0 {
                    // The leader candidate panics mid-fill; the FillGuard
                    // must publish Failed on unwind.
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        c.get_or_load(b"boom", |_| {
                            std::thread::sleep(Duration::from_millis(30));
                            panic!("loader blew up");
                        })
                    }));
                    assert!(result.is_err(), "the panic must propagate to the caller");
                    None
                } else {
                    std::thread::sleep(Duration::from_millis(5));
                    c.get_or_load(b"boom", |_| {
                        // If this thread became the leader instead (the
                        // race is timing-dependent), fill normally.
                        Some(b"recovered".to_vec())
                    })
                }
            })
        })
        .collect();
    for h in handles {
        let got = h.join().expect("non-leader threads must not panic");
        if let Some(v) = got {
            assert_eq!(&v[..], b"recovered");
        }
    }
    // However the race resolved, the key works afterwards.
    let got = c.get_or_load(b"boom", |_| Some(b"recovered".to_vec()));
    assert_eq!(got.as_deref(), Some(&b"recovered"[..]));
}

#[test]
fn disabling_single_flight_restores_thundering_herd() {
    let c = Arc::new(Cache::new(
        CacheConfig::with_capacity_bytes(1 << 20)
            .with_shards(4)
            .without_single_flight(),
    ));
    let loads = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let c = Arc::clone(&c);
            let loads = Arc::clone(&loads);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                c.get_or_load(b"herd", |_| {
                    loads.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(30));
                    Some(vec![1])
                })
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().expect("thread").as_deref(), Some(&[1u8][..]));
    }
    assert!(
        loads.load(Ordering::SeqCst) > 1,
        "without single-flight, concurrent misses each load"
    );
    assert_eq!(c.stats().singleflight_fills(), 0);
}
