//! Property tests for the cache: a model-based test against a reference
//! map, capacity invariants under arbitrary operation sequences, and an
//! exact-LRU oracle check for the batched-recency read path.

use dcperf_kvstore::shard::Shard;
use dcperf_kvstore::{Cache, CacheConfig};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Set(u8, Vec<u8>),
    Get(u8),
    Delete(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(k, v)| Op::Set(k, v)),
        any::<u8>().prop_map(Op::Get),
        any::<u8>().prop_map(Op::Delete),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With ample capacity the cache must behave exactly like a map.
    #[test]
    fn cache_matches_reference_map(ops in proptest::collection::vec(op_strategy(), 0..200)) {
        let cache = Cache::new(CacheConfig::with_capacity_bytes(4 << 20).with_shards(4));
        let mut reference: HashMap<u8, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                Op::Set(k, v) => {
                    cache.set(&[k], v.clone());
                    reference.insert(k, v);
                }
                Op::Get(k) => {
                    let got = cache.get(&[k]).map(|v| v.to_vec());
                    prop_assert_eq!(got, reference.get(&k).cloned(), "key {}", k);
                }
                Op::Delete(k) => {
                    let was_present = reference.remove(&k).is_some();
                    prop_assert_eq!(cache.delete(&[k]), was_present, "key {}", k);
                }
            }
        }
        prop_assert_eq!(cache.len(), reference.len());
    }

    /// Under any workload the charged bytes stay within capacity plus one
    /// entry of slack per shard.
    #[test]
    fn capacity_is_respected(
        ops in proptest::collection::vec(
            (any::<u16>(), 1usize..512), 1..300),
    ) {
        let capacity = 32 << 10;
        let cache = Cache::new(CacheConfig::with_capacity_bytes(capacity).with_shards(4));
        let mut max_seen = 0usize;
        for (key, len) in ops {
            cache.set(&key.to_le_bytes(), vec![0u8; len]);
            max_seen = max_seen.max(cache.used_bytes());
        }
        // Slack: one max-size entry (value + keys + overhead) per shard.
        let slack = 4 * (512 + 2 * 2 + 64);
        prop_assert!(
            max_seen <= capacity + slack,
            "used {} exceeded capacity {} + slack {}", max_seen, capacity, slack
        );
    }

    /// get_or_load never returns a value different from what the loader
    /// supplied for that key.
    #[test]
    fn read_through_is_consistent(keys in proptest::collection::vec(any::<u8>(), 1..200)) {
        let cache = Cache::new(CacheConfig::with_capacity_bytes(1 << 20).with_shards(2));
        for k in keys {
            let got = cache.get_or_load(&[k], |key| Some(vec![key[0]; 3]));
            prop_assert_eq!(got.map(|v| v.to_vec()), Some(vec![k; 3]));
        }
    }

    /// The batched-recency read path (read lock + deferred touch buffer)
    /// must produce the same eviction order as the old inline-recency
    /// shard. Single-threaded with sampling disabled, every touch lands
    /// (no `try_lock` contention drops), so a one-shard [`Cache`] driven
    /// against an exact-LRU [`Shard`] oracle must agree on membership
    /// *and* hit results at every step — including under capacity
    /// pressure, where any recency divergence changes which key is
    /// evicted. This pins down the deferral machinery itself; the
    /// default sampled mode is a deliberate, documented approximation
    /// layered on top.
    #[test]
    fn batched_recency_matches_exact_lru_oracle(
        ops in proptest::collection::vec(
            prop_oneof![
                (any::<u8>(), 16usize..128).prop_map(|(k, len)| (true, k, len)),
                any::<u8>().prop_map(|k| (false, k, 0)),
            ],
            1..400,
        ),
    ) {
        // Small enough that realistic sequences evict constantly.
        let capacity = 4 << 10;
        let cache = Cache::new(
            CacheConfig::with_capacity_bytes(capacity)
                .with_shards(1)
                .with_exact_recency(),
        );
        let mut oracle = Shard::new(capacity);
        for (is_set, k, len) in ops {
            if is_set {
                cache.set(&[k], vec![k; len]);
                oracle.insert(&[k], vec![k; len], None, 0);
            } else {
                let got = cache.get(&[k]).map(|v| v.to_vec());
                let expected = oracle.get(&[k], 0);
                prop_assert_eq!(got, expected, "get({}) diverged from exact LRU", k);
            }
        }
        for k in 0..=255u8 {
            prop_assert_eq!(
                cache.contains(&[k]),
                oracle.contains(&[k], 0),
                "membership of {} diverged from exact LRU", k
            );
        }
        prop_assert_eq!(cache.len(), oracle.len());
        prop_assert_eq!(cache.used_bytes(), oracle.used_bytes());
    }
}
