//! Property tests for the cache: a model-based test against a reference
//! map, plus capacity invariants under arbitrary operation sequences.

use dcperf_kvstore::{Cache, CacheConfig};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Set(u8, Vec<u8>),
    Get(u8),
    Delete(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(k, v)| Op::Set(k, v)),
        any::<u8>().prop_map(Op::Get),
        any::<u8>().prop_map(Op::Delete),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With ample capacity the cache must behave exactly like a map.
    #[test]
    fn cache_matches_reference_map(ops in proptest::collection::vec(op_strategy(), 0..200)) {
        let cache = Cache::new(CacheConfig::with_capacity_bytes(4 << 20).with_shards(4));
        let mut reference: HashMap<u8, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                Op::Set(k, v) => {
                    cache.set(&[k], v.clone());
                    reference.insert(k, v);
                }
                Op::Get(k) => {
                    prop_assert_eq!(cache.get(&[k]), reference.get(&k).cloned(), "key {}", k);
                }
                Op::Delete(k) => {
                    let was_present = reference.remove(&k).is_some();
                    prop_assert_eq!(cache.delete(&[k]), was_present, "key {}", k);
                }
            }
        }
        prop_assert_eq!(cache.len(), reference.len());
    }

    /// Under any workload the charged bytes stay within capacity plus one
    /// entry of slack per shard.
    #[test]
    fn capacity_is_respected(
        ops in proptest::collection::vec(
            (any::<u16>(), 1usize..512), 1..300),
    ) {
        let capacity = 32 << 10;
        let cache = Cache::new(CacheConfig::with_capacity_bytes(capacity).with_shards(4));
        let mut max_seen = 0usize;
        for (key, len) in ops {
            cache.set(&key.to_le_bytes(), vec![0u8; len]);
            max_seen = max_seen.max(cache.used_bytes());
        }
        // Slack: one max-size entry (value + keys + overhead) per shard.
        let slack = 4 * (512 + 2 * 2 + 64);
        prop_assert!(
            max_seen <= capacity + slack,
            "used {} exceeded capacity {} + slack {}", max_seen, capacity, slack
        );
    }

    /// get_or_load never returns a value different from what the loader
    /// supplied for that key.
    #[test]
    fn read_through_is_consistent(keys in proptest::collection::vec(any::<u8>(), 1..200)) {
        let cache = Cache::new(CacheConfig::with_capacity_bytes(1 << 20).with_shards(2));
        for k in keys {
            let got = cache.get_or_load(&[k], |key| Some(vec![key[0]; 3]));
            prop_assert_eq!(got, Some(vec![k; 3]));
        }
    }
}
