//! A single LRU shard: hash map + intrusive recency list over a slab.
//!
//! Kept lock-free internally; [`Cache`](crate::Cache) wraps each shard in
//! its own mutex so independent keys proceed in parallel, which is what
//! lets the cache scale on many-core machines (the scalability property
//! CloudSuite's data-caching benchmark lacks, per §4.6 of the paper).

use std::collections::HashMap;

const NIL: u32 = u32::MAX;

/// Fixed per-entry bookkeeping charge (slab links, map entry, TTL),
/// approximating a production cache's metadata overhead.
const ENTRY_OVERHEAD: usize = 64;

#[derive(Debug)]
struct Entry {
    key: Box<[u8]>,
    value: Vec<u8>,
    expires_at_ms: Option<u64>,
    prev: u32,
    next: u32,
}

/// An LRU map with byte-based capacity accounting and optional TTLs.
///
/// All time parameters are milliseconds on a caller-provided clock, which
/// keeps the shard deterministic under test.
#[derive(Debug)]
pub struct Shard {
    map: HashMap<Box<[u8]>, u32>,
    slab: Vec<Entry>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    used_bytes: usize,
    capacity_bytes: usize,
    evictions: u64,
    expirations: u64,
}

impl Shard {
    /// Creates a shard bounded to `capacity_bytes` of charged data.
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            used_bytes: 0,
            capacity_bytes,
            evictions: 0,
            expirations: 0,
        }
    }

    fn charge(key: &[u8], value: &[u8]) -> usize {
        // Key stored in both the map and the slab entry.
        key.len() * 2 + value.len() + ENTRY_OVERHEAD
    }

    fn detach(&mut self, idx: u32) {
        let (prev, next) = {
            let e = &self.slab[idx as usize];
            (e.prev, e.next)
        };
        if prev != NIL {
            self.slab[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn attach_front(&mut self, idx: u32) {
        let old_head = self.head;
        {
            let e = &mut self.slab[idx as usize];
            e.prev = NIL;
            e.next = old_head;
        }
        if old_head != NIL {
            self.slab[old_head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn remove_idx(&mut self, idx: u32) {
        self.detach(idx);
        let entry = &mut self.slab[idx as usize];
        self.used_bytes -= Self::charge(&entry.key, &entry.value);
        let key = std::mem::take(&mut entry.key);
        entry.value = Vec::new();
        self.map.remove(&key);
        self.free.push(idx);
    }

    /// Looks up `key`, refreshing recency. Expired entries are removed and
    /// reported as absent.
    pub fn get(&mut self, key: &[u8], now_ms: u64) -> Option<Vec<u8>> {
        let idx = *self.map.get(key)?;
        if let Some(exp) = self.slab[idx as usize].expires_at_ms {
            if exp <= now_ms {
                self.remove_idx(idx);
                self.expirations += 1;
                return None;
            }
        }
        self.detach(idx);
        self.attach_front(idx);
        Some(self.slab[idx as usize].value.clone())
    }

    /// Checks presence without refreshing recency or cloning.
    pub fn contains(&self, key: &[u8], now_ms: u64) -> bool {
        self.map.get(key).is_some_and(|&idx| {
            self.slab[idx as usize]
                .expires_at_ms
                .is_none_or(|exp| exp > now_ms)
        })
    }

    /// Inserts or replaces `key`, evicting LRU entries to stay within
    /// capacity. Returns the number of entries evicted.
    pub fn insert(&mut self, key: &[u8], value: Vec<u8>, ttl_ms: Option<u64>, now_ms: u64) -> u64 {
        if let Some(&idx) = self.map.get(key) {
            self.remove_idx(idx);
        }
        let charge = Self::charge(key, &value);
        let boxed_key: Box<[u8]> = key.into();
        let entry = Entry {
            key: boxed_key.clone(),
            value,
            expires_at_ms: ttl_ms.map(|t| now_ms.saturating_add(t)),
            prev: NIL,
            next: NIL,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i as usize] = entry;
                i
            }
            None => {
                self.slab.push(entry);
                (self.slab.len() - 1) as u32
            }
        };
        self.map.insert(boxed_key, idx);
        self.used_bytes += charge;
        self.attach_front(idx);

        let mut evicted = 0;
        while self.used_bytes > self.capacity_bytes && self.tail != NIL && self.tail != idx {
            let victim = self.tail;
            self.remove_idx(victim);
            evicted += 1;
        }
        self.evictions += evicted;
        evicted
    }

    /// Removes `key`, returning whether it was present.
    pub fn remove(&mut self, key: &[u8]) -> bool {
        if let Some(&idx) = self.map.get(key) {
            self.remove_idx(idx);
            true
        } else {
            false
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the shard holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Charged bytes currently held.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Total evictions performed.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Total TTL expirations observed.
    pub fn expirations(&self) -> u64 {
        self.expirations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard() -> Shard {
        Shard::new(10_000)
    }

    #[test]
    fn insert_then_get() {
        let mut s = shard();
        s.insert(b"a", vec![1, 2], None, 0);
        assert_eq!(s.get(b"a", 0), Some(vec![1, 2]));
        assert_eq!(s.len(), 1);
        assert!(s.get(b"b", 0).is_none());
    }

    #[test]
    fn replace_updates_value_and_charge() {
        let mut s = shard();
        s.insert(b"a", vec![0; 100], None, 0);
        let used_before = s.used_bytes();
        s.insert(b"a", vec![0; 10], None, 0);
        assert_eq!(s.get(b"a", 0), Some(vec![0; 10]));
        assert!(s.used_bytes() < used_before);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Capacity fits ~3 entries of this size.
        let charge = Shard::charge(b"k0", &[0u8; 100]);
        let mut s = Shard::new(charge * 3);
        s.insert(b"k0", vec![0; 100], None, 0);
        s.insert(b"k1", vec![0; 100], None, 0);
        s.insert(b"k2", vec![0; 100], None, 0);
        // Touch k0 so k1 is the LRU.
        assert!(s.get(b"k0", 0).is_some());
        s.insert(b"k3", vec![0; 100], None, 0);
        assert!(s.get(b"k1", 0).is_none(), "k1 should have been evicted");
        assert!(s.get(b"k0", 0).is_some());
        assert!(s.get(b"k2", 0).is_some());
        assert!(s.get(b"k3", 0).is_some());
        assert_eq!(s.evictions(), 1);
    }

    #[test]
    fn ttl_expires_entries() {
        let mut s = shard();
        s.insert(b"a", vec![1], Some(100), 0);
        assert!(s.get(b"a", 50).is_some());
        assert!(s.get(b"a", 100).is_none());
        assert_eq!(s.expirations(), 1);
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn contains_does_not_refresh() {
        let charge = Shard::charge(b"k0", &[0u8; 100]);
        let mut s = Shard::new(charge * 2);
        s.insert(b"k0", vec![0; 100], None, 0);
        s.insert(b"k1", vec![0; 100], None, 0);
        assert!(s.contains(b"k0", 0)); // must NOT move k0 to front
        s.insert(b"k2", vec![0; 100], None, 0);
        assert!(!s.contains(b"k0", 0), "k0 was LRU and must be evicted");
    }

    #[test]
    fn remove_frees_capacity() {
        let mut s = shard();
        s.insert(b"a", vec![0; 100], None, 0);
        assert!(s.remove(b"a"));
        assert!(!s.remove(b"a"));
        assert_eq!(s.used_bytes(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn slab_slots_are_reused() {
        let mut s = shard();
        for round in 0..10 {
            for i in 0..20u8 {
                s.insert(&[round, i], vec![i], None, 0);
            }
            for i in 0..20u8 {
                assert!(s.remove(&[round, i]));
            }
        }
        assert!(s.slab.len() <= 20, "slab grew to {}", s.slab.len());
    }

    #[test]
    fn oversized_single_entry_is_kept() {
        // An entry larger than capacity stays resident (can't evict the
        // entry just inserted); the next insert pushes it out.
        let mut s = Shard::new(50);
        s.insert(b"big", vec![0; 500], None, 0);
        assert!(s.get(b"big", 0).is_some());
        s.insert(b"big2", vec![0; 500], None, 0);
        assert!(s.get(b"big", 0).is_none());
        assert!(s.get(b"big2", 0).is_some());
    }

    #[test]
    fn many_inserts_respect_capacity() {
        let mut s = Shard::new(5_000);
        for i in 0..1000u32 {
            s.insert(&i.to_le_bytes(), vec![0; 64], None, 0);
            assert!(
                s.used_bytes() <= 5_000 + Shard::charge(&i.to_le_bytes(), &[0u8; 64]),
                "used {} after {i}",
                s.used_bytes()
            );
        }
        assert!(s.len() < 1000);
        assert!(s.evictions() > 0);
    }

    #[test]
    fn recency_order_is_full_chain() {
        // Insert many, touch in a known order, then force evictions and
        // check survivors match the touch order.
        let charge = Shard::charge(b"k0", &[0u8; 10]);
        let mut s = Shard::new(charge * 5);
        for i in 0..5u8 {
            s.insert(&[i], vec![0; 10], None, 0);
        }
        // Touch order: 3, 1, 4, 0, 2 → LRU is 3 after touching all.
        for i in [3u8, 1, 4, 0, 2] {
            assert!(s.get(&[i], 0).is_some());
        }
        s.insert(&[9], vec![0; 10], None, 0); // evicts 3
        assert!(!s.contains(&[3], 0));
        s.insert(&[10], vec![0; 10], None, 0); // evicts 1
        assert!(!s.contains(&[1], 0));
        assert!(s.contains(&[2], 0));
    }
}
