//! A single LRU shard: hash map + intrusive recency list over a slab.
//!
//! Kept lock-free internally; [`Cache`](crate::Cache) wraps each shard in
//! a reader-writer lock so independent keys — and concurrent hits on the
//! *same* key — proceed in parallel, which is what lets the cache scale
//! on many-core machines (the scalability property CloudSuite's
//! data-caching benchmark lacks, per §4.6 of the paper).
//!
//! Two read APIs exist: [`Shard::get`] is the classic exclusive-access
//! lookup that refreshes recency inline (the exact-LRU oracle used by
//! tests and the `bench_kvstore` baseline), and [`Shard::peek`] is the
//! shared-access lookup used by the cache's read path: it returns the
//! value plus a stamped [`Touch`] token, and the recency refresh is
//! applied later in a batch via [`Shard::apply_touches`] under the write
//! lock.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};
use std::sync::Arc;

const NIL: u32 = u32::MAX;

/// Multiply-rotate seed shared by the shard map hasher and the cache's
/// shard selector (which starts from a different initial state and folds
/// in the high bits, so bucket and shard choices stay uncorrelated).
pub(crate) const KEY_HASH_SEED: u64 = 0x517c_c1b7_2722_0a95;

/// Word-at-a-time multiply-rotate hasher (FxHash-style) for the shard's
/// key map. Cache keys are short internal workload identifiers (8–40
/// bytes), hashed in one or two multiplies — several times faster than
/// the default SipHash, whose hash-flooding resistance buys nothing
/// here.
#[derive(Debug, Clone, Copy, Default)]
pub struct KeyBuildHasher;

/// Streaming state produced by [`KeyBuildHasher`].
#[derive(Debug)]
pub struct KeyHasher(u64);

/// One multiply-rotate mixing step over a 64-bit word.
pub(crate) fn key_hash_step(state: u64, word: u64) -> u64 {
    (state.rotate_left(5) ^ word).wrapping_mul(KEY_HASH_SEED)
}

/// Folds `bytes` into `state`, eight bytes at a time.
pub(crate) fn key_hash_bytes(mut state: u64, bytes: &[u8]) -> u64 {
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let mut word = [0u8; 8];
        word.copy_from_slice(chunk);
        state = key_hash_step(state, u64::from_le_bytes(word));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut word = [0u8; 8];
        word[..rem.len()].copy_from_slice(rem);
        // Tag the tail with its length so "ab" and "ab\0" differ.
        state = key_hash_step(state, u64::from_le_bytes(word) ^ (rem.len() as u64) << 56);
    }
    state
}

impl Hasher for KeyHasher {
    fn write(&mut self, bytes: &[u8]) {
        self.0 = key_hash_bytes(self.0, bytes);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

impl BuildHasher for KeyBuildHasher {
    type Hasher = KeyHasher;

    fn build_hasher(&self) -> KeyHasher {
        KeyHasher(0)
    }
}

/// Fixed per-entry bookkeeping charge (slab links, map entry, TTL),
/// approximating a production cache's metadata overhead.
pub const ENTRY_OVERHEAD: usize = 64;

#[derive(Debug)]
struct Entry {
    key: Box<[u8]>,
    /// Values are shared slices so a hit hands out a reference-counted
    /// handle instead of copying the bytes — the read path's "zero-copy
    /// hits" property.
    value: Arc<[u8]>,
    expires_at_ms: Option<u64>,
    prev: u32,
    next: u32,
    /// Slot generation: bumped whenever the slot's occupant is removed,
    /// so deferred [`Touch`] tokens from a previous occupant are inert.
    stamp: u32,
    /// Whether the slot currently holds a live entry.
    live: bool,
}

/// A deferred-recency token issued by [`Shard::peek`]: identifies the
/// touched slot and the generation it was observed at. Applying a stale
/// token (the slot was removed or reused since) is a harmless no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Touch {
    idx: u32,
    stamp: u32,
}

/// Outcome of a shared-access [`Shard::peek`].
#[derive(Debug)]
pub enum Peek {
    /// The key is resident and live; the caller should enqueue the touch.
    Hit {
        /// Shared handle to the cached bytes (no copy is made).
        value: Arc<[u8]>,
        /// Deferred-recency token for this lookup.
        token: Touch,
    },
    /// The key is resident but past its TTL: report absent. The entry is
    /// physically removed (and counted as an expiration) when the token
    /// is drained through [`Shard::apply_touches`].
    Expired {
        /// Token whose drain removes the expired entry.
        token: Touch,
    },
    /// The key is not resident.
    Miss,
}

/// An LRU map with byte-based capacity accounting and optional TTLs.
///
/// All time parameters are milliseconds on a caller-provided clock, which
/// keeps the shard deterministic under test.
#[derive(Debug)]
pub struct Shard<S: BuildHasher = KeyBuildHasher> {
    map: HashMap<Box<[u8]>, u32, S>,
    slab: Vec<Entry>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    used_bytes: usize,
    capacity_bytes: usize,
    evictions: u64,
    expirations: u64,
    /// Reused dedup buffer for [`Shard::apply_touches`], so steady-state
    /// drains allocate nothing.
    scratch: Vec<Touch>,
}

impl Shard {
    /// Creates a shard bounded to `capacity_bytes` of charged data, keyed
    /// with the default multiply-rotate map hasher.
    pub fn new(capacity_bytes: usize) -> Self {
        Self::with_hasher(capacity_bytes, KeyBuildHasher)
    }
}

impl<S: BuildHasher> Shard<S> {
    /// Creates a shard with an explicit key-map hasher. Exists so
    /// `bench_kvstore` can reconstruct the pre-rewrite baseline (std's
    /// SipHash `RandomState`) byte-for-byte; production code uses
    /// [`Shard::new`].
    pub fn with_hasher(capacity_bytes: usize, hasher: S) -> Self {
        Self {
            map: HashMap::with_hasher(hasher),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            used_bytes: 0,
            capacity_bytes,
            evictions: 0,
            expirations: 0,
            scratch: Vec::new(),
        }
    }

    fn charge(key: &[u8], value: &[u8]) -> usize {
        // Key stored in both the map and the slab entry.
        key.len() * 2 + value.len() + ENTRY_OVERHEAD
    }

    fn detach(&mut self, idx: u32) {
        let (prev, next) = {
            let e = &self.slab[idx as usize];
            (e.prev, e.next)
        };
        if prev != NIL {
            self.slab[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn attach_front(&mut self, idx: u32) {
        let old_head = self.head;
        {
            let e = &mut self.slab[idx as usize];
            e.prev = NIL;
            e.next = old_head;
        }
        if old_head != NIL {
            self.slab[old_head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn remove_idx(&mut self, idx: u32) {
        self.detach(idx);
        let entry = &mut self.slab[idx as usize];
        self.used_bytes -= Self::charge(&entry.key, &entry.value);
        let key = std::mem::take(&mut entry.key);
        // Drop this slot's handle; the bytes free once the last reader's
        // clone does (empty `Arc<[u8]>` is allocation-free).
        entry.value = Arc::default();
        // Invalidate outstanding touch tokens for this occupant.
        entry.stamp = entry.stamp.wrapping_add(1);
        entry.live = false;
        self.map.remove(&key);
        self.free.push(idx);
    }

    /// Looks up `key`, refreshing recency. Expired entries are removed and
    /// reported as absent. Returns an owned copy of the value — the
    /// pre-rewrite contract this path exists to preserve (it is the
    /// exact-LRU oracle and the `bench_kvstore` baseline); the cache's
    /// own read path goes through the zero-copy [`Shard::peek`].
    pub fn get(&mut self, key: &[u8], now_ms: u64) -> Option<Vec<u8>> {
        let idx = *self.map.get(key)?;
        if let Some(exp) = self.slab[idx as usize].expires_at_ms {
            if exp <= now_ms {
                self.remove_idx(idx);
                self.expirations += 1;
                return None;
            }
        }
        self.detach(idx);
        self.attach_front(idx);
        Some(self.slab[idx as usize].value.to_vec())
    }

    /// Checks presence without refreshing recency or cloning.
    pub fn contains(&self, key: &[u8], now_ms: u64) -> bool {
        self.map.get(key).is_some_and(|&idx| {
            self.slab[idx as usize]
                .expires_at_ms
                .is_none_or(|exp| exp > now_ms)
        })
    }

    /// Shared-access lookup: returns the value (and a deferred-recency
    /// [`Touch`] token) without mutating the shard, so concurrent hits
    /// proceed under a read lock. Expired entries report [`Peek::Expired`]
    /// and are removed when their token drains.
    pub fn peek(&self, key: &[u8], now_ms: u64) -> Peek {
        let Some(&idx) = self.map.get(key) else {
            return Peek::Miss;
        };
        let entry = &self.slab[idx as usize];
        let token = Touch {
            idx,
            stamp: entry.stamp,
        };
        if entry.expires_at_ms.is_some_and(|exp| exp <= now_ms) {
            return Peek::Expired { token };
        }
        Peek::Hit {
            value: Arc::clone(&entry.value),
            token,
        }
    }

    /// Drains a batch of deferred-recency tokens, in issue order: live
    /// touched entries move to the recency front, entries observed (or
    /// since become) expired are removed and counted, and stale tokens
    /// (slot removed or reused since issue) are skipped. Returns the
    /// number of expirations performed.
    pub fn apply_touches(&mut self, touches: &[Touch], now_ms: u64) -> u64 {
        // Only each slot's *last* touch matters: any earlier move-to-front
        // is superseded by the later one, so duplicates are dropped before
        // paying the list splice. (Dedup by slot index alone is exact —
        // a slot's stamp cannot change between touches in one batch,
        // because removal or reuse happens under the write lock, which
        // drains the buffer first.) Hot-key skew makes this a large cut:
        // a Zipf 0.99 batch is mostly repeats of a few slots.
        let mut last = std::mem::take(&mut self.scratch);
        last.clear();
        for touch in touches.iter().rev() {
            if last.iter().any(|t| t.idx == touch.idx) {
                continue;
            }
            last.push(*touch);
        }
        let mut expired = 0;
        // `last` holds final occurrences in reverse encounter order;
        // applying it back-to-front restores the batch's issue order.
        for touch in last.iter().rev() {
            let Some(entry) = self.slab.get(touch.idx as usize) else {
                continue;
            };
            if !entry.live || entry.stamp != touch.stamp {
                continue;
            }
            if entry.expires_at_ms.is_some_and(|exp| exp <= now_ms) {
                self.remove_idx(touch.idx);
                self.expirations += 1;
                expired += 1;
            } else {
                self.detach(touch.idx);
                self.attach_front(touch.idx);
            }
        }
        self.scratch = last;
        expired
    }

    /// Inserts or replaces `key`, evicting LRU entries to stay within
    /// capacity. Returns the number of entries evicted. Accepts anything
    /// convertible to a shared slice, so owned writes (`Vec<u8>`) and
    /// already-shared fills (`Arc<[u8]>`) both land without an extra copy
    /// beyond the conversion itself.
    pub fn insert(
        &mut self,
        key: &[u8],
        value: impl Into<Arc<[u8]>>,
        ttl_ms: Option<u64>,
        now_ms: u64,
    ) -> u64 {
        let value: Arc<[u8]> = value.into();
        if let Some(&idx) = self.map.get(key) {
            self.remove_idx(idx);
        }
        let charge = Self::charge(key, &value);
        let boxed_key: Box<[u8]> = key.into();
        let mut entry = Entry {
            key: boxed_key.clone(),
            value,
            expires_at_ms: ttl_ms.map(|t| now_ms.saturating_add(t)),
            prev: NIL,
            next: NIL,
            stamp: 0,
            live: true,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                // Keep the slot's (already bumped) generation so touch
                // tokens from the previous occupant stay inert.
                entry.stamp = self.slab[i as usize].stamp;
                self.slab[i as usize] = entry;
                i
            }
            None => {
                self.slab.push(entry);
                (self.slab.len() - 1) as u32
            }
        };
        self.map.insert(boxed_key, idx);
        self.used_bytes += charge;
        self.attach_front(idx);

        let mut evicted = 0;
        while self.used_bytes > self.capacity_bytes && self.tail != NIL && self.tail != idx {
            let victim = self.tail;
            self.remove_idx(victim);
            evicted += 1;
        }
        self.evictions += evicted;
        evicted
    }

    /// Removes `key`, returning whether it was present.
    pub fn remove(&mut self, key: &[u8]) -> bool {
        if let Some(&idx) = self.map.get(key) {
            self.remove_idx(idx);
            true
        } else {
            false
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the shard holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Charged bytes currently held.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Total evictions performed.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Total TTL expirations observed.
    pub fn expirations(&self) -> u64 {
        self.expirations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard() -> Shard {
        Shard::new(10_000)
    }

    #[test]
    fn insert_then_get() {
        let mut s = shard();
        s.insert(b"a", vec![1, 2], None, 0);
        assert_eq!(s.get(b"a", 0), Some(vec![1, 2]));
        assert_eq!(s.len(), 1);
        assert!(s.get(b"b", 0).is_none());
    }

    #[test]
    fn replace_updates_value_and_charge() {
        let mut s = shard();
        s.insert(b"a", vec![0; 100], None, 0);
        let used_before = s.used_bytes();
        s.insert(b"a", vec![0; 10], None, 0);
        assert_eq!(s.get(b"a", 0), Some(vec![0; 10]));
        assert!(s.used_bytes() < used_before);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Capacity fits ~3 entries of this size.
        let charge = Shard::<KeyBuildHasher>::charge(b"k0", &[0u8; 100]);
        let mut s = Shard::new(charge * 3);
        s.insert(b"k0", vec![0; 100], None, 0);
        s.insert(b"k1", vec![0; 100], None, 0);
        s.insert(b"k2", vec![0; 100], None, 0);
        // Touch k0 so k1 is the LRU.
        assert!(s.get(b"k0", 0).is_some());
        s.insert(b"k3", vec![0; 100], None, 0);
        assert!(s.get(b"k1", 0).is_none(), "k1 should have been evicted");
        assert!(s.get(b"k0", 0).is_some());
        assert!(s.get(b"k2", 0).is_some());
        assert!(s.get(b"k3", 0).is_some());
        assert_eq!(s.evictions(), 1);
    }

    #[test]
    fn ttl_expires_entries() {
        let mut s = shard();
        s.insert(b"a", vec![1], Some(100), 0);
        assert!(s.get(b"a", 50).is_some());
        assert!(s.get(b"a", 100).is_none());
        assert_eq!(s.expirations(), 1);
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn contains_does_not_refresh() {
        let charge = Shard::<KeyBuildHasher>::charge(b"k0", &[0u8; 100]);
        let mut s = Shard::new(charge * 2);
        s.insert(b"k0", vec![0; 100], None, 0);
        s.insert(b"k1", vec![0; 100], None, 0);
        assert!(s.contains(b"k0", 0)); // must NOT move k0 to front
        s.insert(b"k2", vec![0; 100], None, 0);
        assert!(!s.contains(b"k0", 0), "k0 was LRU and must be evicted");
    }

    #[test]
    fn remove_frees_capacity() {
        let mut s = shard();
        s.insert(b"a", vec![0; 100], None, 0);
        assert!(s.remove(b"a"));
        assert!(!s.remove(b"a"));
        assert_eq!(s.used_bytes(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn slab_slots_are_reused() {
        let mut s = shard();
        for round in 0..10 {
            for i in 0..20u8 {
                s.insert(&[round, i], vec![i], None, 0);
            }
            for i in 0..20u8 {
                assert!(s.remove(&[round, i]));
            }
        }
        assert!(s.slab.len() <= 20, "slab grew to {}", s.slab.len());
    }

    #[test]
    fn oversized_single_entry_is_kept() {
        // An entry larger than capacity stays resident (can't evict the
        // entry just inserted); the next insert pushes it out.
        let mut s = Shard::new(50);
        s.insert(b"big", vec![0; 500], None, 0);
        assert!(s.get(b"big", 0).is_some());
        s.insert(b"big2", vec![0; 500], None, 0);
        assert!(s.get(b"big", 0).is_none());
        assert!(s.get(b"big2", 0).is_some());
    }

    #[test]
    fn many_inserts_respect_capacity() {
        let mut s = Shard::new(5_000);
        for i in 0..1000u32 {
            s.insert(&i.to_le_bytes(), vec![0; 64], None, 0);
            assert!(
                s.used_bytes()
                    <= 5_000 + Shard::<KeyBuildHasher>::charge(&i.to_le_bytes(), &[0u8; 64]),
                "used {} after {i}",
                s.used_bytes()
            );
        }
        assert!(s.len() < 1000);
        assert!(s.evictions() > 0);
    }

    #[test]
    fn peek_defers_recency_until_drain() {
        let charge = Shard::<KeyBuildHasher>::charge(b"k0", &[0u8; 100]);
        let mut s = Shard::new(charge * 2);
        s.insert(b"k0", vec![0; 100], None, 0);
        s.insert(b"k1", vec![0; 100], None, 0);
        // Peek k0 but do not drain: recency unchanged, k0 is still LRU.
        let Peek::Hit { value, token } = s.peek(b"k0", 0) else {
            panic!("k0 must be resident");
        };
        assert_eq!(&value[..], [0u8; 100]);
        // Drain the touch: k0 moves to front, k1 becomes the victim.
        assert_eq!(s.apply_touches(&[token], 0), 0);
        s.insert(b"k2", vec![0; 100], None, 0);
        assert!(s.contains(b"k0", 0));
        assert!(!s.contains(b"k1", 0), "k1 was LRU after the drain");
    }

    #[test]
    fn stale_touch_tokens_are_inert() {
        let mut s = shard();
        s.insert(b"a", vec![1], None, 0);
        let Peek::Hit { token, .. } = s.peek(b"a", 0) else {
            panic!("a must be resident");
        };
        // Remove and reinsert into the same slot: the old token must not
        // refresh (or corrupt) the new occupant.
        assert!(s.remove(b"a"));
        s.insert(b"b", vec![2], None, 0);
        assert_eq!(s.apply_touches(&[token], 0), 0);
        assert_eq!(s.get(b"b", 0), Some(vec![2]));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn expired_peek_is_removed_on_drain_once() {
        let mut s = shard();
        s.insert(b"a", vec![1], Some(100), 0);
        let Peek::Expired { token } = s.peek(b"a", 100) else {
            panic!("a must be expired at t=100");
        };
        let Peek::Expired { token: token2 } = s.peek(b"a", 150) else {
            panic!("a must still be (logically) expired at t=150");
        };
        // Two queued tokens for the same expired entry: one removal.
        assert_eq!(s.apply_touches(&[token, token2], 150), 1);
        assert_eq!(s.expirations(), 1);
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn recency_order_is_full_chain() {
        // Insert many, touch in a known order, then force evictions and
        // check survivors match the touch order.
        let charge = Shard::<KeyBuildHasher>::charge(b"k0", &[0u8; 10]);
        let mut s = Shard::new(charge * 5);
        for i in 0..5u8 {
            s.insert(&[i], vec![0; 10], None, 0);
        }
        // Touch order: 3, 1, 4, 0, 2 → LRU is 3 after touching all.
        for i in [3u8, 1, 4, 0, 2] {
            assert!(s.get(&[i], 0).is_some());
        }
        s.insert(&[9], vec![0; 10], None, 0); // evicts 3
        assert!(!s.contains(&[3], 0));
        s.insert(&[10], vec![0; 10], None, 0); // evicts 1
        assert!(!s.contains(&[1], 0));
        assert!(s.contains(&[2], 0));
    }
}
