//! Cache-wide counters, recorded through the unified telemetry layer.

use dcperf_telemetry::{metrics, Counter, Telemetry};
use std::sync::Arc;

/// Hit/miss/fill counters shared across all shards of a
/// [`Cache`](crate::Cache).
///
/// The counters live in a [`Telemetry`] registry (under the
/// `kvstore.cache.*` namespace by default), so a suite-level registry can
/// observe the cache alongside every other subsystem; this struct is a
/// set of pre-resolved handles plus derived-rate helpers.
#[derive(Debug)]
pub struct CacheStats {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    insertions: Arc<Counter>,
    evictions: Arc<Counter>,
    load_failures: Arc<Counter>,
}

impl CacheStats {
    /// Creates zeroed counters in a private registry.
    pub fn new() -> Self {
        Self::with_telemetry(&Telemetry::new(), metrics::PREFIX_CACHE)
    }

    /// Registers the counters under `<prefix>.*` in `telemetry`.
    pub fn with_telemetry(telemetry: &Telemetry, prefix: &str) -> Self {
        let counter = |s| telemetry.counter(&metrics::scoped(prefix, s));
        Self {
            hits: counter(metrics::suffix::HITS),
            misses: counter(metrics::suffix::MISSES),
            insertions: counter(metrics::suffix::INSERTIONS),
            evictions: counter(metrics::suffix::EVICTIONS),
            load_failures: counter(metrics::suffix::LOAD_FAILURES),
        }
    }

    pub(crate) fn record_hit(&self) {
        self.hits.inc();
    }

    pub(crate) fn record_miss(&self) {
        self.misses.inc();
    }

    pub(crate) fn record_insertion(&self, evicted: u64) {
        self.insertions.inc();
        if evicted > 0 {
            self.evictions.add(evicted);
        }
    }

    pub(crate) fn record_load_failure(&self) {
        self.load_failures.inc();
    }

    /// Cache hits.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Cache misses.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Entries inserted (sets plus read-through fills).
    pub fn insertions(&self) -> u64 {
        self.insertions.get()
    }

    /// Entries evicted for capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }

    /// Read-through loads that returned nothing.
    pub fn load_failures(&self) -> u64 {
        self.load_failures.get()
    }

    /// Hit rate over all lookups (0.0 before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits();
        let total = hits + self.misses();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

impl Default for CacheStats {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_math() {
        let s = CacheStats::new();
        assert_eq!(s.hit_rate(), 0.0);
        s.record_hit();
        s.record_hit();
        s.record_hit();
        s.record_miss();
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn insertion_tracks_evictions() {
        let s = CacheStats::new();
        s.record_insertion(0);
        s.record_insertion(3);
        assert_eq!(s.insertions(), 2);
        assert_eq!(s.evictions(), 3);
    }

    #[test]
    fn counters_appear_in_shared_registry() {
        let telemetry = Telemetry::new();
        let s = CacheStats::with_telemetry(&telemetry, metrics::PREFIX_CACHE);
        s.record_hit();
        s.record_miss();
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("kvstore.cache.hits"), Some(1));
        assert_eq!(snap.counter("kvstore.cache.misses"), Some(1));
    }
}
