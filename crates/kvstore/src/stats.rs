//! Cache-wide counters, recorded through the unified telemetry layer.

use dcperf_telemetry::{metrics, Counter, Telemetry};
use std::sync::Arc;

/// Hit/miss/fill counters shared across all shards of a
/// [`Cache`](crate::Cache).
///
/// The counters live in a [`Telemetry`] registry (under the
/// `kvstore.cache.*` namespace by default), so a suite-level registry can
/// observe the cache alongside every other subsystem; this struct is a
/// set of pre-resolved handles plus derived-rate helpers.
#[derive(Debug)]
pub struct CacheStats {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    insertions: Arc<Counter>,
    evictions: Arc<Counter>,
    expirations: Arc<Counter>,
    load_failures: Arc<Counter>,
    singleflight_fills: Arc<Counter>,
    singleflight_waits: Arc<Counter>,
    singleflight_failed_waits: Arc<Counter>,
}

impl CacheStats {
    /// Creates zeroed counters in a private registry.
    pub fn new() -> Self {
        Self::with_telemetry(&Telemetry::new(), metrics::PREFIX_CACHE)
    }

    /// Registers the counters under `<prefix>.*` in `telemetry`.
    pub fn with_telemetry(telemetry: &Telemetry, prefix: &str) -> Self {
        let counter = |s| telemetry.counter(&metrics::scoped(prefix, s));
        Self {
            hits: counter(metrics::suffix::HITS),
            misses: counter(metrics::suffix::MISSES),
            insertions: counter(metrics::suffix::INSERTIONS),
            evictions: counter(metrics::suffix::EVICTIONS),
            expirations: counter(metrics::suffix::EXPIRATIONS),
            load_failures: counter(metrics::suffix::LOAD_FAILURES),
            singleflight_fills: counter(metrics::suffix::SINGLEFLIGHT_FILLS),
            singleflight_waits: counter(metrics::suffix::SINGLEFLIGHT_WAITS),
            singleflight_failed_waits: counter(metrics::suffix::SINGLEFLIGHT_FAILED_WAITS),
        }
    }

    pub(crate) fn record_hit(&self) {
        self.hits.inc();
    }

    pub(crate) fn record_miss(&self) {
        self.misses.inc();
    }

    pub(crate) fn record_hits(&self, n: u64) {
        if n > 0 {
            self.hits.add(n);
        }
    }

    pub(crate) fn record_misses(&self, n: u64) {
        if n > 0 {
            self.misses.add(n);
        }
    }

    pub(crate) fn record_insertion(&self, evicted: u64) {
        self.insertions.inc();
        if evicted > 0 {
            self.evictions.add(evicted);
        }
    }

    pub(crate) fn record_load_failure(&self) {
        self.load_failures.inc();
    }

    pub(crate) fn record_expirations(&self, expired: u64) {
        if expired > 0 {
            self.expirations.add(expired);
        }
    }

    pub(crate) fn record_singleflight_fill(&self) {
        self.singleflight_fills.inc();
    }

    pub(crate) fn record_singleflight_wait(&self) {
        self.singleflight_waits.inc();
    }

    pub(crate) fn record_singleflight_failed_wait(&self) {
        self.singleflight_failed_waits.inc();
    }

    /// Cache hits.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Cache misses.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Entries inserted (sets plus read-through fills).
    pub fn insertions(&self) -> u64 {
        self.insertions.get()
    }

    /// Entries evicted for capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }

    /// Entries removed because their TTL elapsed (counted when the
    /// expired entry is physically dropped at a touch-buffer drain).
    pub fn expirations(&self) -> u64 {
        self.expirations.get()
    }

    /// Read-through loads that returned nothing.
    pub fn load_failures(&self) -> u64 {
        self.load_failures.get()
    }

    /// Misses that ran the loader as the single-flight leader.
    pub fn singleflight_fills(&self) -> u64 {
        self.singleflight_fills.get()
    }

    /// Misses that parked behind another caller's in-flight fill instead
    /// of re-running the loader.
    pub fn singleflight_waits(&self) -> u64 {
        self.singleflight_waits.get()
    }

    /// Parked waiters released by a failed (or panicked) fill.
    pub fn singleflight_failed_waits(&self) -> u64 {
        self.singleflight_failed_waits.get()
    }

    /// Hit rate over all lookups (0.0 before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits();
        let total = hits + self.misses();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

impl Default for CacheStats {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_math() {
        let s = CacheStats::new();
        assert_eq!(s.hit_rate(), 0.0);
        s.record_hit();
        s.record_hit();
        s.record_hit();
        s.record_miss();
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn insertion_tracks_evictions() {
        let s = CacheStats::new();
        s.record_insertion(0);
        s.record_insertion(3);
        assert_eq!(s.insertions(), 2);
        assert_eq!(s.evictions(), 3);
    }

    #[test]
    fn counters_appear_in_shared_registry() {
        let telemetry = Telemetry::new();
        let s = CacheStats::with_telemetry(&telemetry, metrics::PREFIX_CACHE);
        s.record_hit();
        s.record_miss();
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("kvstore.cache.hits"), Some(1));
        assert_eq!(snap.counter("kvstore.cache.misses"), Some(1));
    }
}
