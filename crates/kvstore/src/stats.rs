//! Cache-wide counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Hit/miss/fill counters shared across all shards of a
/// [`Cache`](crate::Cache).
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    load_failures: AtomicU64,
}

impl CacheStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_insertion(&self, evicted: u64) {
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_load_failure(&self) {
        self.load_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Cache hits.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries inserted (sets plus read-through fills).
    pub fn insertions(&self) -> u64 {
        self.insertions.load(Ordering::Relaxed)
    }

    /// Entries evicted for capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Read-through loads that returned nothing.
    pub fn load_failures(&self) -> u64 {
        self.load_failures.load(Ordering::Relaxed)
    }

    /// Hit rate over all lookups (0.0 before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits();
        let total = hits + self.misses();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_math() {
        let s = CacheStats::new();
        assert_eq!(s.hit_rate(), 0.0);
        s.record_hit();
        s.record_hit();
        s.record_hit();
        s.record_miss();
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn insertion_tracks_evictions() {
        let s = CacheStats::new();
        s.record_insertion(0);
        s.record_insertion(3);
        assert_eq!(s.insertions(), 2);
        assert_eq!(s.evictions(), 3);
    }
}
