//! A sharded, concurrent, read-through LRU cache plus a simulated backing
//! store — the substrate of TaoBench.
//!
//! The DCPerf paper is explicit that architectural fidelity matters here:
//! "while many caching benchmarks implement a look-aside cache, DCPerf
//! uses a read-through cache because our production systems employ it to
//! simplify application logic" (§2.2). [`Cache`] therefore exposes
//! [`Cache::get_or_load`], which consults the cache and *itself* fetches
//! from the backing loader on a miss — callers never manage the fill path.
//!
//! * [`Cache`] — sharded LRU behind per-shard `RwLock`s: hits take the
//!   read lock and return shared `Arc<[u8]>` handles (zero-copy) while
//!   deferring LRU recency into a batched touch buffer, so
//!   concurrent reads of a hot key scale with cores (the paper's §4.6
//!   complaint about CloudSuite's data-caching tier); concurrent misses
//!   on one key are collapsed onto a single loader run (single-flight),
//!   and pipelined bursts map onto shard-grouped [`Cache::get_many`] /
//!   [`Cache::set_many`] passes.
//! * [`BackingStore`] — a deterministic "database" with a configurable
//!   lookup-latency model, standing in for the MySQL/Cassandra tiers the
//!   paper's benchmarks attach to.
//!
//! # Examples
//!
//! ```
//! use dcperf_kvstore::{Cache, CacheConfig};
//!
//! let cache = Cache::new(CacheConfig::with_capacity_bytes(1 << 20));
//! let value = cache.get_or_load(b"user:42", |_key| Some(vec![7u8; 100]));
//! assert_eq!(value.as_deref(), Some(&[7u8; 100][..]));
//! assert_eq!(cache.stats().misses(), 1);
//! let again = cache.get_or_load(b"user:42", |_key| None);
//! assert!(again.is_some()); // served from cache; loader not consulted
//! assert_eq!(cache.stats().hits(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backing;
pub mod cache;
pub mod shard;
pub mod stats;

pub use backing::{BackingStore, BackingStoreConfig};
pub use cache::{Cache, CacheConfig, DEFAULT_RECENCY_SAMPLE, MIN_SHARD_CAPACITY};
pub use stats::CacheStats;
