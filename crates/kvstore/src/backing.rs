//! A simulated backing database.
//!
//! TaoBench's slow path "simulates backend database lookup delay, new
//! object creation, and Memcached insertion" (§3.2). [`BackingStore`]
//! provides that: deterministic object synthesis keyed on the lookup key
//! (so re-reads agree), value sizes drawn from a production-shaped
//! log-normal distribution, and a configurable lookup latency.

use dcperf_util::{LogNormal, Rng, SplitMix64};
#[cfg(feature = "fault-injection")]
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of the simulated database tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackingStoreConfig {
    /// Median object size in bytes.
    pub value_median_bytes: f64,
    /// Log-normal sigma of the size distribution.
    pub value_sigma: f64,
    /// Smallest object size.
    pub min_bytes: usize,
    /// Largest object size.
    pub max_bytes: usize,
    /// Simulated lookup latency per request.
    pub lookup_latency: Duration,
    /// Keys beyond this population report "not found".
    pub population: u64,
}

impl BackingStoreConfig {
    /// A TAO-flavoured default: small social-graph objects with a heavy
    /// tail, sub-millisecond lookups.
    pub fn tao_like() -> Self {
        Self {
            value_median_bytes: 300.0,
            value_sigma: 1.0,
            min_bytes: 16,
            max_bytes: 64 << 10,
            lookup_latency: Duration::from_micros(300),
            population: u64::MAX,
        }
    }

    /// Disables simulated latency (builder style), for pure-CPU tests.
    pub fn without_latency(mut self) -> Self {
        self.lookup_latency = Duration::ZERO;
        self
    }

    /// Bounds the key population (builder style); lookups past it miss.
    pub fn with_population(mut self, population: u64) -> Self {
        self.population = population;
        self
    }
}

/// A deterministic, latency-modeled "database".
#[derive(Debug, Clone)]
pub struct BackingStore {
    config: BackingStoreConfig,
    sizes: LogNormal,
    seed: u64,
    /// Fault injector applied per lookup (chaos scenarios only).
    #[cfg(feature = "fault-injection")]
    fault_plan: Option<Arc<dcperf_resilience::FaultPlan>>,
}

impl BackingStore {
    /// Creates a store; `seed` perturbs all synthesized content.
    ///
    /// # Panics
    ///
    /// Panics if the configured size distribution is invalid
    /// (non-positive median or negative sigma).
    pub fn new(config: BackingStoreConfig, seed: u64) -> Self {
        let sizes = LogNormal::from_median(config.value_median_bytes, config.value_sigma)
            // analyzer: allow(panic-path) — construction-time config validation, documented above
            .expect("backing store size distribution must be valid");
        Self {
            config,
            sizes,
            seed,
            #[cfg(feature = "fault-injection")]
            fault_plan: None,
        }
    }

    /// Attaches a [`dcperf_resilience::FaultPlan`] to every lookup
    /// (builder style): injected latency is paid on top of the configured
    /// lookup latency, and injected errors/overloads surface as lookup
    /// misses — the database tier "lost" the object, forcing the caller's
    /// slow path. Only compiled with the `fault-injection` feature.
    #[cfg(feature = "fault-injection")]
    #[must_use]
    pub fn with_fault_plan(mut self, plan: Arc<dcperf_resilience::FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// The configuration in effect.
    pub fn config(&self) -> &BackingStoreConfig {
        &self.config
    }

    /// Numeric id for a key (stable hash).
    fn key_id(&self, key: &[u8]) -> u64 {
        let mut h = self.seed ^ 0x9E37_79B9_7F4A_7C15;
        for &b in key {
            h = SplitMix64::mix(h ^ b as u64);
        }
        h
    }

    /// Synthesizes the object for `key`, paying the configured lookup
    /// latency. Returns `None` for keys outside the configured population.
    pub fn lookup(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.pay_latency();
        #[cfg(feature = "fault-injection")]
        if let Some(plan) = &self.fault_plan {
            if plan.apply() != dcperf_resilience::FaultOutcome::Pass {
                return None;
            }
        }
        let id = self.key_id(key);
        if self.config.population != u64::MAX {
            // Map the hash onto the population range; out-of-population
            // keys model deleted/never-created objects.
            if id % 100 >= 98 && self.config.population < u64::MAX {
                // ~2% permanent misses, as TAO sees for deleted objects.
                return None;
            }
        }
        Some(self.synthesize(id))
    }

    /// Synthesizes without latency (used by dataset builders).
    pub fn synthesize_for_key(&self, key: &[u8]) -> Vec<u8> {
        self.synthesize(self.key_id(key))
    }

    fn synthesize(&self, id: u64) -> Vec<u8> {
        let mut rng = SplitMix64::new(id);
        let size = (self.sizes.sample(&mut rng) as usize)
            .clamp(self.config.min_bytes, self.config.max_bytes);
        // Produce semi-compressible content: runs of structured bytes with
        // random breaks, shaped like serialized objects rather than noise.
        let mut value = Vec::with_capacity(size);
        while value.len() < size {
            let run = (rng.next_u64() % 24 + 4) as usize;
            let byte = (rng.next_u64() % 64 + 32) as u8; // printable-ish
            let n = run.min(size - value.len());
            value.extend(std::iter::repeat_n(byte, n));
        }
        value
    }

    fn pay_latency(&self) {
        let lat = self.config.lookup_latency;
        if lat.is_zero() {
            return;
        }
        if lat >= Duration::from_millis(2) {
            std::thread::sleep(lat);
        } else {
            // Sub-millisecond sleeps are unreliable; spin on the clock as
            // a DB-stub would block on I/O completion.
            let deadline = Instant::now() + lat;
            while Instant::now() < deadline {
                std::hint::spin_loop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> BackingStore {
        BackingStore::new(BackingStoreConfig::tao_like().without_latency(), 42)
    }

    #[test]
    fn lookups_are_deterministic() {
        let s = store();
        let a = s.lookup(b"object:123").unwrap();
        let b = s.lookup(b"object:123").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_keys_differ() {
        let s = store();
        assert_ne!(s.lookup(b"a").unwrap(), s.lookup(b"b").unwrap());
    }

    #[test]
    fn different_seeds_differ() {
        let s1 = BackingStore::new(BackingStoreConfig::tao_like().without_latency(), 1);
        let s2 = BackingStore::new(BackingStoreConfig::tao_like().without_latency(), 2);
        assert_ne!(s1.lookup(b"k").unwrap(), s2.lookup(b"k").unwrap());
    }

    #[test]
    fn sizes_respect_bounds() {
        let s = store();
        for i in 0..500u32 {
            let v = s.lookup(&i.to_le_bytes()).unwrap();
            assert!(v.len() >= 16 && v.len() <= 64 << 10, "len={}", v.len());
        }
    }

    #[test]
    fn sizes_are_heavy_tailed() {
        let s = store();
        let sizes: Vec<usize> = (0..2000u32)
            .map(|i| s.lookup(&i.to_le_bytes()).unwrap().len())
            .collect();
        let small = sizes.iter().filter(|&&n| n < 300).count();
        let large = sizes.iter().filter(|&&n| n > 1200).count();
        assert!(small > 500, "small={small}");
        assert!(large > 50, "large={large}");
    }

    #[test]
    fn bounded_population_produces_misses() {
        let s = BackingStore::new(
            BackingStoreConfig::tao_like()
                .without_latency()
                .with_population(1000),
            7,
        );
        let misses = (0..2000u32)
            .filter(|i| s.lookup(&i.to_le_bytes()).is_none())
            .count();
        assert!(misses > 0, "expected some permanent misses");
        assert!(misses < 200, "misses={misses} (should be ~2%)");
    }

    #[test]
    fn latency_is_paid() {
        let s = BackingStore::new(
            BackingStoreConfig {
                lookup_latency: Duration::from_micros(500),
                ..BackingStoreConfig::tao_like()
            },
            0,
        );
        let start = Instant::now();
        for i in 0..10u32 {
            let _ = s.lookup(&i.to_le_bytes());
        }
        assert!(
            start.elapsed() >= Duration::from_micros(5 * 500),
            "latency not enforced: {:?}",
            start.elapsed()
        );
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn fault_plan_injects_misses_and_latency() {
        use dcperf_resilience::{FaultPlan, LatencyFault};
        let plan = Arc::new(
            FaultPlan::new(11)
                .with_error_rate(0.5)
                .with_latency(1.0, LatencyFault::Fixed(Duration::from_micros(200))),
        );
        let s = BackingStore::new(BackingStoreConfig::tao_like().without_latency(), 42)
            .with_fault_plan(Arc::clone(&plan));
        let start = Instant::now();
        let misses = (0..200u32)
            .filter(|i| s.lookup(&i.to_le_bytes()).is_none())
            .count();
        // ~50% of lookups fault into misses; every lookup pays 200us.
        assert!((60..=140).contains(&misses), "misses={misses}");
        assert!(start.elapsed() >= Duration::from_micros(200 * 150));
        assert_eq!(plan.operations(), 200);
        assert!(plan.injected_errors() > 0);
        assert_eq!(plan.injected_latency_ops(), 200);
        // The same plan seed faults the same operation indices.
        let s2 = BackingStore::new(BackingStoreConfig::tao_like().without_latency(), 42)
            .with_fault_plan(Arc::new(
                FaultPlan::new(11)
                    .with_error_rate(0.5)
                    .with_latency(1.0, LatencyFault::Fixed(Duration::ZERO)),
            ));
        let misses2 = (0..200u32)
            .filter(|i| s2.lookup(&i.to_le_bytes()).is_none())
            .count();
        assert_eq!(misses, misses2);
    }

    #[test]
    fn content_is_semi_compressible() {
        // Runs of repeated bytes should compress; verify the run structure
        // exists (distinct byte count far below length).
        let s = store();
        let v = s.lookup(b"compress-me").unwrap();
        let distinct: std::collections::HashSet<u8> = v.iter().copied().collect();
        assert!(distinct.len() < v.len().min(64) + 1);
    }
}
