//! The sharded, read-through cache.
//!
//! Two properties distinguish this tier from a textbook locked map:
//!
//! * **Read-scalable hits** — each shard sits behind a
//!   [`parking_lot::RwLock`], so concurrent hits (including hits on the
//!   *same* hot key) take the read lock and proceed in parallel. Hits
//!   are zero-copy: values live in the cache as shared `Arc<[u8]>`
//!   slices, and a hit hands back a reference-counted handle instead of
//!   copying the bytes out under the lock. LRU
//!   recency is not updated inline: hits enqueue a stamped touch token
//!   into a small per-shard buffer, drained under the write lock when the
//!   buffer fills or the next write arrives. Touches are *sampled*: by
//!   default only every 8th hit per shard enqueues one (exactness is a
//!   config knob), and under contention the buffer push is a `try_lock`
//!   — a busy buffer drops the touch rather than ever blocking the hit
//!   path. Expired-entry reclamation tokens are never sampled away.
//! * **Single-flight fills** — concurrent misses on one key are
//!   deduplicated through a per-shard in-flight table: one caller (the
//!   leader) runs the loader, everyone else parks on a condvar and
//!   receives the filled value. A failed (or panicked) loader publishes a
//!   typed `Failed` outcome, so waiters observe the failure *without*
//!   re-running the loader — an injected backing-store stall cannot turn
//!   one miss into N concurrent loads.

use crate::shard::{Peek, Shard, Touch, ENTRY_OVERHEAD};
use crate::stats::CacheStats;
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Deferred touches buffered per shard before a drain is forced.
/// Recency lag never affects eviction decisions — every write drains the
/// buffer before mutating — so a larger cap only trades memory for fewer
/// write-lock rounds (and gives the drain's duplicate-slot dedup more to
/// collapse under hot-key skew).
const TOUCH_BUFFER_CAP: usize = 64;

thread_local! {
    /// Per-thread scratch for [`Cache::get_many`]: shard tags and the
    /// sampled-touch staging area, reused across calls so the batched
    /// read path's only steady-state allocation is its results vector.
    static GET_MANY_SCRATCH: std::cell::RefCell<(Vec<u32>, Vec<Touch>)> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
}

/// The smallest per-shard byte budget worth sharding down to: enough for
/// one typical entry (metadata overhead plus a small key and value).
/// [`Cache::new`] clamps the shard count so no shard falls below this,
/// preventing degenerate configurations where every entry is "oversized"
/// and permanently resident.
pub const MIN_SHARD_CAPACITY: usize = 4 * ENTRY_OVERHEAD;

/// Cache sizing and sharding configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total charged capacity across all shards.
    pub capacity_bytes: usize,
    /// Number of independent shards (rounded up to a power of two, then
    /// clamped so each shard holds at least [`MIN_SHARD_CAPACITY`] bytes).
    pub shards: usize,
    /// Default TTL applied by [`Cache::set`] when none is given, in
    /// milliseconds; `None` disables expiry.
    pub default_ttl_ms: Option<u64>,
    /// Whether concurrent misses on one key are collapsed onto a single
    /// loader run (on by default). Disabling reproduces the classic
    /// Memcached-style thundering herd, which `cargo bench-kvstore`
    /// measures as fill amplification.
    pub single_flight: bool,
    /// Recency sampling rate: a hit enqueues an LRU touch only every Nth
    /// time (per shard). `1` makes batched recency exact; the default of
    /// `8` trades a bounded approximation in eviction order for most of
    /// the touch-machinery cost on the hit path — the same trade
    /// production caches make (Memcached suppresses repeat bumps for 60
    /// seconds). Expired entries are exempt: their reclamation tokens are
    /// always enqueued, so TTL accounting never degrades.
    pub recency_sample_every: u32,
}

/// Default [`CacheConfig::recency_sample_every`]: touch every 8th hit.
pub const DEFAULT_RECENCY_SAMPLE: u32 = 8;

impl CacheConfig {
    /// A configuration with the given capacity and a shard count suited to
    /// the host's parallelism.
    pub fn with_capacity_bytes(capacity_bytes: usize) -> Self {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self {
            capacity_bytes,
            shards: (parallelism * 4).next_power_of_two(),
            default_ttl_ms: None,
            single_flight: true,
            recency_sample_every: DEFAULT_RECENCY_SAMPLE,
        }
    }

    /// Overrides the shard count (builder style).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1).next_power_of_two();
        self
    }

    /// Sets the default TTL (builder style).
    pub fn with_default_ttl_ms(mut self, ttl_ms: u64) -> Self {
        self.default_ttl_ms = Some(ttl_ms);
        self
    }

    /// Disables single-flight fill deduplication (builder style).
    pub fn without_single_flight(mut self) -> Self {
        self.single_flight = false;
        self
    }

    /// Sets the recency sampling rate (builder style); `0` is clamped
    /// to `1` (exact).
    pub fn with_recency_sample_every(mut self, every: u32) -> Self {
        self.recency_sample_every = every.max(1);
        self
    }

    /// Makes LRU recency exact — every hit enqueues a touch (builder
    /// style). Equivalent to `with_recency_sample_every(1)`.
    pub fn with_exact_recency(self) -> Self {
        self.with_recency_sample_every(1)
    }
}

/// Result a leader publishes to parked waiters when its fill completes.
#[derive(Clone)]
enum FillOutcome {
    /// The loader produced a value; every waiter receives a cheap clone
    /// of the same shared slice.
    Filled(Arc<[u8]>),
    /// The loader returned nothing or panicked; waiters observe the
    /// failure without re-running the loader.
    Failed,
}

enum FillState {
    Pending,
    Done(FillOutcome),
}

/// One in-flight fill: waiters park on `done` until the leader publishes.
struct InFlight {
    state: Mutex<FillState>,
    done: Condvar,
}

enum FillRole {
    Leader(Arc<InFlight>),
    Waiter(Arc<InFlight>),
}

/// One shard plus its read-path side tables.
struct CacheShard {
    data: RwLock<Shard>,
    /// Deferred recency touches; drained under the write lock.
    touches: Mutex<Vec<Touch>>,
    /// In-flight fills keyed by the missing key.
    fills: Mutex<HashMap<Box<[u8]>, Arc<InFlight>>>,
    /// Scalar-hit sequence number driving recency sampling.
    hit_seq: AtomicU32,
}

/// Publishes a `Failed` outcome on drop unless the leader completed its
/// fill, so a panicking loader releases its waiters and un-poisons the
/// key instead of wedging every future miss.
struct FillGuard<'a> {
    cache: &'a Cache,
    shard: usize,
    key: &'a [u8],
    flight: Arc<InFlight>,
    published: bool,
}

impl FillGuard<'_> {
    fn publish(&mut self, outcome: FillOutcome) {
        {
            let mut state = self.flight.state.lock();
            *state = FillState::Done(outcome);
        }
        self.flight.done.notify_all();
        self.cache.shards[self.shard].fills.lock().remove(self.key);
        self.published = true;
    }
}

impl Drop for FillGuard<'_> {
    fn drop(&mut self) {
        if !self.published {
            self.publish(FillOutcome::Failed);
        }
    }
}

/// A concurrent, sharded LRU cache with single-flight read-through fills.
///
/// See the [crate-level documentation](crate) for the architectural
/// rationale and an example.
pub struct Cache {
    shards: Vec<CacheShard>,
    mask: u64,
    stats: CacheStats,
    default_ttl_ms: Option<u64>,
    single_flight: bool,
    /// Touch every Nth hit (`1` = exact recency); see
    /// [`CacheConfig::recency_sample_every`].
    recency_sample: u32,
    epoch: Instant,
    /// Test-only skew added to the millisecond clock; lets TTL tests run
    /// deterministically without sleeping.
    clock_skew_ms: AtomicU64,
}

impl std::fmt::Debug for Cache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cache")
            .field("shards", &self.shards.len())
            .field("len", &self.len())
            .finish()
    }
}

impl Cache {
    /// Creates a cache from `config` with counters in a private registry.
    pub fn new(config: CacheConfig) -> Self {
        Self::with_stats(config, CacheStats::new())
    }

    /// Creates a cache whose counters are registered under
    /// `kvstore.cache.*` in `telemetry`, so a suite-level registry sees
    /// cache traffic alongside every other subsystem.
    pub fn with_telemetry(config: CacheConfig, telemetry: &dcperf_telemetry::Telemetry) -> Self {
        Self::with_stats(
            config,
            CacheStats::with_telemetry(telemetry, dcperf_telemetry::metrics::PREFIX_CACHE),
        )
    }

    fn with_stats(config: CacheConfig, stats: CacheStats) -> Self {
        let mut shard_count = config.shards.max(1).next_power_of_two();
        // Clamp the shard count so every shard can hold at least one
        // typical entry; a 1 KiB cache split 64 ways would otherwise
        // give each shard a budget below the per-entry overhead.
        while shard_count > 1 && config.capacity_bytes / shard_count < MIN_SHARD_CAPACITY {
            shard_count /= 2;
        }
        let per_shard = (config.capacity_bytes / shard_count).max(1);
        Self {
            shards: (0..shard_count)
                .map(|_| CacheShard {
                    data: RwLock::new(Shard::new(per_shard)),
                    touches: Mutex::new(Vec::with_capacity(TOUCH_BUFFER_CAP)),
                    fills: Mutex::new(HashMap::new()),
                    hit_seq: AtomicU32::new(0),
                })
                .collect(),
            mask: (shard_count - 1) as u64,
            stats,
            default_ttl_ms: config.default_ttl_ms,
            single_flight: config.single_flight,
            recency_sample: config.recency_sample_every.max(1),
            epoch: Instant::now(),
            clock_skew_ms: AtomicU64::new(0),
        }
    }

    fn now_ms(&self) -> u64 {
        // ordering: test-only skew counter, monotonic, guards nothing
        let skew = self.clock_skew_ms.load(Ordering::Relaxed);
        (self.epoch.elapsed().as_millis() as u64).saturating_add(skew)
    }

    /// Advances the cache's millisecond clock without sleeping — a
    /// deterministic-test hook for TTL behaviour (for example, simulating
    /// a loader that stalls for seconds under fault injection).
    pub fn advance_clock_ms(&self, ms: u64) {
        // ordering: test-only skew counter, monotonic, guards nothing
        self.clock_skew_ms.fetch_add(ms, Ordering::Relaxed);
    }

    /// Multiply-rotate hash over the key selects the shard — computed
    /// exactly once per operation; every path below carries the index
    /// instead of re-hashing. Starts from a different state than the
    /// shard maps' hasher and folds the high bits into the low ones, so
    /// the masked shard choice stays uncorrelated with bucket choice.
    fn shard_index(&self, key: &[u8]) -> usize {
        let h = crate::shard::key_hash_bytes(0xcbf2_9ce4_8422_2325, key);
        ((h ^ (h >> 32)) & self.mask) as usize
    }

    /// Enqueues a run of deferred recency touches in one buffer lock
    /// round. The push is a `try_lock`: if another thread holds the
    /// buffer the run is dropped (sampled recency) so the hit path never
    /// blocks. A full buffer is drained under the shard write lock by
    /// whichever reader filled it.
    fn push_touches(&self, shard: usize, tokens: &[Touch], now: u64) {
        if tokens.is_empty() {
            return;
        }
        let slot = &self.shards[shard];
        let drained = match slot.touches.try_lock() {
            Some(mut buf) => {
                buf.extend_from_slice(tokens);
                if buf.len() >= TOUCH_BUFFER_CAP {
                    Some(std::mem::replace(
                        &mut *buf,
                        Vec::with_capacity(TOUCH_BUFFER_CAP),
                    ))
                } else {
                    None
                }
            }
            None => None,
        };
        if let Some(batch) = drained {
            let expired = slot.data.write().apply_touches(&batch, now);
            self.stats.record_expirations(expired);
        }
    }

    /// Sampled-recency gate for scalar hits: true for every
    /// `recency_sample`-th hit on `shard`. Expired-entry tokens bypass
    /// this gate — reclamation is never sampled away.
    fn should_touch(&self, shard: usize) -> bool {
        self.recency_sample == 1 || {
            // ordering: relaxed sampling counter; only the rate matters
            let seq = self.shards[shard].hit_seq.fetch_add(1, Ordering::Relaxed);
            seq.is_multiple_of(self.recency_sample)
        }
    }

    /// Read-path lookup on one shard: peek under the read lock, then
    /// enqueue the touch after releasing it. Returns the value on a live
    /// hit; expired entries report `None` (their removal is deferred to
    /// the next drain).
    fn peek_shard(&self, shard: usize, key: &[u8], now: u64) -> Option<Arc<[u8]>> {
        let peeked = self.shards[shard].data.read().peek(key, now);
        match peeked {
            Peek::Hit { value, token } => {
                if self.should_touch(shard) {
                    self.push_touches(shard, &[token], now);
                }
                Some(value)
            }
            Peek::Expired { token } => {
                self.push_touches(shard, &[token], now);
                None
            }
            Peek::Miss => None,
        }
    }

    /// Inserts under the shard write lock, draining pending touches first
    /// so recency order is preserved relative to the hits that preceded
    /// this write.
    fn insert_at(
        &self,
        shard: usize,
        key: &[u8],
        value: impl Into<Arc<[u8]>>,
        ttl_ms: Option<u64>,
        now: u64,
    ) {
        let slot = &self.shards[shard];
        let mut guard = slot.data.write();
        let batch = std::mem::take(&mut *slot.touches.lock());
        let expired = if batch.is_empty() {
            0
        } else {
            guard.apply_touches(&batch, now)
        };
        let evicted = guard.insert(key, value, ttl_ms, now);
        drop(guard);
        self.stats.record_expirations(expired);
        self.stats.record_insertion(evicted);
    }

    /// Looks up `key` without filling on a miss. A hit returns a shared
    /// handle to the cached bytes (zero-copy); call `to_vec()` if an
    /// owned buffer is needed.
    pub fn get(&self, key: &[u8]) -> Option<Arc<[u8]>> {
        let now = self.now_ms();
        let shard = self.shard_index(key);
        let result = self.peek_shard(shard, key, now);
        match &result {
            Some(_) => self.stats.record_hit(),
            None => self.stats.record_miss(),
        }
        result
    }

    /// Checks presence without cloning, touching recency, or recording
    /// hit/miss statistics — the classifier's peek.
    pub fn contains(&self, key: &[u8]) -> bool {
        let now = self.now_ms();
        let shard = self.shard_index(key);
        self.shards[shard].data.read().contains(key, now)
    }

    /// The read-through lookup: on a miss, `loader` fetches the value
    /// from the backing system *outside* any shard lock and the result is
    /// inserted before being returned.
    ///
    /// Concurrent misses on the same key are collapsed onto a single
    /// loader run (single-flight): one caller loads, the others park and
    /// receive the filled value — or observe the load's failure without
    /// retrying it. The entry's TTL is measured from insert time, not
    /// lookup time, so a slow loader does not shorten the entry's life.
    pub fn get_or_load<F>(&self, key: &[u8], loader: F) -> Option<Arc<[u8]>>
    where
        F: FnOnce(&[u8]) -> Option<Vec<u8>>,
    {
        let now = self.now_ms();
        let shard = self.shard_index(key);
        if let Some(hit) = self.peek_shard(shard, key, now) {
            self.stats.record_hit();
            return Some(hit);
        }
        self.stats.record_miss();
        self.load_path(shard, key, loader)
    }

    /// The miss path shared by [`Cache::get_or_load`] and
    /// [`Cache::get_or_load_many`]; the caller has already recorded the
    /// miss.
    fn load_path<F>(&self, shard: usize, key: &[u8], loader: F) -> Option<Arc<[u8]>>
    where
        F: FnOnce(&[u8]) -> Option<Vec<u8>>,
    {
        if !self.single_flight {
            return self.load_and_fill(shard, key, loader);
        }
        match self.join_or_lead(shard, key) {
            FillRole::Waiter(flight) => {
                self.stats.record_singleflight_wait();
                match Self::await_fill(&flight) {
                    FillOutcome::Filled(value) => Some(value),
                    FillOutcome::Failed => {
                        self.stats.record_singleflight_failed_wait();
                        None
                    }
                }
            }
            FillRole::Leader(flight) => {
                let mut fill_guard = FillGuard {
                    cache: self,
                    shard,
                    key,
                    flight,
                    published: false,
                };
                // Double-check after winning leadership: the previous
                // fill may have landed between our miss and registering,
                // in which case serving it avoids a redundant load.
                if let Some(existing) = self.peek_shard(shard, key, self.now_ms()) {
                    fill_guard.publish(FillOutcome::Filled(Arc::clone(&existing)));
                    return Some(existing);
                }
                self.stats.record_singleflight_fill();
                // A loader panic unwinds through the guard, which
                // publishes `Failed` and clears the in-flight entry.
                match loader(key) {
                    Some(value) => {
                        // One conversion to a shared slice; the shard,
                        // every waiter, and the caller then alias the
                        // same bytes.
                        let value: Arc<[u8]> = value.into();
                        // Re-sample the clock: the loader may have taken
                        // arbitrarily long, and the TTL belongs to the
                        // insert, not to the lookup that triggered it.
                        let insert_now = self.now_ms();
                        self.insert_at(
                            shard,
                            key,
                            Arc::clone(&value),
                            self.default_ttl_ms,
                            insert_now,
                        );
                        fill_guard.publish(FillOutcome::Filled(Arc::clone(&value)));
                        Some(value)
                    }
                    None => {
                        self.stats.record_load_failure();
                        fill_guard.publish(FillOutcome::Failed);
                        None
                    }
                }
            }
        }
    }

    /// The non-deduplicated miss path (single-flight disabled).
    fn load_and_fill<F>(&self, shard: usize, key: &[u8], loader: F) -> Option<Arc<[u8]>>
    where
        F: FnOnce(&[u8]) -> Option<Vec<u8>>,
    {
        match loader(key) {
            Some(value) => {
                let value: Arc<[u8]> = value.into();
                let insert_now = self.now_ms();
                self.insert_at(
                    shard,
                    key,
                    Arc::clone(&value),
                    self.default_ttl_ms,
                    insert_now,
                );
                Some(value)
            }
            None => {
                self.stats.record_load_failure();
                None
            }
        }
    }

    /// Joins an in-flight fill for `key`, or registers this caller as the
    /// leader.
    fn join_or_lead(&self, shard: usize, key: &[u8]) -> FillRole {
        let mut fills = self.shards[shard].fills.lock();
        match fills.get(key) {
            Some(flight) => FillRole::Waiter(Arc::clone(flight)),
            None => {
                let flight = Arc::new(InFlight {
                    state: Mutex::new(FillState::Pending),
                    done: Condvar::new(),
                });
                fills.insert(key.into(), Arc::clone(&flight));
                FillRole::Leader(flight)
            }
        }
    }

    /// Parks until the leader publishes an outcome.
    fn await_fill(flight: &InFlight) -> FillOutcome {
        let mut state = flight.state.lock();
        loop {
            if let FillState::Done(outcome) = &*state {
                return outcome.clone();
            }
            flight.done.wait(&mut state);
        }
    }

    /// Batched lookup: keys are grouped by shard and each shard is read
    /// exactly once, so a pipelined burst pays one lock round per shard
    /// instead of one per key. Results are returned in input order.
    ///
    /// Grouping is a mark-and-scan over the key list — `O(n · distinct
    /// shards in the batch)` with no sort and no order allocation, which
    /// beats a comparison sort for the burst sizes the pipelined RPC
    /// path produces (tens of keys over a handful of shards).
    pub fn get_many(&self, keys: &[&[u8]]) -> Vec<Option<Arc<[u8]>>> {
        // Steady-state batched reads allocate only their results vector:
        // the shard tags and the sampled-token staging area live in a
        // thread-local scratch. The fallback arm only runs if a caller
        // re-enters `get_many` on the same thread, which the cache itself
        // never does (no user code runs inside this call).
        GET_MANY_SCRATCH.with(|cell| match cell.try_borrow_mut() {
            Ok(mut scratch) => {
                let (shard_of, tokens) = &mut *scratch;
                self.get_many_with(keys, shard_of, tokens)
            }
            Err(_) => self.get_many_with(keys, &mut Vec::new(), &mut Vec::new()),
        })
    }

    /// [`Cache::get_many`] with caller-provided scratch buffers.
    fn get_many_with(
        &self,
        keys: &[&[u8]],
        shard_of: &mut Vec<u32>,
        tokens: &mut Vec<Touch>,
    ) -> Vec<Option<Arc<[u8]>>> {
        let now = self.now_ms();
        let n = keys.len();
        let mut results: Vec<Option<Arc<[u8]>>> = Vec::with_capacity(n);
        results.resize_with(n, || None);
        let mut hits = 0u64;
        let sample = u64::from(self.recency_sample);
        // Per-key shard tags; `u32::MAX` marks a key already served.
        shard_of.clear();
        shard_of.extend(keys.iter().map(|k| self.shard_index(k) as u32));
        let mut cursor = 0;
        while cursor < n {
            let shard = shard_of[cursor];
            if shard == u32::MAX {
                cursor += 1;
                continue;
            }
            tokens.clear();
            {
                let guard = self.shards[shard as usize].data.read();
                for i in cursor..n {
                    if shard_of[i] != shard {
                        continue;
                    }
                    shard_of[i] = u32::MAX;
                    match guard.peek(keys[i], now) {
                        Peek::Hit { value, token } => {
                            results[i] = Some(value);
                            hits += 1;
                            // Sampled recency on a call-local counter:
                            // every Nth hit in the batch enqueues its
                            // touch; the rest skip the buffer entirely.
                            if hits % sample == 1 || sample == 1 {
                                tokens.push(token);
                            }
                        }
                        Peek::Expired { token } => tokens.push(token),
                        Peek::Miss => {}
                    }
                }
            }
            // One buffer lock round covers the whole shard run.
            self.push_touches(shard as usize, tokens, now);
        }
        self.stats.record_hits(hits);
        self.stats.record_misses(n as u64 - hits);
        results
    }

    /// Batched read-through: one shard-grouped read pass over `keys`
    /// ([`Cache::get_many`]), then each remaining miss is loaded through
    /// the single-flight fill path. `loader` is `Fn` because a batch may
    /// carry several misses.
    pub fn get_or_load_many<F>(&self, keys: &[&[u8]], loader: F) -> Vec<Option<Arc<[u8]>>>
    where
        F: Fn(&[u8]) -> Option<Vec<u8>>,
    {
        let mut results = self.get_many(keys);
        for (pos, slot) in results.iter_mut().enumerate() {
            if slot.is_none() {
                let key = keys[pos];
                let shard = self.shard_index(key);
                // Re-peek first: a duplicate key earlier in this batch
                // (or a concurrent fill) may have landed it already.
                *slot = self
                    .peek_shard(shard, key, self.now_ms())
                    .or_else(|| self.load_path(shard, key, &loader));
            }
        }
        results
    }

    /// Inserts `key` with the default TTL.
    pub fn set(&self, key: &[u8], value: Vec<u8>) {
        self.set_with_ttl(key, value, self.default_ttl_ms);
    }

    /// Inserts `key` with an explicit TTL (`None` = no expiry).
    pub fn set_with_ttl(&self, key: &[u8], value: Vec<u8>, ttl_ms: Option<u64>) {
        let now = self.now_ms();
        let shard = self.shard_index(key);
        self.insert_at(shard, key, value, ttl_ms, now);
    }

    /// Batched insert with the default TTL: items are grouped by shard
    /// and each shard takes its write lock exactly once. Within a shard,
    /// insertion order follows input order (a later duplicate wins).
    pub fn set_many(&self, items: Vec<(Vec<u8>, Vec<u8>)>) {
        let now = self.now_ms();
        let mut tagged: Vec<(usize, Vec<u8>, Vec<u8>)> = items
            .into_iter()
            .map(|(key, value)| (self.shard_index(&key), key, value))
            .collect();
        tagged.sort_by_key(|(shard, _, _)| *shard);
        let mut start = 0;
        while start < tagged.len() {
            let shard = tagged[start].0;
            let mut end = start;
            while end < tagged.len() && tagged[end].0 == shard {
                end += 1;
            }
            let slot = &self.shards[shard];
            let mut guard = slot.data.write();
            let batch = std::mem::take(&mut *slot.touches.lock());
            let expired = if batch.is_empty() {
                0
            } else {
                guard.apply_touches(&batch, now)
            };
            self.stats.record_expirations(expired);
            for (_, key, value) in tagged[start..end].iter_mut() {
                let evicted = guard.insert(key, std::mem::take(value), self.default_ttl_ms, now);
                self.stats.record_insertion(evicted);
            }
            drop(guard);
            start = end;
        }
    }

    /// Removes `key`, returning whether it was present.
    pub fn delete(&self, key: &[u8]) -> bool {
        let shard = self.shard_index(key);
        self.shards[shard].data.write().remove(key)
    }

    /// Total live entries across shards (entries past their TTL but not
    /// yet drained are still counted; they are reported absent by reads).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.data.read().len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total charged bytes across shards.
    pub fn used_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.data.read().used_bytes()).sum()
    }

    /// Shared counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn small_cache() -> Cache {
        Cache::new(CacheConfig::with_capacity_bytes(1 << 20).with_shards(4))
    }

    #[test]
    fn get_set_delete() {
        let c = small_cache();
        assert!(c.get(b"k").is_none());
        c.set(b"k", vec![9]);
        assert_eq!(c.get(b"k").as_deref(), Some(&[9u8][..]));
        assert!(c.delete(b"k"));
        assert!(c.get(b"k").is_none());
    }

    #[test]
    fn read_through_fills_once() {
        let c = small_cache();
        let loads = AtomicU64::new(0);
        for _ in 0..10 {
            let v = c.get_or_load(b"key", |_| {
                loads.fetch_add(1, Ordering::Relaxed);
                Some(vec![1, 2, 3])
            });
            assert_eq!(v.as_deref(), Some(&[1u8, 2, 3][..]));
        }
        assert_eq!(loads.load(Ordering::Relaxed), 1);
        assert_eq!(c.stats().hits(), 9);
        assert_eq!(c.stats().misses(), 1);
        assert_eq!(c.stats().singleflight_fills(), 1);
        assert_eq!(c.stats().singleflight_waits(), 0);
    }

    #[test]
    fn loader_failure_counts() {
        let c = small_cache();
        assert!(c.get_or_load(b"gone", |_| None).is_none());
        assert_eq!(c.stats().load_failures(), 1);
        // A later successful load still works.
        assert!(c.get_or_load(b"gone", |_| Some(vec![1])).is_some());
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let c = Cache::new(CacheConfig::with_capacity_bytes(1 << 20).with_shards(5));
        assert_eq!(c.shard_count(), 8);
    }

    #[test]
    fn tiny_capacity_clamps_shard_count() {
        // 1 KiB split 64 ways would leave 16 bytes per shard — below the
        // per-entry overhead, where every entry is "oversized" and
        // permanently resident. The clamp shards down until each shard
        // holds at least one typical entry.
        let c = Cache::new(CacheConfig::with_capacity_bytes(1 << 10).with_shards(64));
        assert_eq!(c.shard_count(), (1 << 10) / MIN_SHARD_CAPACITY);
        // Eviction now works: entries are charged against a real budget.
        for i in 0..100u32 {
            c.set(&i.to_le_bytes(), vec![0; 64]);
        }
        assert!(c.stats().evictions() > 0, "tiny cache must evict");
        assert!(
            c.used_bytes() <= (1 << 10) + c.shard_count() * 200,
            "used {} for a 1 KiB cache",
            c.used_bytes()
        );
        // A single-shard floor always remains.
        let tiny = Cache::new(CacheConfig::with_capacity_bytes(1).with_shards(8));
        assert_eq!(tiny.shard_count(), 1);
    }

    #[test]
    fn ttl_measured_from_insert_not_lookup() {
        // Regression: `now` used to be sampled before the loader ran, so
        // a slow loader silently shortened the entry's effective TTL by
        // its own duration. The clock here is advanced deterministically
        // inside the loader to simulate a multi-second stall.
        let c = Cache::new(
            CacheConfig::with_capacity_bytes(1 << 16)
                .with_shards(1)
                .with_default_ttl_ms(10_000),
        );
        let v = c.get_or_load(b"slow", |_| {
            // The loader stalls for a simulated minute — far past the TTL.
            c.advance_clock_ms(60_000);
            Some(vec![7])
        });
        assert_eq!(v.as_deref(), Some(&[7u8][..]));
        // With the bug, expires_at = t0 + 10s < t0 + 60s: already expired.
        let live = c.get(b"slow");
        assert_eq!(
            live.as_deref(),
            Some(&[7u8][..]),
            "TTL must start at insert"
        );
        c.advance_clock_ms(9_000);
        let live = c.get(b"slow");
        assert_eq!(live.as_deref(), Some(&[7u8][..]), "9s into a 10s TTL");
        c.advance_clock_ms(2_000);
        assert!(c.get(b"slow").is_none(), "11s into a 10s TTL");
        // Physical removal is deferred until a drain; force one.
        c.set(b"other", vec![0]);
        assert_eq!(c.stats().expirations(), 1);
    }

    #[test]
    fn default_ttl_applies() {
        let c = Cache::new(
            CacheConfig::with_capacity_bytes(1 << 16)
                .with_shards(1)
                .with_default_ttl_ms(1),
        );
        c.set(b"k", vec![1]);
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(c.get(b"k").is_none(), "entry should have expired");
    }

    #[test]
    fn expirations_surface_in_stats() {
        let c = Cache::new(
            CacheConfig::with_capacity_bytes(1 << 16)
                .with_shards(1)
                .with_default_ttl_ms(50),
        );
        for i in 0..10u8 {
            c.set(&[i], vec![i]);
        }
        c.advance_clock_ms(100);
        for i in 0..10u8 {
            assert!(c.get(&[i]).is_none(), "entry {i} must be expired");
        }
        // Expired entries are physically removed at the next drain; force
        // one with a write and check the counter caught every removal.
        c.set(b"fresh", vec![1]);
        assert_eq!(c.stats().expirations(), 10);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn get_many_matches_scalar_gets() {
        let c = small_cache();
        for i in 0..32u8 {
            if i % 3 != 0 {
                c.set(&[i], vec![i; 4]);
            }
        }
        let keys: Vec<[u8; 1]> = (0..32u8).map(|i| [i]).collect();
        let key_refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let batched = c.get_many(&key_refs);
        for (i, got) in batched.iter().enumerate() {
            let expected = if i % 3 != 0 {
                Some(vec![i as u8; 4])
            } else {
                None
            };
            assert_eq!(got.as_deref(), expected.as_deref(), "key {i}");
        }
        // Hit/miss accounting matches the scalar path's.
        assert_eq!(c.stats().hits(), 32 - 11);
        assert_eq!(c.stats().misses(), 11);
    }

    #[test]
    fn set_many_inserts_all_and_later_duplicate_wins() {
        let c = small_cache();
        let items: Vec<(Vec<u8>, Vec<u8>)> = (0..16u8)
            .map(|i| (vec![i], vec![i; 3]))
            .chain(std::iter::once((vec![5u8], vec![99u8])))
            .collect();
        c.set_many(items);
        for i in 0..16u8 {
            let expected = if i == 5 { vec![99u8] } else { vec![i; 3] };
            assert_eq!(c.get(&[i]).as_deref(), Some(&expected[..]), "key {i}");
        }
        assert_eq!(c.stats().insertions(), 17);
    }

    #[test]
    fn get_or_load_many_loads_only_misses() {
        let c = small_cache();
        c.set(b"a", vec![1]);
        c.set(b"c", vec![3]);
        let loads = AtomicU64::new(0);
        let keys: Vec<&[u8]> = vec![b"a", b"b", b"c", b"d", b"b"];
        let got = c.get_or_load_many(&keys, |key| {
            loads.fetch_add(1, Ordering::Relaxed);
            Some(vec![key[0]])
        });
        assert_eq!(got[0].as_deref(), Some(&[1u8][..]));
        assert_eq!(got[1].as_deref(), Some(&[b'b'][..]));
        assert_eq!(got[2].as_deref(), Some(&[3u8][..]));
        assert_eq!(got[3].as_deref(), Some(&[b'd'][..]));
        assert_eq!(got[4].as_deref(), Some(&[b'b'][..]));
        // The duplicate "b" is served by the first fill's re-peek.
        assert_eq!(loads.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn concurrent_mixed_workload_is_consistent() {
        let c = Arc::new(Cache::new(
            CacheConfig::with_capacity_bytes(1 << 22).with_shards(8),
        ));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..2000u64 {
                    let key = ((t * 1000 + i) % 500).to_le_bytes();
                    match i % 3 {
                        0 => c.set(&key, key.to_vec()),
                        1 => {
                            if let Some(v) = c.get(&key) {
                                assert_eq!(&v[..], key, "value corruption");
                            }
                        }
                        _ => {
                            let v = c.get_or_load(&key, |k| Some(k.to_vec()));
                            assert_eq!(v.as_deref(), Some(&key[..]));
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.len() <= 500);
    }

    #[test]
    fn eviction_under_pressure() {
        let c = Cache::new(CacheConfig::with_capacity_bytes(16 << 10).with_shards(2));
        for i in 0..1000u32 {
            c.set(&i.to_le_bytes(), vec![0; 64]);
        }
        assert!(c.stats().evictions() > 0);
        assert!(c.used_bytes() <= (16 << 10) + 2 * 200);
    }

    #[test]
    fn hit_rate_reflects_working_set_vs_capacity() {
        // Working set fits: hit rate should approach 1 after warmup.
        let c = Cache::new(CacheConfig::with_capacity_bytes(1 << 20).with_shards(2));
        for round in 0..10 {
            for i in 0..100u32 {
                let _ = c.get_or_load(&i.to_le_bytes(), |_| Some(vec![0; 32]));
            }
            if round == 0 {
                // After the first pass every lookup was a miss.
                assert_eq!(c.stats().misses(), 100);
            }
        }
        assert!(c.stats().hit_rate() > 0.85, "rate={}", c.stats().hit_rate());
    }

    #[test]
    fn contains_does_not_count_or_touch() {
        let c = small_cache();
        c.set(b"k", vec![1]);
        assert!(c.contains(b"k"));
        assert!(!c.contains(b"absent"));
        assert_eq!(c.stats().hits(), 0);
        assert_eq!(c.stats().misses(), 0);
    }
}
