//! The sharded, read-through cache.

use crate::shard::Shard;
use crate::stats::CacheStats;
use parking_lot::Mutex;
use std::time::Instant;

/// Cache sizing and sharding configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total charged capacity across all shards.
    pub capacity_bytes: usize,
    /// Number of independent shards (rounded up to a power of two).
    pub shards: usize,
    /// Default TTL applied by [`Cache::set`] when none is given, in
    /// milliseconds; `None` disables expiry.
    pub default_ttl_ms: Option<u64>,
}

impl CacheConfig {
    /// A configuration with the given capacity and a shard count suited to
    /// the host's parallelism.
    pub fn with_capacity_bytes(capacity_bytes: usize) -> Self {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self {
            capacity_bytes,
            shards: (parallelism * 4).next_power_of_two(),
            default_ttl_ms: None,
        }
    }

    /// Overrides the shard count (builder style).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1).next_power_of_two();
        self
    }

    /// Sets the default TTL (builder style).
    pub fn with_default_ttl_ms(mut self, ttl_ms: u64) -> Self {
        self.default_ttl_ms = Some(ttl_ms);
        self
    }
}

/// A concurrent, sharded LRU cache with read-through fills.
///
/// See the [crate-level documentation](crate) for the architectural
/// rationale and an example.
pub struct Cache {
    shards: Vec<Mutex<Shard>>,
    mask: u64,
    stats: CacheStats,
    default_ttl_ms: Option<u64>,
    epoch: Instant,
}

impl std::fmt::Debug for Cache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cache")
            .field("shards", &self.shards.len())
            .field("len", &self.len())
            .finish()
    }
}

impl Cache {
    /// Creates a cache from `config` with counters in a private registry.
    pub fn new(config: CacheConfig) -> Self {
        Self::with_stats(config, CacheStats::new())
    }

    /// Creates a cache whose counters are registered under
    /// `kvstore.cache.*` in `telemetry`, so a suite-level registry sees
    /// cache traffic alongside every other subsystem.
    pub fn with_telemetry(config: CacheConfig, telemetry: &dcperf_telemetry::Telemetry) -> Self {
        Self::with_stats(
            config,
            CacheStats::with_telemetry(telemetry, dcperf_telemetry::metrics::PREFIX_CACHE),
        )
    }

    fn with_stats(config: CacheConfig, stats: CacheStats) -> Self {
        let shard_count = config.shards.max(1).next_power_of_two();
        let per_shard = (config.capacity_bytes / shard_count).max(1);
        Self {
            shards: (0..shard_count)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
            mask: (shard_count - 1) as u64,
            stats,
            default_ttl_ms: config.default_ttl_ms,
            epoch: Instant::now(),
        }
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn shard_for(&self, key: &[u8]) -> &Mutex<Shard> {
        // FNV-1a over the key selects the shard.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in key {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        &self.shards[(h & self.mask) as usize]
    }

    /// Looks up `key` without filling on a miss.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let now = self.now_ms();
        let result = self.shard_for(key).lock().get(key, now);
        match &result {
            Some(_) => self.stats.record_hit(),
            None => self.stats.record_miss(),
        }
        result
    }

    /// The read-through lookup: on a miss, `loader` fetches the value from
    /// the backing system *outside* any shard lock and the result is
    /// inserted before being returned.
    ///
    /// Concurrent misses on the same key may each invoke `loader`
    /// (thundering herd), matching Memcached-style caches that do not
    /// serialize fills.
    pub fn get_or_load<F>(&self, key: &[u8], loader: F) -> Option<Vec<u8>>
    where
        F: FnOnce(&[u8]) -> Option<Vec<u8>>,
    {
        let now = self.now_ms();
        if let Some(hit) = self.shard_for(key).lock().get(key, now) {
            self.stats.record_hit();
            return Some(hit);
        }
        self.stats.record_miss();
        match loader(key) {
            Some(value) => {
                let evicted =
                    self.shard_for(key)
                        .lock()
                        .insert(key, value.clone(), self.default_ttl_ms, now);
                self.stats.record_insertion(evicted);
                Some(value)
            }
            None => {
                self.stats.record_load_failure();
                None
            }
        }
    }

    /// Inserts `key` with the default TTL.
    pub fn set(&self, key: &[u8], value: Vec<u8>) {
        self.set_with_ttl(key, value, self.default_ttl_ms);
    }

    /// Inserts `key` with an explicit TTL (`None` = no expiry).
    pub fn set_with_ttl(&self, key: &[u8], value: Vec<u8>, ttl_ms: Option<u64>) {
        let now = self.now_ms();
        let evicted = self.shard_for(key).lock().insert(key, value, ttl_ms, now);
        self.stats.record_insertion(evicted);
    }

    /// Removes `key`, returning whether it was present.
    pub fn delete(&self, key: &[u8]) -> bool {
        self.shard_for(key).lock().remove(key)
    }

    /// Total live entries across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total charged bytes across shards.
    pub fn used_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().used_bytes()).sum()
    }

    /// Shared counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn small_cache() -> Cache {
        Cache::new(CacheConfig::with_capacity_bytes(1 << 20).with_shards(4))
    }

    #[test]
    fn get_set_delete() {
        let c = small_cache();
        assert!(c.get(b"k").is_none());
        c.set(b"k", vec![9]);
        assert_eq!(c.get(b"k"), Some(vec![9]));
        assert!(c.delete(b"k"));
        assert!(c.get(b"k").is_none());
    }

    #[test]
    fn read_through_fills_once() {
        let c = small_cache();
        let loads = AtomicU64::new(0);
        for _ in 0..10 {
            let v = c.get_or_load(b"key", |_| {
                loads.fetch_add(1, Ordering::Relaxed);
                Some(vec![1, 2, 3])
            });
            assert_eq!(v, Some(vec![1, 2, 3]));
        }
        assert_eq!(loads.load(Ordering::Relaxed), 1);
        assert_eq!(c.stats().hits(), 9);
        assert_eq!(c.stats().misses(), 1);
    }

    #[test]
    fn loader_failure_counts() {
        let c = small_cache();
        assert!(c.get_or_load(b"gone", |_| None).is_none());
        assert_eq!(c.stats().load_failures(), 1);
        // A later successful load still works.
        assert!(c.get_or_load(b"gone", |_| Some(vec![1])).is_some());
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let c = Cache::new(CacheConfig::with_capacity_bytes(1024).with_shards(5));
        assert_eq!(c.shard_count(), 8);
    }

    #[test]
    fn default_ttl_applies() {
        let c = Cache::new(
            CacheConfig::with_capacity_bytes(1 << 16)
                .with_shards(1)
                .with_default_ttl_ms(1),
        );
        c.set(b"k", vec![1]);
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert!(c.get(b"k").is_none(), "entry should have expired");
    }

    #[test]
    fn concurrent_mixed_workload_is_consistent() {
        let c = Arc::new(Cache::new(
            CacheConfig::with_capacity_bytes(1 << 22).with_shards(8),
        ));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..2000u64 {
                    let key = ((t * 1000 + i) % 500).to_le_bytes();
                    match i % 3 {
                        0 => c.set(&key, key.to_vec()),
                        1 => {
                            if let Some(v) = c.get(&key) {
                                assert_eq!(v, key.to_vec(), "value corruption");
                            }
                        }
                        _ => {
                            let v = c.get_or_load(&key, |k| Some(k.to_vec()));
                            assert_eq!(v, Some(key.to_vec()));
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.len() <= 500);
    }

    #[test]
    fn eviction_under_pressure() {
        let c = Cache::new(CacheConfig::with_capacity_bytes(16 << 10).with_shards(2));
        for i in 0..1000u32 {
            c.set(&i.to_le_bytes(), vec![0; 64]);
        }
        assert!(c.stats().evictions() > 0);
        assert!(c.used_bytes() <= (16 << 10) + 2 * 200);
    }

    #[test]
    fn hit_rate_reflects_working_set_vs_capacity() {
        // Working set fits: hit rate should approach 1 after warmup.
        let c = Cache::new(CacheConfig::with_capacity_bytes(1 << 20).with_shards(2));
        for round in 0..10 {
            for i in 0..100u32 {
                let _ = c.get_or_load(&i.to_le_bytes(), |_| Some(vec![0; 32]));
            }
            if round == 0 {
                // After the first pass every lookup was a miss.
                assert_eq!(c.stats().misses(), 100);
            }
        }
        assert!(c.stats().hit_rate() > 0.85, "rate={}", c.stats().hit_rate());
    }
}
