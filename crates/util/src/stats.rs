//! Small statistical helpers: running moments, geometric means, and
//! percentiles of sorted slices.
//!
//! DCPerf's suite-level score is "the geometric mean of all benchmark's
//! scores" (§3.1), and hook time-series (CPU utilization, power samples)
//! need streaming mean/stddev without storing every sample — both live here.

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use dcperf_util::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.stddev() - 2.0).abs() < 1e-12); // population stddev
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0.0 with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, or 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Geometric mean of a slice of positive values.
///
/// This is the suite-level aggregation DCPerf uses for its overall score.
/// Returns `None` if the slice is empty or any value is non-positive or
/// non-finite (a geomean over such values is meaningless).
///
/// # Examples
///
/// ```
/// use dcperf_util::geometric_mean;
///
/// let g = geometric_mean(&[1.0, 4.0, 16.0]).unwrap();
/// assert!((g - 4.0).abs() < 1e-12);
/// assert!(geometric_mean(&[]).is_none());
/// assert!(geometric_mean(&[1.0, 0.0]).is_none());
/// ```
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut log_sum = 0.0;
    for &v in values {
        if !(v.is_finite() && v > 0.0) {
            return None;
        }
        log_sum += v.ln();
    }
    Some((log_sum / values.len() as f64).exp())
}

/// Weighted geometric mean: `exp(Σ wᵢ ln xᵢ / Σ wᵢ)`.
///
/// The paper weighs production workload scores "by each workload's power
/// consumption in our fleet" (§4.1); this is the aggregation used there.
///
/// Returns `None` on empty input, length mismatch, non-positive values, or
/// non-positive total weight.
pub fn weighted_geometric_mean(values: &[f64], weights: &[f64]) -> Option<f64> {
    if values.is_empty() || values.len() != weights.len() {
        return None;
    }
    let mut log_sum = 0.0;
    let mut w_sum = 0.0;
    for (&v, &w) in values.iter().zip(weights) {
        if !(v.is_finite() && v > 0.0 && w.is_finite() && w >= 0.0) {
            return None;
        }
        log_sum += w * v.ln();
        w_sum += w;
    }
    if w_sum <= 0.0 {
        return None;
    }
    Some((log_sum / w_sum).exp())
}

/// Linear-interpolated percentile of an already-sorted slice.
///
/// # Panics
///
/// Panics if `pct` is outside `0.0..=100.0`.
///
/// # Examples
///
/// ```
/// use dcperf_util::percentile_of_sorted;
///
/// let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
/// assert_eq!(percentile_of_sorted(&xs, 50.0), Some(3.0));
/// assert_eq!(percentile_of_sorted(&[], 50.0), None);
/// ```
pub fn percentile_of_sorted(sorted: &[f64], pct: f64) -> Option<f64> {
    assert!(
        (0.0..=100.0).contains(&pct),
        "percentile must be within 0..=100, got {pct}"
    );
    if sorted.is_empty() {
        return None;
    }
    if sorted.len() == 1 {
        return Some(sorted[0]);
    }
    let rank = pct / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_empty() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn running_stats_matches_direct_computation() {
        let xs = [3.5, -1.0, 10.0, 0.25, 6.75, 2.0];
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), -1.0);
        assert_eq!(s.max(), 10.0);
    }

    #[test]
    fn running_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.7).sin() * 50.0).collect();
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(5.0);
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);

        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn geomean_basic() {
        assert!((geometric_mean(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[7.0]).unwrap() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_rejects_degenerate_input() {
        assert!(geometric_mean(&[]).is_none());
        assert!(geometric_mean(&[1.0, -2.0]).is_none());
        assert!(geometric_mean(&[f64::NAN]).is_none());
        assert!(geometric_mean(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn weighted_geomean_reduces_to_geomean_with_equal_weights() {
        let vals = [1.5, 2.5, 9.0];
        let w = [1.0, 1.0, 1.0];
        let a = weighted_geometric_mean(&vals, &w).unwrap();
        let b = geometric_mean(&vals).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn weighted_geomean_weighting_pulls_toward_heavy_item() {
        let vals = [1.0, 100.0];
        let light = weighted_geometric_mean(&vals, &[1.0, 1.0]).unwrap();
        let heavy = weighted_geometric_mean(&vals, &[1.0, 9.0]).unwrap();
        assert!(heavy > light);
    }

    #[test]
    fn weighted_geomean_rejects_mismatch() {
        assert!(weighted_geometric_mean(&[1.0], &[]).is_none());
        assert!(weighted_geometric_mean(&[1.0], &[0.0]).is_none());
        assert!(weighted_geometric_mean(&[], &[]).is_none());
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0];
        assert_eq!(percentile_of_sorted(&xs, 0.0), Some(10.0));
        assert_eq!(percentile_of_sorted(&xs, 100.0), Some(20.0));
        assert_eq!(percentile_of_sorted(&xs, 50.0), Some(15.0));
        assert_eq!(percentile_of_sorted(&xs, 25.0), Some(12.5));
    }

    #[test]
    #[should_panic(expected = "percentile must be within")]
    fn percentile_rejects_out_of_range() {
        let _ = percentile_of_sorted(&[1.0], -0.1);
    }
}
