//! Statistical distributions used by DCPerf-RS workload and load generators.
//!
//! The DCPerf paper replicates production traffic shapes: Zipf-distributed
//! key popularity (TaoBench), log-normal request/response sizes, Poisson
//! request arrivals for open-loop load generation, and empirical mixes for
//! endpoint selection. Each distribution here samples through the
//! [`Rng`](crate::Rng) trait so every draw is deterministic given a seed.

use crate::rng::Rng;

/// Error returned when a distribution is constructed with invalid
/// parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidDistributionError {
    what: &'static str,
}

impl InvalidDistributionError {
    fn new(what: &'static str) -> Self {
        Self { what }
    }
}

impl std::fmt::Display for InvalidDistributionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.what)
    }
}

impl std::error::Error for InvalidDistributionError {}

/// Zipf (zeta) distribution over ranks `0..n`, with exponent `s`.
///
/// Rank 0 is the most popular item. Uses the rejection-inversion method of
/// Hörmann & Derflinger, which is O(1) per sample regardless of `n` — this
/// matters because TaoBench draws keys from key spaces with millions of
/// entries.
///
/// # Examples
///
/// ```
/// use dcperf_util::{Xoshiro256pp, Zipf};
///
/// let zipf = Zipf::new(1_000_000, 0.99)?;
/// let mut rng = Xoshiro256pp::seed_from_u64(1);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1_000_000);
/// # Ok::<(), dcperf_util::dist::InvalidDistributionError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    n: u64,
    s: f64,
    // Precomputed constants for rejection-inversion sampling
    // (Hörmann & Derflinger 1996).
    accept_band: f64,
    h_x1: f64,
    h_n: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` items with exponent `s > 0`.
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0`, or `s` is not finite and positive.
    pub fn new(n: u64, s: f64) -> Result<Self, InvalidDistributionError> {
        if n == 0 {
            return Err(InvalidDistributionError::new("zipf requires n > 0"));
        }
        if !(s.is_finite() && s > 0.0) {
            return Err(InvalidDistributionError::new("zipf requires finite s > 0"));
        }
        let accept_band = 2.0 - h_integral_inverse(h_integral(2.5, s) - h_point(2.0, s), s);
        let h_x1 = h_integral(1.5, s) - 1.0;
        let h_n = h_integral(n as f64 + 0.5, s);
        Ok(Self {
            n,
            s,
            accept_band,
            h_x1,
            h_n,
        })
    }

    /// Number of distinct items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew exponent.
    pub fn s(&self) -> f64 {
        self.s
    }

    /// Samples a rank in `[0, n)`; rank 0 is the hottest item.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            let u = self.h_n + rng.next_f64() * (self.h_x1 - self.h_n);
            let x = h_integral_inverse(u, self.s);
            let k = x.round().clamp(1.0, self.n as f64);
            if k - x <= self.accept_band || u >= h_integral(k + 0.5, self.s) - h_point(k, self.s) {
                return k as u64 - 1;
            }
        }
    }
}

/// Integral of the Zipf hat function: `H(x) = (x^(1-s) - 1)/(1-s)`, computed
/// as `expm1((1-s) ln x)/(1-s) = helper1((1-s) ln x) * ln x`, which smoothly
/// degrades to `ln x` at `s == 1`.
fn h_integral(x: f64, s: f64) -> f64 {
    let log_x = x.ln();
    expm1_over_x((1.0 - s) * log_x) * log_x
}

/// The hat function itself: `h(x) = x^(-s)`.
fn h_point(x: f64, s: f64) -> f64 {
    (-s * x.ln()).exp()
}

/// Inverse of [`h_integral`].
fn h_integral_inverse(x: f64, s: f64) -> f64 {
    let mut t = x * (1.0 - s);
    if t < -1.0 {
        // Numerical guard: t can slip just past -1 for large s.
        t = -1.0;
    }
    (ln1p_over_x(t) * x).exp()
}

/// `expm1(x)/x` with the correct limit of 1 at `x == 0`.
fn expm1_over_x(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        // Taylor expansion around zero.
        1.0 + x / 2.0 * (1.0 + x / 3.0 * (1.0 + x / 4.0))
    }
}

/// `ln(1+x)/x` with the correct limit of 1 at `x == 0`.
fn ln1p_over_x(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x / 2.0 * (1.0 - 2.0 * x / 3.0 * (1.0 - 3.0 * x / 4.0))
    }
}

/// Log-normal distribution, parameterized by the underlying normal's
/// `mu` and `sigma`.
///
/// The paper uses production-measured request/response *size* distributions;
/// heavy-tailed log-normals are the standard model for those.
///
/// # Examples
///
/// ```
/// use dcperf_util::{LogNormal, Xoshiro256pp};
///
/// // Median ~e^5 ≈ 148 bytes, heavy tail.
/// let sizes = LogNormal::new(5.0, 1.0)?;
/// let mut rng = Xoshiro256pp::seed_from_u64(2);
/// assert!(sizes.sample(&mut rng) > 0.0);
/// # Ok::<(), dcperf_util::dist::InvalidDistributionError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal with location `mu` and scale `sigma >= 0`.
    ///
    /// # Errors
    ///
    /// Returns an error if either parameter is non-finite or `sigma < 0`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, InvalidDistributionError> {
        if !mu.is_finite() || !sigma.is_finite() || sigma < 0.0 {
            return Err(InvalidDistributionError::new(
                "log-normal requires finite mu and sigma >= 0",
            ));
        }
        Ok(Self { mu, sigma })
    }

    /// Creates a log-normal from a target mean and p99/median-style spread,
    /// convenient when calibrating against measured size distributions.
    ///
    /// # Errors
    ///
    /// Returns an error if `median <= 0` or `sigma < 0`.
    pub fn from_median(median: f64, sigma: f64) -> Result<Self, InvalidDistributionError> {
        if median <= 0.0 {
            return Err(InvalidDistributionError::new(
                "log-normal median must be positive",
            ));
        }
        Self::new(median.ln(), sigma)
    }

    /// Samples a positive value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * sample_standard_normal(rng)).exp()
    }

    /// The distribution mean, `exp(mu + sigma^2/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

/// Samples a standard normal via the Box–Muller polar method.
fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u = 2.0 * rng.next_f64() - 1.0;
        let v = 2.0 * rng.next_f64() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
///
/// Used to generate Poisson-process inter-arrival gaps for open-loop load.
///
/// # Examples
///
/// ```
/// use dcperf_util::{Exponential, Xoshiro256pp};
///
/// let gaps = Exponential::new(1000.0)?; // 1000 requests/sec
/// let mut rng = Xoshiro256pp::seed_from_u64(3);
/// let gap_secs = gaps.sample(&mut rng);
/// assert!(gap_secs >= 0.0);
/// # Ok::<(), dcperf_util::dist::InvalidDistributionError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `lambda > 0`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `lambda` is finite and positive.
    pub fn new(lambda: f64) -> Result<Self, InvalidDistributionError> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(InvalidDistributionError::new(
                "exponential requires finite lambda > 0",
            ));
        }
        Ok(Self { lambda })
    }

    /// Samples a non-negative value with mean `1/lambda`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF; 1 - u avoids ln(0).
        -(1.0 - rng.next_f64()).ln() / self.lambda
    }
}

/// Poisson distribution with mean `lambda`.
///
/// Used for RPC fan-out counts and batch sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution with mean `lambda > 0`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `lambda` is finite and positive.
    pub fn new(lambda: f64) -> Result<Self, InvalidDistributionError> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(InvalidDistributionError::new(
                "poisson requires finite lambda > 0",
            ));
        }
        Ok(Self { lambda })
    }

    /// Samples a count.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda < 30.0 {
            // Knuth's multiplication method for small lambda.
            let l = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.next_f64();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            // Normal approximation for large lambda.
            let x = self.lambda + self.lambda.sqrt() * sample_standard_normal(rng);
            x.max(0.0).round() as u64
        }
    }
}

/// Bounded Pareto distribution, used for heavy-tailed object sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    xmin: f64,
    xmax: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a bounded Pareto on `[xmin, xmax]` with shape `alpha > 0`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 < xmin < xmax` and `alpha > 0`.
    pub fn new(xmin: f64, xmax: f64, alpha: f64) -> Result<Self, InvalidDistributionError> {
        if !(xmin > 0.0 && xmax > xmin && alpha > 0.0 && alpha.is_finite()) {
            return Err(InvalidDistributionError::new(
                "pareto requires 0 < xmin < xmax and alpha > 0",
            ));
        }
        Ok(Self { xmin, xmax, alpha })
    }

    /// Samples a value in `[xmin, xmax]`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = rng.next_f64();
        let la = self.xmin.powf(self.alpha);
        let ha = self.xmax.powf(self.alpha);
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / self.alpha)
    }
}

/// Uniform distribution over `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution over `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `lo < hi` and both are finite.
    pub fn new(lo: f64, hi: f64) -> Result<Self, InvalidDistributionError> {
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(InvalidDistributionError::new("uniform requires lo < hi"));
        }
        Ok(Self { lo, hi })
    }

    /// Samples a value in `[lo, hi)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.lo + rng.next_f64() * (self.hi - self.lo)
    }
}

/// Bernoulli distribution: `true` with probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates a Bernoulli distribution with success probability `p` in
    /// `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 <= p <= 1`.
    pub fn new(p: f64) -> Result<Self, InvalidDistributionError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(InvalidDistributionError::new(
                "bernoulli requires p in [0, 1]",
            ));
        }
        Ok(Self { p })
    }

    /// Samples a boolean.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.gen_bool(self.p)
    }

    /// The success probability.
    pub fn p(&self) -> f64 {
        self.p
    }
}

/// Empirical (categorical) distribution over weighted alternatives.
///
/// Used for endpoint mixes ("feed 40%, timeline 30%, seen 20%, inbox 10%")
/// and operation mixes (GET/SET ratios).
///
/// # Examples
///
/// ```
/// use dcperf_util::{Empirical, Xoshiro256pp};
///
/// let mix = Empirical::new(&[0.7, 0.2, 0.1])?;
/// let mut rng = Xoshiro256pp::seed_from_u64(4);
/// let idx = mix.sample(&mut rng);
/// assert!(idx < 3);
/// # Ok::<(), dcperf_util::dist::InvalidDistributionError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Empirical {
    cumulative: Vec<f64>,
}

impl Empirical {
    /// Creates an empirical distribution from non-negative `weights`.
    ///
    /// Weights are normalized internally, so they need not sum to one.
    ///
    /// # Errors
    ///
    /// Returns an error if `weights` is empty, contains a negative or
    /// non-finite weight, or sums to zero.
    pub fn new(weights: &[f64]) -> Result<Self, InvalidDistributionError> {
        if weights.is_empty() {
            return Err(InvalidDistributionError::new("empirical requires weights"));
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(InvalidDistributionError::new(
                "empirical weights must be finite and non-negative",
            ));
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(InvalidDistributionError::new(
                "empirical weights must not all be zero",
            ));
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in weights {
            acc += w / total;
            cumulative.push(acc);
        }
        // Guard against floating-point shortfall at the top.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Ok(Self { cumulative })
    }

    /// Samples an index into the original weight slice.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u = rng.next_f64();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("cumulative weights are finite"))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i,
        }
    }

    /// Number of alternatives.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the distribution has zero alternatives (never true for a
    /// successfully constructed value).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(0xD0_CAFE)
    }

    #[test]
    fn zipf_rank0_is_most_popular() {
        let zipf = Zipf::new(10_000, 0.99).unwrap();
        let mut r = rng();
        let mut counts = [0u64; 16];
        for _ in 0..200_000 {
            let k = zipf.sample(&mut r);
            if (k as usize) < counts.len() {
                counts[k as usize] += 1;
            }
        }
        // Monotone non-increasing head, with generous slack for noise.
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[3]);
        assert!(counts[3] > counts[7]);
    }

    #[test]
    fn zipf_stays_in_range() {
        let zipf = Zipf::new(100, 1.2).unwrap();
        let mut r = rng();
        for _ in 0..50_000 {
            assert!(zipf.sample(&mut r) < 100);
        }
    }

    #[test]
    fn zipf_handles_s_equal_one() {
        let zipf = Zipf::new(1000, 1.0).unwrap();
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut r) < 1000);
        }
    }

    #[test]
    fn zipf_single_item_always_zero() {
        let zipf = Zipf::new(1, 0.9).unwrap();
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut r), 0);
        }
    }

    #[test]
    fn zipf_rejects_bad_params() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, 0.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
    }

    #[test]
    fn lognormal_mean_close_to_analytic() {
        let ln = LogNormal::new(3.0, 0.5).unwrap();
        let mut r = rng();
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| ln.sample(&mut r)).sum();
        let mean = sum / n as f64;
        let expect = ln.mean();
        assert!(
            (mean - expect).abs() / expect < 0.02,
            "mean={mean} expect={expect}"
        );
    }

    #[test]
    fn lognormal_from_median() {
        let ln = LogNormal::from_median(100.0, 0.0).unwrap();
        let mut r = rng();
        // sigma = 0 means all samples equal the median.
        assert!((ln.sample(&mut r) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn lognormal_rejects_bad_params() {
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::new(0.0, -1.0).is_err());
        assert!(LogNormal::from_median(0.0, 1.0).is_err());
    }

    #[test]
    fn exponential_mean_close_to_inverse_rate() {
        let exp = Exponential::new(50.0).unwrap();
        let mut r = rng();
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| exp.sample(&mut r)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.02).abs() < 0.001, "mean={mean}");
    }

    #[test]
    fn poisson_small_lambda_mean() {
        let p = Poisson::new(3.0).unwrap();
        let mut r = rng();
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| p.sample(&mut r)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn poisson_large_lambda_mean() {
        let p = Poisson::new(200.0).unwrap();
        let mut r = rng();
        let n = 50_000;
        let sum: u64 = (0..n).map(|_| p.sample(&mut r)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 200.0).abs() < 1.0, "mean={mean}");
    }

    #[test]
    fn pareto_bounded() {
        let p = Pareto::new(64.0, 1_048_576.0, 1.1).unwrap();
        let mut r = rng();
        for _ in 0..50_000 {
            let v = p.sample(&mut r);
            assert!((64.0..=1_048_576.0 + 1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let u = Uniform::new(10.0, 20.0).unwrap();
        let mut r = rng();
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = u.sample(&mut r);
            assert!((10.0..20.0).contains(&v));
            sum += v;
        }
        assert!((sum / n as f64 - 15.0).abs() < 0.05);
    }

    #[test]
    fn empirical_respects_weights() {
        let e = Empirical::new(&[8.0, 1.0, 1.0]).unwrap();
        let mut r = rng();
        let mut counts = [0u64; 3];
        for _ in 0..100_000 {
            counts[e.sample(&mut r)] += 1;
        }
        let f0 = counts[0] as f64 / 100_000.0;
        assert!((f0 - 0.8).abs() < 0.01, "f0={f0}");
        assert!(counts[1] > 0 && counts[2] > 0);
    }

    #[test]
    fn empirical_single_weight() {
        let e = Empirical::new(&[5.0]).unwrap();
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(e.sample(&mut r), 0);
        }
    }

    #[test]
    fn empirical_rejects_bad_weights() {
        assert!(Empirical::new(&[]).is_err());
        assert!(Empirical::new(&[0.0, 0.0]).is_err());
        assert!(Empirical::new(&[-1.0, 2.0]).is_err());
        assert!(Empirical::new(&[f64::INFINITY]).is_err());
    }

    #[test]
    fn bernoulli_edge_probabilities() {
        let mut r = rng();
        let never = Bernoulli::new(0.0).unwrap();
        let always = Bernoulli::new(1.0).unwrap();
        for _ in 0..1000 {
            assert!(!never.sample(&mut r));
            assert!(always.sample(&mut r));
        }
        assert!(Bernoulli::new(1.5).is_err());
    }
}
