//! Deterministic pseudo-random number generators.
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — a tiny, fast generator mainly used for seeding and for
//!   cheap hash-like mixing.
//! * [`Xoshiro256pp`] — the xoshiro256++ generator, the workhorse used by
//!   the load generators and dataset builders. It has a 256-bit state,
//!   passes BigCrush, and supports `jump()` for creating independent
//!   parallel streams.
//!
//! Both are fully deterministic given a seed, which is what makes DCPerf-RS
//! runs reproducible.

/// A source of pseudo-random `u64` values with convenience helpers.
///
/// All DCPerf-RS distributions sample through this trait, so any
/// deterministic generator can back them.
///
/// # Examples
///
/// ```
/// use dcperf_util::{Rng, SplitMix64};
///
/// let mut rng = SplitMix64::new(7);
/// let x = rng.next_u64();
/// let y = rng.gen_range(10, 20);
/// assert!((10..20).contains(&y));
/// let f = rng.next_f64();
/// assert!((0.0..1.0).contains(&f));
/// # let _ = x;
/// ```
pub trait Rng {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `u64` in `[lo, hi)` using Lemire's bounded method.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range requires lo < hi (got {lo}..{hi})");
        let span = hi - lo;
        // Multiply-shift bounded sampling with rejection to remove bias.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (span as u128);
        let mut l = m as u64;
        if l < span {
            let t = span.wrapping_neg() % span;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (span as u128);
                l = m as u64;
            }
        }
        lo + (m >> 64) as u64
    }

    /// Returns a uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    fn gen_index(&mut self, n: usize) -> usize {
        self.gen_range(0, n as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fills `buf` with pseudo-random bytes.
    fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    /// Shuffles `slice` in place with the Fisher–Yates algorithm.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(i + 1);
            slice.swap(i, j);
        }
    }
}

/// The SplitMix64 generator (Steele, Lea, Flood 2014).
///
/// Small and fast; primarily used for seed expansion and in unit tests.
///
/// # Examples
///
/// ```
/// use dcperf_util::{Rng, SplitMix64};
///
/// let mut a = SplitMix64::new(1);
/// let mut b = SplitMix64::new(1);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Applies the SplitMix64 output (finalizer) function to `x`.
    ///
    /// Useful as a cheap 64-bit mixer / avalanche function.
    pub fn mix(mut x: u64) -> u64 {
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        Self::new(0)
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        Self::mix(self.state)
    }
}

/// The xoshiro256++ generator (Blackman & Vigna 2019).
///
/// 256-bit state, `jump()` support for independent parallel sub-streams.
///
/// # Examples
///
/// ```
/// use dcperf_util::{Rng, Xoshiro256pp};
///
/// let mut rng = Xoshiro256pp::seed_from_u64(123);
/// let mut stream2 = rng.clone();
/// stream2.jump(); // non-overlapping with `rng` for 2^128 draws
/// assert_ne!(rng.next_u64(), stream2.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Creates a generator from a full 256-bit state.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zeros (a fixed point of the generator).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(
            s.iter().any(|&w| w != 0),
            "xoshiro256++ state must be non-zero"
        );
        Self { s }
    }

    /// Expands a 64-bit seed into a full state via SplitMix64, per the
    /// authors' recommendation.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // SplitMix64 output can't be all-zero for 4 consecutive draws, but be safe.
        if s.iter().all(|&w| w == 0) {
            Self::from_state([0x9E37_79B9_7F4A_7C15, 1, 2, 3])
        } else {
            Self { s }
        }
    }

    /// Advances the generator by 2^128 draws, producing an independent
    /// sub-stream. Call once per worker thread, cloning in between.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_2618_E03F_C9AA,
            0x39AB_DC45_29B1_661C,
        ];
        let mut s0 = 0u64;
        let mut s1 = 0u64;
        let mut s2 = 0u64;
        let mut s3 = 0u64;
        for &jump in &JUMP {
            for b in 0..64 {
                if jump & (1u64 << b) != 0 {
                    s0 ^= self.s[0];
                    s1 ^= self.s[1];
                    s2 ^= self.s[2];
                    s3 ^= self.s[3];
                }
                self.next_u64();
            }
        }
        self.s = [s0, s1, s2, s3];
    }
}

impl Default for Xoshiro256pp {
    fn default() -> Self {
        Self::seed_from_u64(0)
    }
}

impl Rng for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(0xDEADBEEF);
        let mut b = SplitMix64::new(0xDEADBEEF);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_reference_vector() {
        // Known-good SplitMix64 sequence for seed 1234567.
        let mut rng = SplitMix64::new(1234567);
        let expected = [
            6457827717110365317u64,
            3203168211198807973,
            9817491932198370423,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn xoshiro_reference_vector() {
        // Reference: xoshiro256++ with state {1, 2, 3, 4}.
        let mut rng = Xoshiro256pp::from_state([1, 2, 3, 4]);
        let expected = [41943041u64, 58720359, 3588806011781223, 3591011842654386];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn xoshiro_jump_produces_disjoint_prefix() {
        let base = Xoshiro256pp::seed_from_u64(99);
        let mut a = base.clone();
        let mut b = base;
        b.jump();
        let sa: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        for _ in 0..10_000 {
            let v = rng.gen_range(100, 200);
            assert!((100..200).contains(&v));
        }
    }

    #[test]
    fn gen_range_covers_small_span() {
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0, 4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn gen_range_rejects_empty() {
        let mut rng = SplitMix64::new(1);
        let _ = rng.gen_range(5, 5);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f), "{f} out of range");
        }
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = SplitMix64::new(3);
        for len in 0..33 {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 16 {
                // Overwhelmingly unlikely to remain all zero.
                assert!(buf.iter().any(|&b| b != 0), "len={len}");
            }
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should not be identity");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Xoshiro256pp::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac={frac}");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_state_rejected() {
        let _ = Xoshiro256pp::from_state([0, 0, 0, 0]);
    }
}
