//! Deterministic randomness, statistical distributions, and latency
//! histograms used throughout DCPerf-RS.
//!
//! Datacenter benchmarks must be *reproducible*: two runs with the same seed
//! must generate the same key popularity ranking, the same request-size
//! sequence, and the same arrival process. This crate therefore ships its
//! own small, fully deterministic PRNGs ([`SplitMix64`], [`Xoshiro256pp`])
//! instead of depending on an external randomness source, together with the
//! distributions the DCPerf paper calls out (Zipf key popularity, log-normal
//! request/response sizes, Poisson arrivals) and an HDR-style log-bucketed
//! histogram for latency percentiles.
//!
//! # Examples
//!
//! ```
//! use dcperf_util::{Xoshiro256pp, Zipf, Histogram};
//!
//! let mut rng = Xoshiro256pp::seed_from_u64(42);
//! let zipf = Zipf::new(1_000, 0.99).unwrap();
//! let mut hist = Histogram::new();
//! for _ in 0..10_000 {
//!     let key = zipf.sample(&mut rng);
//!     hist.record(key as u64 + 1);
//! }
//! assert!(hist.value_at_percentile(50.0) < hist.value_at_percentile(99.9));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod hist;
pub mod rng;
pub mod stats;

pub use dist::{Bernoulli, Empirical, Exponential, LogNormal, Pareto, Poisson, Uniform, Zipf};
pub use hist::{Histogram, NUM_BUCKETS};
pub use rng::{Rng, SplitMix64, Xoshiro256pp};
pub use stats::{geometric_mean, percentile_of_sorted, weighted_geometric_mean, RunningStats};
