//! HDR-style log-bucketed histogram for latency recording.
//!
//! The DCPerf benchmarks measure latency *distributions* (e.g. FeedSim's
//! P95 ≤ 500 ms SLO), so the recorder must capture values spanning
//! nanoseconds to minutes with bounded memory and bounded relative error.
//! [`Histogram`] buckets values logarithmically: each power-of-two range is
//! split into 32 linear sub-buckets, giving a worst-case relative error of
//! about 3% — ample for percentile reporting.

/// Number of linear sub-buckets per power-of-two range. Must be a power of
/// two.
const SUB_BUCKETS: usize = 32;
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();
/// Number of power-of-two ranges covering all of `u64`.
const RANGES: usize = 64;

/// A log-bucketed histogram of `u64` samples (typically nanoseconds).
///
/// Records in O(1), answers percentile queries in O(buckets), and merges
/// with other histograms. Concurrent recorders (see `dcperf-telemetry`)
/// share this bucket layout via [`Histogram::bucket_index`] and
/// [`Histogram::from_parts`], so their snapshots are bit-identical to a
/// single-threaded recording of the same samples.
///
/// # Examples
///
/// ```
/// use dcperf_util::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// let p50 = h.value_at_percentile(50.0);
/// assert!((450..=560).contains(&p50), "p50={p50}");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
    sum: u128,
}

/// Total number of buckets in the fixed layout shared by [`Histogram`]
/// and concurrent recorders built on the same binning.
pub const NUM_BUCKETS: usize = RANGES * SUB_BUCKETS;

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; NUM_BUCKETS],
            total: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    /// Reassembles a histogram from bucket counts produced with this
    /// layout's [`Histogram::bucket_index`], plus exact min/max/sum
    /// tracked alongside them. The total count is derived from `counts`.
    ///
    /// # Panics
    ///
    /// Panics if `counts` does not have [`NUM_BUCKETS`] entries.
    pub fn from_parts(counts: Vec<u64>, min: u64, max: u64, sum: u128) -> Self {
        assert_eq!(
            counts.len(),
            NUM_BUCKETS,
            "bucket count mismatch: expected {NUM_BUCKETS}, got {}",
            counts.len()
        );
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return Self::new();
        }
        Self {
            counts,
            total,
            min,
            max,
            sum,
        }
    }

    /// Maps a value to its bucket index in `0..NUM_BUCKETS`.
    pub fn bucket_index(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros();
        let range = msb - SUB_BITS + 1;
        let sub = (value >> (msb - SUB_BITS)) as usize & (SUB_BUCKETS - 1);
        (range as usize) * SUB_BUCKETS + sub + SUB_BUCKETS
    }

    /// Representative (upper-bound) value for a bucket index.
    fn bucket_value(index: usize) -> u64 {
        if index < SUB_BUCKETS {
            return index as u64;
        }
        let idx = index - SUB_BUCKETS;
        let range = (idx / SUB_BUCKETS) as u32;
        let sub = (idx % SUB_BUCKETS) as u64;
        let msb = range + SUB_BITS - 1;
        let base = 1u64 << msb;
        let step = 1u64 << (msb - SUB_BITS);
        // Ordered to avoid overflow in the topmost bucket, where
        // `base + (sub + 1) * step` is exactly 2^64.
        (base - 1) + (sub + 1) * step
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = Self::bucket_index(value);
        self.counts[idx] += n;
        self.total += n;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += value as u128 * n as u128;
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest recorded value, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The value at the given percentile (0–100).
    ///
    /// Returns an upper bound for the bucket containing the requested rank,
    /// so the result is never smaller than the true percentile value and at
    /// most ~3% larger.
    ///
    /// # Panics
    ///
    /// Panics if `pct` is not within `0.0..=100.0`.
    pub fn value_at_percentile(&self, pct: f64) -> u64 {
        assert!(
            (0.0..=100.0).contains(&pct),
            "percentile must be within 0..=100, got {pct}"
        );
        if self.total == 0 {
            return 0;
        }
        let target = ((pct / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_value(i).min(self.max);
            }
        }
        self.max
    }

    /// Convenience accessor for the median.
    pub fn p50(&self) -> u64 {
        self.value_at_percentile(50.0)
    }

    /// Convenience accessor for the 95th percentile (the paper's newsfeed
    /// SLO percentile).
    pub fn p95(&self) -> u64 {
        self.value_at_percentile(95.0)
    }

    /// Convenience accessor for the 99th percentile.
    pub fn p99(&self) -> u64 {
        self.value_at_percentile(99.0)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        if other.total > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Clears all recorded samples.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.min = u64::MAX;
        self.max = 0;
        self.sum = 0;
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Display for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} min={} p50={} p95={} p99={} max={} mean={:.1}",
            self.count(),
            self.min(),
            self.p50(),
            self.p95(),
            self.p99(),
            self.max(),
            self.mean()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.value_at_percentile(99.0), 0);
    }

    #[test]
    fn single_value() {
        let mut h = Histogram::new();
        h.record(42);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 42);
        assert_eq!(h.max(), 42);
        assert_eq!(h.p50(), 42);
        assert_eq!(h.value_at_percentile(100.0), 42);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        // Values below SUB_BUCKETS land in exact unit buckets.
        assert_eq!(h.value_at_percentile(100.0 / SUB_BUCKETS as f64), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB_BUCKETS as u64 - 1);
    }

    #[test]
    fn percentile_relative_error_bounded() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for pct in [10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9] {
            let est = h.value_at_percentile(pct) as f64;
            let truth = pct / 100.0 * 100_000.0;
            let rel = (est - truth).abs() / truth;
            assert!(rel < 0.04, "pct={pct} est={est} truth={truth} rel={rel}");
        }
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = Histogram::new();
        let mut x = 1u64;
        for i in 0..1000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i) % 10_000_000;
            h.record(x);
        }
        let mut last = 0;
        for p in 1..=100 {
            let v = h.value_at_percentile(p as f64);
            assert!(v >= last, "p{p}: {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn record_n_equals_repeated_record() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for _ in 0..57 {
            a.record(123_456);
        }
        b.record_n(123_456, 57);
        assert_eq!(a, b);
    }

    #[test]
    fn merge_equals_union() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in 1..500u64 {
            a.record(v * 3);
            whole.record(v * 3);
        }
        for v in 1..500u64 {
            b.record(v * 7 + 1_000_000);
            whole.record(v * 7 + 1_000_000);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn reset_restores_empty_state() {
        let mut h = Histogram::new();
        h.record(5);
        h.record(1u64 << 40);
        h.reset();
        assert_eq!(h, Histogram::new());
    }

    #[test]
    fn handles_extreme_values() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.value_at_percentile(100.0), u64::MAX);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(20);
        h.record(60);
        assert!((h.mean() - 30.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "percentile must be within")]
    fn rejects_out_of_range_percentile() {
        let h = Histogram::new();
        let _ = h.value_at_percentile(101.0);
    }

    #[test]
    fn bucket_round_trip_bounds() {
        // The representative value of a bucket must map back to the same
        // bucket, and must be >= any value that maps into the bucket.
        for value in [
            0u64,
            1,
            31,
            32,
            33,
            100,
            1_000,
            65_535,
            1 << 20,
            (1 << 20) + 12345,
            1 << 40,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let idx = Histogram::bucket_index(value);
            let rep = Histogram::bucket_value(idx);
            assert!(rep >= value, "rep {rep} < value {value}");
            assert_eq!(
                Histogram::bucket_index(rep),
                idx,
                "value {value} rep {rep} changed bucket"
            );
        }
    }
}
