//! Property tests for the statistical substrate: histogram accuracy
//! bounds, distribution ranges, and RNG determinism.

use dcperf_util::{Empirical, Histogram, Rng, Xoshiro256pp, Zipf};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn histogram_percentiles_within_relative_error(
        values in proptest::collection::vec(1u64..1_000_000_000, 1..500),
    ) {
        let mut hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for pct in [50.0, 90.0, 95.0, 99.0] {
            let est = hist.value_at_percentile(pct);
            let rank = ((pct / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize - 1;
            let truth = sorted[rank.min(sorted.len() - 1)];
            // Log-bucketed estimate: never below the truth, at most ~3.5% above.
            prop_assert!(est >= truth, "pct {}: est {} < truth {}", pct, est, truth);
            prop_assert!(
                (est as f64) <= truth as f64 * 1.035 + 1.0,
                "pct {}: est {} too far above truth {}", pct, est, truth
            );
        }
    }

    #[test]
    fn histogram_merge_commutes(
        a in proptest::collection::vec(0u64..1_000_000, 0..200),
        b in proptest::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        for &v in &a { ha.record(v); }
        for &v in &b { hb.record(v); }
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn histogram_count_and_bounds(values in proptest::collection::vec(any::<u64>(), 1..300)) {
        let mut hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        prop_assert_eq!(hist.count(), values.len() as u64);
        prop_assert_eq!(hist.min(), *values.iter().min().expect("non-empty"));
        prop_assert_eq!(hist.max(), *values.iter().max().expect("non-empty"));
    }

    #[test]
    fn histogram_percentiles_monotone_in_pct(
        values in proptest::collection::vec(1u64..1_000_000_000, 1..300),
        cuts in proptest::collection::vec(0.0f64..100.0, 2..8),
    ) {
        let mut hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let mut cuts = cuts.clone();
        cuts.sort_by(|x, y| x.partial_cmp(y).expect("cuts are finite"));
        // Percentiles are monotone non-decreasing in the percentile, and
        // pinned inside [min, max] at the extremes.
        let mut prev = hist.value_at_percentile(0.0);
        prop_assert!(prev >= hist.min(), "p0 {} < min {}", prev, hist.min());
        for &pct in &cuts {
            let cur = hist.value_at_percentile(pct);
            prop_assert!(cur >= prev, "p{} = {} < earlier {}", pct, cur, prev);
            prev = cur;
        }
        let p100 = hist.value_at_percentile(100.0);
        prop_assert!(p100 >= prev);
        prop_assert!(p100 <= hist.max(), "p100 {} > max {}", p100, hist.max());
    }

    #[test]
    fn histogram_merge_commutes_in_count_min_max(
        a in proptest::collection::vec(0u64..1_000_000, 0..200),
        b in proptest::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        for &v in &a { ha.record(v); }
        for &v in &b { hb.record(v); }
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert_eq!(ab.count(), (a.len() + b.len()) as u64);
        prop_assert_eq!(ab.min(), ba.min());
        prop_assert_eq!(ab.max(), ba.max());
    }

    #[test]
    fn zipf_samples_stay_in_range(
        n in 1u64..1_000_000,
        s in 0.1f64..2.5,
        seed in any::<u64>(),
    ) {
        let zipf = Zipf::new(n, s).expect("valid params");
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(zipf.sample(&mut rng) < n);
        }
    }

    #[test]
    fn empirical_indices_in_range(
        weights in proptest::collection::vec(0.0f64..100.0, 1..20),
        seed in any::<u64>(),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let dist = Empirical::new(&weights).expect("valid weights");
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(dist.sample(&mut rng) < weights.len());
        }
    }

    #[test]
    fn rng_streams_are_reproducible(seed in any::<u64>()) {
        let mut a = Xoshiro256pp::seed_from_u64(seed);
        let mut b = Xoshiro256pp::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_uniform_bounds(lo in 0u64..1000, span in 1u64..1000, seed in any::<u64>()) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        for _ in 0..100 {
            let v = rng.gen_range(lo, lo + span);
            prop_assert!(v >= lo && v < lo + span);
        }
    }
}
