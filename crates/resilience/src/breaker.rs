//! Circuit breaking: a closed → open → half-open state machine over a
//! rolling outcome window.
//!
//! A breaker protects callers from a failing dependency (fail fast
//! instead of queueing on a black hole) and protects the dependency from
//! its callers (backs off while it recovers). The state machine is split
//! in two layers:
//!
//! * [`BreakerCore`] — pure and single-threaded; time enters only as an
//!   explicit nanosecond argument, which makes every property of the
//!   machine testable without sleeping.
//! * [`CircuitBreaker`] — the thread-safe wall-clock wrapper used on real
//!   call paths, recording state transitions and rejections into a
//!   telemetry registry.

use dcperf_telemetry::{metrics, Counter, Telemetry};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Where the breaker is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BreakerState {
    /// Normal operation; outcomes feed the rolling window.
    Closed,
    /// Tripped: calls are rejected until the cooldown elapses.
    Open,
    /// Cooldown elapsed: a bounded number of probe calls test recovery.
    HalfOpen,
}

/// A state change, reported so wrappers can count transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerTransition {
    /// Closed/half-open → open.
    Opened,
    /// Open → half-open (cooldown elapsed).
    HalfOpened,
    /// Half-open → closed (probes succeeded).
    Closed,
}

/// Thresholds and windows for a breaker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Rolling outcome window length (count-based, deterministic).
    pub window: usize,
    /// Minimum outcomes in the window before the ratio can trip.
    pub min_calls: usize,
    /// Failure fraction at or above which the breaker opens.
    pub failure_ratio: f64,
    /// How long the breaker stays open before probing.
    pub cooldown: Duration,
    /// Probe calls admitted while half-open.
    pub half_open_probes: u32,
    /// Probe successes required to close (≤ `half_open_probes`).
    pub probe_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            window: 64,
            min_calls: 10,
            failure_ratio: 0.5,
            cooldown: Duration::from_millis(100),
            half_open_probes: 4,
            probe_successes: 2,
        }
    }
}

impl BreakerConfig {
    /// Overrides the cooldown (builder style).
    pub fn with_cooldown(mut self, cooldown: Duration) -> Self {
        self.cooldown = cooldown;
        self
    }

    /// Overrides the trip ratio, clamped to `(0, 1]` (builder style).
    pub fn with_failure_ratio(mut self, ratio: f64) -> Self {
        self.failure_ratio = ratio.clamp(f64::MIN_POSITIVE, 1.0);
        self
    }

    /// Whether a window of `failures` out of `total` outcomes trips the
    /// breaker. Monotone in `failures` for fixed `total`. `min_calls` is
    /// clamped to the window length — a rolling window can never hold
    /// more outcomes than `window`, so a larger gate could never fire.
    pub fn would_trip(&self, failures: usize, total: usize) -> bool {
        total >= self.min_calls.max(1).min(self.window.max(1))
            && failures as f64 / total as f64 >= self.failure_ratio
    }
}

/// The pure breaker state machine. Time is an explicit nanosecond
/// timestamp; callers must pass non-decreasing values.
#[derive(Debug, Clone)]
pub struct BreakerCore {
    config: BreakerConfig,
    state: BreakerState,
    /// Rolling window of outcomes, `true` = failure.
    window: VecDeque<bool>,
    failures: usize,
    opened_at_ns: u64,
    probes_issued: u32,
    probe_ok: u32,
}

impl BreakerCore {
    /// A closed breaker with an empty window.
    pub fn new(config: BreakerConfig) -> Self {
        Self {
            config,
            state: BreakerState::Closed,
            window: VecDeque::with_capacity(config.window.max(1)),
            failures: 0,
            opened_at_ns: 0,
            probes_issued: 0,
            probe_ok: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// The configuration in effect.
    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }

    /// Asks whether a call may proceed at `now_ns`. May move
    /// open → half-open when the cooldown has elapsed; the transition (if
    /// any) is returned alongside the admission decision.
    pub fn allow(&mut self, now_ns: u64) -> (bool, Option<BreakerTransition>) {
        match self.state {
            BreakerState::Closed => (true, None),
            BreakerState::Open => {
                let cooldown_ns =
                    u64::try_from(self.config.cooldown.as_nanos()).unwrap_or(u64::MAX);
                if now_ns.saturating_sub(self.opened_at_ns) >= cooldown_ns {
                    self.state = BreakerState::HalfOpen;
                    self.probes_issued = 1;
                    self.probe_ok = 0;
                    (true, Some(BreakerTransition::HalfOpened))
                } else {
                    (false, None)
                }
            }
            BreakerState::HalfOpen => {
                if self.probes_issued < self.config.half_open_probes.max(1) {
                    self.probes_issued += 1;
                    (true, None)
                } else {
                    // Probe budget exhausted; wait for their outcomes.
                    (false, None)
                }
            }
        }
    }

    /// Records a call outcome observed at `now_ns`.
    pub fn record(&mut self, now_ns: u64, success: bool) -> Option<BreakerTransition> {
        match self.state {
            BreakerState::Closed => {
                if self.window.len() >= self.config.window.max(1)
                    && self.window.pop_front() == Some(true)
                {
                    self.failures -= 1;
                }
                self.window.push_back(!success);
                if !success {
                    self.failures += 1;
                }
                if self.config.would_trip(self.failures, self.window.len()) {
                    self.trip(now_ns);
                    Some(BreakerTransition::Opened)
                } else {
                    None
                }
            }
            BreakerState::HalfOpen => {
                if success {
                    self.probe_ok += 1;
                    if self.probe_ok >= self.config.probe_successes.max(1) {
                        self.state = BreakerState::Closed;
                        self.window.clear();
                        self.failures = 0;
                        Some(BreakerTransition::Closed)
                    } else {
                        None
                    }
                } else {
                    // One failed probe is proof enough: reopen.
                    self.trip(now_ns);
                    Some(BreakerTransition::Opened)
                }
            }
            // Stragglers from calls admitted before the trip; ignored.
            BreakerState::Open => None,
        }
    }

    fn trip(&mut self, now_ns: u64) {
        self.state = BreakerState::Open;
        self.opened_at_ns = now_ns;
        self.window.clear();
        self.failures = 0;
        self.probes_issued = 0;
        self.probe_ok = 0;
    }
}

/// Thread-safe wall-clock circuit breaker with telemetry.
///
/// Transitions land in the registry as `<prefix>.open_transitions`,
/// `<prefix>.half_open_transitions`, and `<prefix>.close_transitions`;
/// rejected admissions as `<prefix>.rejected` (prefix defaults to
/// `resilience.breaker`).
#[derive(Debug)]
pub struct CircuitBreaker {
    core: Mutex<BreakerCore>,
    epoch: Instant,
    open_transitions: Arc<Counter>,
    half_open_transitions: Arc<Counter>,
    close_transitions: Arc<Counter>,
    rejected: Arc<Counter>,
}

impl CircuitBreaker {
    /// A breaker recording into a private registry.
    pub fn new(config: BreakerConfig) -> Self {
        Self::with_telemetry(
            config,
            &Telemetry::new(),
            metrics::PREFIX_RESILIENCE_BREAKER,
        )
    }

    /// A breaker recording transitions under `<prefix>.*` in `telemetry`
    /// (pass the server's registry so breaker events appear next to the
    /// transport counters they explain).
    pub fn with_telemetry(config: BreakerConfig, telemetry: &Telemetry, prefix: &str) -> Self {
        let counter = |s| telemetry.counter(&metrics::scoped(prefix, s));
        Self {
            core: Mutex::new(BreakerCore::new(config)),
            epoch: Instant::now(),
            open_transitions: counter(metrics::suffix::OPEN_TRANSITIONS),
            half_open_transitions: counter(metrics::suffix::HALF_OPEN_TRANSITIONS),
            close_transitions: counter(metrics::suffix::CLOSE_TRANSITIONS),
            rejected: counter(metrics::suffix::REJECTED),
        }
    }

    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn count(&self, transition: Option<BreakerTransition>) {
        match transition {
            Some(BreakerTransition::Opened) => self.open_transitions.inc(),
            Some(BreakerTransition::HalfOpened) => self.half_open_transitions.inc(),
            Some(BreakerTransition::Closed) => self.close_transitions.inc(),
            None => {}
        }
    }

    /// Whether a call may proceed now. A `false` is counted as a
    /// rejection.
    pub fn allow(&self) -> bool {
        let now = self.now_ns();
        let (admitted, transition) = self
            .core
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .allow(now);
        self.count(transition);
        if !admitted {
            self.rejected.inc();
        }
        admitted
    }

    /// Records a successful call.
    pub fn record_success(&self) {
        let now = self.now_ns();
        let t = self
            .core
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .record(now, true);
        self.count(t);
    }

    /// Records a failed call.
    pub fn record_failure(&self) {
        let now = self.now_ns();
        let t = self
            .core
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .record(now, false);
        self.count(t);
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.core.lock().unwrap_or_else(|e| e.into_inner()).state()
    }

    /// Calls rejected while open or probe-exhausted.
    pub fn rejected(&self) -> u64 {
        self.rejected.get()
    }

    /// Times the breaker tripped open.
    pub fn open_transitions(&self) -> u64 {
        self.open_transitions.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            window: 10,
            min_calls: 4,
            failure_ratio: 0.5,
            cooldown: Duration::from_millis(10),
            half_open_probes: 2,
            probe_successes: 2,
        }
    }

    #[test]
    fn trips_on_failure_ratio_and_recovers() {
        let mut core = BreakerCore::new(cfg());
        for i in 0..4 {
            let t = core.record(i, i % 2 == 0);
            if i < 3 {
                assert_eq!(t, None);
            } else {
                assert_eq!(t, Some(BreakerTransition::Opened));
            }
        }
        assert_eq!(core.state(), BreakerState::Open);
        // Before cooldown: rejected.
        let (ok, _) = core.allow(3 + 1_000_000);
        assert!(!ok);
        // After cooldown: half-open probe admitted.
        let (ok, t) = core.allow(3 + 10_000_000);
        assert!(ok);
        assert_eq!(t, Some(BreakerTransition::HalfOpened));
        let (ok, _) = core.allow(3 + 10_000_001);
        assert!(ok, "second probe fits the budget");
        let (ok, _) = core.allow(3 + 10_000_002);
        assert!(!ok, "probe budget exhausted");
        assert_eq!(core.record(3 + 10_000_003, true), None);
        assert_eq!(
            core.record(3 + 10_000_004, true),
            Some(BreakerTransition::Closed)
        );
        assert_eq!(core.state(), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens() {
        let mut core = BreakerCore::new(cfg());
        for i in 0..4 {
            core.record(i, false);
        }
        assert_eq!(core.state(), BreakerState::Open);
        let (ok, _) = core.allow(100_000_000);
        assert!(ok);
        assert_eq!(
            core.record(100_000_001, false),
            Some(BreakerTransition::Opened)
        );
        assert_eq!(core.state(), BreakerState::Open);
        // The fresh trip restarts the cooldown from the reopen time.
        let (ok, _) = core.allow(100_000_002);
        assert!(!ok);
    }

    #[test]
    fn min_calls_gate_prevents_early_trip() {
        let mut core = BreakerCore::new(cfg());
        for i in 0..3 {
            assert_eq!(core.record(i, false), None, "below min_calls");
        }
        assert_eq!(core.state(), BreakerState::Closed);
    }

    #[test]
    fn window_rolls_old_outcomes_out() {
        let mut core = BreakerCore::new(BreakerConfig {
            window: 4,
            min_calls: 4,
            failure_ratio: 0.75,
            ..cfg()
        });
        // Two failures, then enough successes to roll them out.
        core.record(0, false);
        core.record(1, false);
        for i in 2..8 {
            assert_eq!(core.record(i, true), None);
        }
        assert_eq!(core.state(), BreakerState::Closed);
        // Window is now all-success; two fresh failures are only 2/4.
        core.record(8, false);
        assert_eq!(core.record(9, false), None);
        assert_eq!(core.state(), BreakerState::Closed);
    }

    #[test]
    fn wrapper_counts_transitions_and_rejections() {
        let telemetry = Telemetry::new();
        let breaker = CircuitBreaker::with_telemetry(
            cfg().with_cooldown(Duration::from_secs(3600)),
            &telemetry,
            metrics::PREFIX_RESILIENCE_BREAKER,
        );
        for _ in 0..4 {
            assert!(breaker.allow());
            breaker.record_failure();
        }
        assert_eq!(breaker.state(), BreakerState::Open);
        assert!(!breaker.allow());
        assert!(!breaker.allow());
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("resilience.breaker.open_transitions"), Some(1));
        assert_eq!(snap.counter("resilience.breaker.rejected"), Some(2));
        assert_eq!(breaker.open_transitions(), 1);
        assert_eq!(breaker.rejected(), 2);
    }

    #[test]
    fn wrapper_half_opens_after_cooldown() {
        let breaker = CircuitBreaker::new(cfg().with_cooldown(Duration::from_millis(5)));
        for _ in 0..4 {
            breaker.record_failure();
        }
        assert_eq!(breaker.state(), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(10));
        assert!(breaker.allow());
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        breaker.record_success();
        breaker.record_success();
        assert_eq!(breaker.state(), BreakerState::Closed);
    }
}
