//! Resilience machinery for DCPerf-RS: deadlines, retries, circuit
//! breaking, and deterministic fault injection.
//!
//! DCPerf's methodology is SLO-constrained peak throughput (§3.2), and
//! production stacks only hold those SLOs because every hop carries
//! deadlines, bounded retries, and load shedding. This crate provides that
//! machinery as substrate-independent building blocks:
//!
//! * [`Deadline`] — an absolute expiry carried per request, checked at
//!   queue dequeue and handler entry so expired work is shed instead of
//!   burning a worker.
//! * [`RetryPolicy`] / [`RetryBudget`] — capped exponential backoff with
//!   deterministic seeded jitter, plus a token-bucket budget so retry
//!   storms cannot amplify overload.
//! * [`BreakerCore`] / [`CircuitBreaker`] — a closed → open → half-open
//!   state machine over a rolling outcome window. The core is pure (time
//!   is an explicit nanosecond argument) and therefore exhaustively
//!   property-testable; the wrapper adds wall-clock time, thread safety,
//!   and telemetry.
//! * [`FaultPlan`] — seeded, deterministic injectors for added latency
//!   (fixed or Pareto), error rates, overload bursts, and blackout
//!   windows, installable on the RPC dispatch path and the kvstore
//!   backing store.
//!
//! Nothing here uses wall-clock randomness: every stochastic decision is
//! driven by a seeded [`dcperf_util::SplitMix64`], so chaos scenarios are
//! reproducible run to run.
//!
//! # Examples
//!
//! ```
//! use dcperf_resilience::{BreakerConfig, CircuitBreaker, RetryPolicy};
//! use std::time::Duration;
//!
//! let policy = RetryPolicy::new(4, Duration::from_millis(1));
//! let delays: Vec<_> = policy.schedule(42).collect();
//! assert_eq!(delays.len(), 3); // attempts after the first
//!
//! let breaker = CircuitBreaker::new(BreakerConfig::default());
//! assert!(breaker.allow());
//! breaker.record_success();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod breaker;
mod deadline;
mod fault;
mod retry;

pub use breaker::{BreakerConfig, BreakerCore, BreakerState, BreakerTransition, CircuitBreaker};
pub use deadline::Deadline;
pub use fault::{FaultDecision, FaultOutcome, FaultPlan, LatencyFault};
pub use retry::{BackoffSchedule, RetryBudget, RetryPolicy};
