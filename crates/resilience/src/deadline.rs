//! Per-request deadlines.
//!
//! A deadline travels as a *remaining budget* (microseconds) in the RPC
//! request frame — relative budgets survive the lack of a shared clock
//! between client and server — and is pinned to an absolute [`Instant`]
//! the moment the receiving side decodes it. Work whose deadline has
//! expired is shed instead of executed: a reply the client has already
//! given up on is pure waste.

use std::time::{Duration, Instant};

/// An absolute expiry for one unit of work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    expires: Instant,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Self {
            expires: Instant::now() + budget,
        }
    }

    /// A deadline from a wire budget in microseconds (`0` means
    /// "no deadline" on the wire, so callers should gate on that first).
    pub fn from_budget_us(budget_us: u64) -> Self {
        Self::after(Duration::from_micros(budget_us))
    }

    /// The absolute expiry instant.
    pub fn expires_at(&self) -> Instant {
        self.expires
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.expires
    }

    /// Time left before expiry (`None` once expired).
    pub fn remaining(&self) -> Option<Duration> {
        let now = Instant::now();
        if now >= self.expires {
            None
        } else {
            Some(self.expires - now)
        }
    }

    /// The remaining budget in microseconds for re-encoding on the wire,
    /// clamped to at least 1 so an in-flight-but-tight deadline is not
    /// confused with "no deadline". Returns `None` once expired.
    pub fn budget_us(&self) -> Option<u64> {
        self.remaining()
            .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX).max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_deadline_is_unexpired() {
        let d = Deadline::after(Duration::from_secs(60));
        assert!(!d.expired());
        assert!(d.remaining().unwrap() > Duration::from_secs(59));
        assert!(d.budget_us().unwrap() > 59_000_000);
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.remaining(), None);
        assert_eq!(d.budget_us(), None);
    }

    #[test]
    fn wire_budget_round_trips() {
        let d = Deadline::from_budget_us(500_000);
        let back = d.budget_us().unwrap();
        assert!(back <= 500_000 && back > 400_000, "back={back}");
    }
}
