//! Client-side retry policy: capped exponential backoff with
//! deterministic seeded jitter, and retry budgets.
//!
//! Retries convert transient faults into latency instead of errors — but
//! unbounded retries amplify overload (every shed request comes back as
//! two). Two mechanisms bound that amplification:
//!
//! * [`RetryPolicy`] caps attempts and spaces them out exponentially with
//!   jitter, so synchronized retry waves decohere.
//! * [`RetryBudget`] is a token bucket earned by successes: each success
//!   deposits a fraction of a token, each retry withdraws a whole one.
//!   When the ambient failure rate exceeds the deposit ratio the budget
//!   drains and retries stop, which is exactly the storm-suppression
//!   behavior production RPC stacks (Finagle, gRPC) implement.
//!
//! All jitter comes from a seeded [`SplitMix64`]; given a seed, the
//! backoff schedule is a pure function. No wall-clock randomness.

use dcperf_util::{Rng, SplitMix64};
use std::sync::atomic::{AtomicI64, Ordering};
use std::time::Duration;

/// Attempt cap and backoff curve for retried calls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 disables retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff.
    pub max_backoff: Duration,
    /// Geometric growth factor between retries.
    pub multiplier: f64,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a factor
    /// drawn uniformly from `[1 - jitter, 1]`.
    pub jitter: f64,
}

impl RetryPolicy {
    /// A policy with `max_attempts` total attempts, doubling from
    /// `base_backoff` up to 100× base, with 50% jitter.
    pub fn new(max_attempts: u32, base_backoff: Duration) -> Self {
        Self {
            max_attempts: max_attempts.max(1),
            base_backoff,
            max_backoff: base_backoff.saturating_mul(100),
            multiplier: 2.0,
            jitter: 0.5,
        }
    }

    /// A policy that never retries.
    pub fn no_retries() -> Self {
        Self::new(1, Duration::ZERO)
    }

    /// Overrides the backoff cap (builder style).
    pub fn with_max_backoff(mut self, cap: Duration) -> Self {
        self.max_backoff = cap;
        self
    }

    /// Overrides the jitter fraction, clamped to `[0, 1]` (builder style).
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.clamp(0.0, 1.0);
        self
    }

    /// The delay before retry number `retry` (1-based), jittered through
    /// `rng`. Deterministic for a deterministic generator.
    pub fn backoff<R: Rng + ?Sized>(&self, retry: u32, rng: &mut R) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let exp = self.multiplier.powi(retry.saturating_sub(1) as i32);
        let raw = self.base_backoff.as_secs_f64() * exp;
        let capped = raw.min(self.max_backoff.as_secs_f64());
        let scale = 1.0 - self.jitter * rng.next_f64();
        Duration::from_secs_f64(capped * scale)
    }

    /// The full deterministic backoff schedule for one call, seeded: one
    /// delay per retry (so `max_attempts - 1` entries).
    pub fn schedule(&self, seed: u64) -> BackoffSchedule {
        BackoffSchedule {
            policy: *self,
            rng: SplitMix64::new(seed),
            next_retry: 1,
        }
    }
}

/// Iterator over a [`RetryPolicy`]'s jittered delays for a fixed seed.
#[derive(Debug, Clone)]
pub struct BackoffSchedule {
    policy: RetryPolicy,
    rng: SplitMix64,
    next_retry: u32,
}

impl Iterator for BackoffSchedule {
    type Item = Duration;

    fn next(&mut self) -> Option<Duration> {
        if self.next_retry >= self.policy.max_attempts {
            return None;
        }
        let delay = self.policy.backoff(self.next_retry, &mut self.rng);
        self.next_retry += 1;
        Some(delay)
    }
}

/// Token-bucket retry budget: successes earn fractional tokens, each
/// retry spends a whole one.
///
/// Thread-safe and wait-free (a single atomic), so one budget can be
/// shared by every client handle talking to a backend.
#[derive(Debug)]
pub struct RetryBudget {
    /// Tokens scaled by [`RetryBudget::SCALE`].
    tokens: AtomicI64,
    max_scaled: i64,
    deposit_scaled: i64,
}

impl RetryBudget {
    const SCALE: i64 = 1000;

    /// A budget holding at most `max_tokens` retries, earning
    /// `deposit_ratio` of a token per success (0.1 ⇒ one retry per ten
    /// successes once drained). Starts full so cold-start failures can
    /// still retry.
    pub fn new(max_tokens: u32, deposit_ratio: f64) -> Self {
        let max_scaled = i64::from(max_tokens.max(1)) * Self::SCALE;
        Self {
            tokens: AtomicI64::new(max_scaled),
            max_scaled,
            deposit_scaled: (deposit_ratio.clamp(0.0, 1.0) * Self::SCALE as f64) as i64,
        }
    }

    /// An effectively unlimited budget (for scenarios isolating other
    /// mechanisms).
    pub fn unlimited() -> Self {
        Self::new(u32::MAX / 2000, 1.0)
    }

    /// Records a success, growing the budget toward its cap.
    pub fn deposit(&self) {
        let prev = self
            .tokens
            .fetch_add(self.deposit_scaled, Ordering::Relaxed);
        // Clamp overshoot; a lost race only delays the clamp by one call.
        if prev + self.deposit_scaled > self.max_scaled {
            self.tokens.store(self.max_scaled, Ordering::Relaxed);
        }
    }

    /// Attempts to spend one retry token. Returns `false` (and leaves the
    /// budget untouched) when drained — the caller must give up instead
    /// of retrying.
    pub fn try_spend(&self) -> bool {
        let mut current = self.tokens.load(Ordering::Relaxed);
        loop {
            if current < Self::SCALE {
                return false;
            }
            match self.tokens.compare_exchange_weak(
                current,
                current - Self::SCALE,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => current = seen,
            }
        }
    }

    /// Whole retry tokens currently available.
    pub fn available(&self) -> u64 {
        (self.tokens.load(Ordering::Relaxed).max(0) / Self::SCALE) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_capped() {
        let policy = RetryPolicy::new(6, Duration::from_millis(10))
            .with_max_backoff(Duration::from_millis(50));
        let a: Vec<_> = policy.schedule(7).collect();
        let b: Vec<_> = policy.schedule(7).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        for d in &a {
            assert!(*d <= Duration::from_millis(50), "delay {d:?} over cap");
        }
    }

    #[test]
    fn different_seeds_give_different_jitter() {
        let policy = RetryPolicy::new(4, Duration::from_millis(10));
        let a: Vec<_> = policy.schedule(1).collect();
        let b: Vec<_> = policy.schedule(2).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn zero_jitter_schedule_is_exactly_exponential() {
        let policy = RetryPolicy::new(4, Duration::from_millis(10)).with_jitter(0.0);
        let delays: Vec<_> = policy.schedule(99).collect();
        assert_eq!(
            delays,
            vec![
                Duration::from_millis(10),
                Duration::from_millis(20),
                Duration::from_millis(40),
            ]
        );
    }

    #[test]
    fn no_retries_policy_yields_empty_schedule() {
        assert_eq!(RetryPolicy::no_retries().schedule(0).count(), 0);
    }

    #[test]
    fn budget_drains_and_refills() {
        let budget = RetryBudget::new(2, 0.5);
        assert!(budget.try_spend());
        assert!(budget.try_spend());
        assert!(!budget.try_spend(), "drained budget must refuse");
        budget.deposit();
        assert!(!budget.try_spend(), "half a token is not enough");
        budget.deposit();
        assert!(budget.try_spend(), "two deposits at 0.5 earn one retry");
    }

    #[test]
    fn budget_caps_at_max() {
        let budget = RetryBudget::new(1, 1.0);
        for _ in 0..100 {
            budget.deposit();
        }
        assert_eq!(budget.available(), 1);
        assert!(budget.try_spend());
        assert!(!budget.try_spend());
    }
}
