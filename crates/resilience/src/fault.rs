//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes the chaos a scenario wants — latency spikes,
//! error rates, overload bursts, blackout windows — and produces a
//! per-operation [`FaultDecision`]. Every stochastic choice is keyed on
//! `(seed, operation index)` through a [`SplitMix64`] mix, so a plan
//! replays identically for a given operation sequence: no wall-clock
//! randomness, no flaky chaos tests.
//!
//! Plans are installed on the RPC server dispatch path and the kvstore
//! backing store (behind their `fault-injection` features), or wrapped
//! around any load-generator `Service`. The plan keeps its own injection
//! counters so a report can state exactly how much chaos was dealt.

use dcperf_util::{Pareto, Rng, SplitMix64};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// The latency shape of an injected slow-down.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyFault {
    /// A constant added delay.
    Fixed(Duration),
    /// A bounded-Pareto added delay (heavy-tailed, like real stragglers).
    Pareto(Pareto),
}

impl LatencyFault {
    /// A bounded-Pareto latency fault between `min` and `max` with shape
    /// `alpha`.
    ///
    /// # Errors
    ///
    /// Returns the distribution's validation error for degenerate bounds.
    pub fn pareto(
        min: Duration,
        max: Duration,
        alpha: f64,
    ) -> Result<Self, Box<dyn std::error::Error>> {
        Ok(Self::Pareto(Pareto::new(
            min.as_secs_f64().max(1e-9),
            max.as_secs_f64(),
            alpha,
        )?))
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        match self {
            LatencyFault::Fixed(d) => *d,
            LatencyFault::Pareto(p) => Duration::from_secs_f64(p.sample(rng)),
        }
    }
}

/// What happens to one operation, other than added latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// The operation proceeds normally.
    Pass,
    /// The operation fails with an injected error.
    Error,
    /// The operation is rejected as overloaded (shed).
    Overload,
}

/// The injected behavior for one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultDecision {
    /// Delay to add before the operation runs (zero when none).
    pub extra_latency: Duration,
    /// Error/overload/pass-through verdict.
    pub outcome: FaultOutcome,
}

impl FaultDecision {
    /// A decision that changes nothing.
    pub fn pass() -> Self {
        Self {
            extra_latency: Duration::ZERO,
            outcome: FaultOutcome::Pass,
        }
    }
}

/// A deterministic, seeded chaos schedule.
///
/// Thread-safe: the only mutable state is atomic counters, so one plan
/// can be shared by every worker thread of a server.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    latency: Option<(f64, LatencyFault)>,
    error_rate: f64,
    blackout: Option<(u64, u64)>,
    overload_burst: Option<(u64, u64)>,
    next_op: AtomicU64,
    injected_latency_ops: AtomicU64,
    injected_latency_ns: AtomicU64,
    injected_errors: AtomicU64,
    injected_overloads: AtomicU64,
}

impl FaultPlan {
    /// A plan that injects nothing (until builders add faults).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            latency: None,
            error_rate: 0.0,
            blackout: None,
            overload_burst: None,
            next_op: AtomicU64::new(0),
            injected_latency_ops: AtomicU64::new(0),
            injected_latency_ns: AtomicU64::new(0),
            injected_errors: AtomicU64::new(0),
            injected_overloads: AtomicU64::new(0),
        }
    }

    /// Adds `fault` latency to a `probability` fraction of operations
    /// (builder style).
    pub fn with_latency(mut self, probability: f64, fault: LatencyFault) -> Self {
        self.latency = Some((probability.clamp(0.0, 1.0), fault));
        self
    }

    /// Fails a `rate` fraction of operations with an injected error
    /// (builder style).
    pub fn with_error_rate(mut self, rate: f64) -> Self {
        self.error_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Fails *every* operation whose index lies in
    /// `[start, start + len)` — a full outage window (builder style).
    pub fn with_blackout(mut self, start: u64, len: u64) -> Self {
        self.blackout = Some((start, len));
        self
    }

    /// Sheds the first `len` of every `period` operations as overloaded —
    /// a periodic overload burst (builder style).
    pub fn with_overload_burst(mut self, period: u64, len: u64) -> Self {
        self.overload_burst = Some((period.max(1), len));
        self
    }

    /// The pure decision for operation index `op`. Does not advance the
    /// plan or touch counters; [`FaultPlan::next`] is the counting form.
    pub fn decide(&self, op: u64) -> FaultDecision {
        // Blackouts and bursts are positional and take precedence over
        // the sampled faults.
        if let Some((start, len)) = self.blackout {
            if op >= start && op - start < len {
                return FaultDecision {
                    extra_latency: Duration::ZERO,
                    outcome: FaultOutcome::Error,
                };
            }
        }
        if let Some((period, len)) = self.overload_burst {
            if op % period < len {
                return FaultDecision {
                    extra_latency: Duration::ZERO,
                    outcome: FaultOutcome::Overload,
                };
            }
        }
        let mut rng = SplitMix64::new(self.seed ^ SplitMix64::mix(op.wrapping_add(1)));
        let mut decision = FaultDecision::pass();
        if let Some((probability, fault)) = &self.latency {
            if rng.next_f64() < *probability {
                decision.extra_latency = fault.sample(&mut rng);
            }
        }
        if self.error_rate > 0.0 && rng.next_f64() < self.error_rate {
            decision.outcome = FaultOutcome::Error;
        }
        decision
    }

    /// Draws the decision for the next operation and records it in the
    /// plan's injection counters.
    pub fn next(&self) -> FaultDecision {
        let op = self.next_op.fetch_add(1, Ordering::Relaxed);
        let decision = self.decide(op);
        if !decision.extra_latency.is_zero() {
            self.injected_latency_ops.fetch_add(1, Ordering::Relaxed);
            self.injected_latency_ns.fetch_add(
                u64::try_from(decision.extra_latency.as_nanos()).unwrap_or(u64::MAX),
                Ordering::Relaxed,
            );
        }
        match decision.outcome {
            FaultOutcome::Error => {
                self.injected_errors.fetch_add(1, Ordering::Relaxed);
            }
            FaultOutcome::Overload => {
                self.injected_overloads.fetch_add(1, Ordering::Relaxed);
            }
            FaultOutcome::Pass => {}
        }
        decision
    }

    /// Draws the next decision, *pays* its latency on the calling thread
    /// (as the faulted dependency would), and returns the outcome.
    pub fn apply(&self) -> FaultOutcome {
        let decision = self.next();
        pay_latency(decision.extra_latency);
        decision.outcome
    }

    /// Operations the plan has decided so far.
    pub fn operations(&self) -> u64 {
        self.next_op.load(Ordering::Relaxed)
    }

    /// Operations that received injected latency.
    pub fn injected_latency_ops(&self) -> u64 {
        self.injected_latency_ops.load(Ordering::Relaxed)
    }

    /// Total injected latency in nanoseconds.
    pub fn injected_latency_ns(&self) -> u64 {
        self.injected_latency_ns.load(Ordering::Relaxed)
    }

    /// Operations failed by injection (including blackout windows).
    pub fn injected_errors(&self) -> u64 {
        self.injected_errors.load(Ordering::Relaxed)
    }

    /// Operations shed by injected overload bursts.
    pub fn injected_overloads(&self) -> u64 {
        self.injected_overloads.load(Ordering::Relaxed)
    }
}

/// Blocks the calling thread for `latency`: sleeps for coarse delays,
/// spins for sub-millisecond ones (matching the backing store's latency
/// model, since OS sleeps are unreliable below ~1 ms).
fn pay_latency(latency: Duration) {
    if latency.is_zero() {
        return;
    }
    if latency >= Duration::from_millis(2) {
        std::thread::sleep(latency);
    } else {
        // analyzer: allow(wall-clock) — busy-wait pays the injected stall; decisions stay seeded
        let deadline = Instant::now() + latency;
        // analyzer: allow(wall-clock) — same stall-payment loop as above
        while Instant::now() < deadline {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let make = || {
            FaultPlan::new(9)
                .with_latency(0.3, LatencyFault::Fixed(Duration::from_millis(5)))
                .with_error_rate(0.2)
        };
        let a = make();
        let b = make();
        for op in 0..500 {
            assert_eq!(a.decide(op), b.decide(op), "op {op}");
        }
    }

    #[test]
    fn rates_are_respected() {
        let plan = FaultPlan::new(3)
            .with_latency(0.1, LatencyFault::Fixed(Duration::from_millis(50)))
            .with_error_rate(0.01);
        let n = 10_000u64;
        let mut slow = 0;
        let mut failed = 0;
        for op in 0..n {
            let d = plan.decide(op);
            if !d.extra_latency.is_zero() {
                slow += 1;
            }
            if d.outcome == FaultOutcome::Error {
                failed += 1;
            }
        }
        let slow_rate = slow as f64 / n as f64;
        let fail_rate = failed as f64 / n as f64;
        assert!((0.08..0.12).contains(&slow_rate), "slow_rate={slow_rate}");
        assert!((0.005..0.02).contains(&fail_rate), "fail_rate={fail_rate}");
    }

    #[test]
    fn blackout_window_fails_everything_inside() {
        let plan = FaultPlan::new(0).with_blackout(100, 50);
        assert_eq!(plan.decide(99).outcome, FaultOutcome::Pass);
        for op in 100..150 {
            assert_eq!(plan.decide(op).outcome, FaultOutcome::Error);
        }
        assert_eq!(plan.decide(150).outcome, FaultOutcome::Pass);
    }

    #[test]
    fn overload_burst_sheds_periodically() {
        let plan = FaultPlan::new(0).with_overload_burst(10, 2);
        let shed: Vec<u64> = (0..30)
            .filter(|&op| plan.decide(op).outcome == FaultOutcome::Overload)
            .collect();
        assert_eq!(shed, vec![0, 1, 10, 11, 20, 21]);
    }

    #[test]
    fn next_advances_and_counts() {
        let plan = FaultPlan::new(1)
            .with_latency(1.0, LatencyFault::Fixed(Duration::from_micros(10)))
            .with_error_rate(1.0);
        for _ in 0..5 {
            plan.next();
        }
        assert_eq!(plan.operations(), 5);
        assert_eq!(plan.injected_latency_ops(), 5);
        assert_eq!(plan.injected_errors(), 5);
        assert!(plan.injected_latency_ns() >= 5 * 10_000);
    }

    #[test]
    fn pareto_latency_stays_in_bounds() {
        let fault = LatencyFault::pareto(Duration::from_millis(1), Duration::from_millis(100), 1.5)
            .unwrap();
        let plan = FaultPlan::new(4).with_latency(1.0, fault);
        for op in 0..1000 {
            let d = plan.decide(op);
            assert!(
                d.extra_latency >= Duration::from_micros(900)
                    && d.extra_latency <= Duration::from_millis(101),
                "latency {:?} out of bounds",
                d.extra_latency
            );
        }
    }

    #[test]
    fn apply_pays_latency() {
        let plan =
            FaultPlan::new(0).with_latency(1.0, LatencyFault::Fixed(Duration::from_millis(3)));
        let start = Instant::now();
        assert_eq!(plan.apply(), FaultOutcome::Pass);
        assert!(start.elapsed() >= Duration::from_millis(3));
    }
}
