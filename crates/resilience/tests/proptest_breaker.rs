//! Property tests for the circuit-breaker state machine and the
//! deterministic retry-backoff schedule.
//!
//! The breaker core is pure — time is an explicit argument — so these
//! properties explore it without sleeping:
//!
//! * all-success streams never open the breaker;
//! * once open, the half-open probe budget is strictly enforced, and an
//!   all-failing probe round always reopens;
//! * the trip predicate is monotone: adding failures to a window never
//!   un-trips it.

use dcperf_resilience::{BreakerConfig, BreakerCore, BreakerState, RetryPolicy};
use proptest::prelude::*;
use std::time::Duration;

fn config_strategy() -> impl Strategy<Value = BreakerConfig> {
    (2usize..64, 1usize..32, 1u32..8, 1u64..10_000).prop_map(
        |(window, min_calls, probes, cooldown_us)| BreakerConfig {
            window,
            min_calls,
            failure_ratio: 0.5,
            cooldown: Duration::from_micros(cooldown_us),
            half_open_probes: probes,
            probe_successes: probes.div_ceil(2),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A breaker fed only successes never leaves `Closed`, whatever the
    /// thresholds and however time advances.
    #[test]
    fn never_opens_on_all_success_stream(
        config in config_strategy(),
        gaps in proptest::collection::vec(0u64..1_000_000, 1..300),
    ) {
        let mut core = BreakerCore::new(config);
        let mut now = 0u64;
        for gap in gaps {
            now += gap;
            let (admitted, transition) = core.allow(now);
            prop_assert!(admitted);
            prop_assert!(transition.is_none());
            prop_assert!(core.record(now, true).is_none());
            prop_assert_eq!(core.state(), BreakerState::Closed);
        }
    }

    /// From `Open`, after the cooldown: exactly `half_open_probes` calls
    /// are admitted before the probe outcomes arrive, and if every probe
    /// fails the breaker is `Open` again (it always reopens once the
    /// probe budget is spent on failures).
    #[test]
    fn reopens_after_failed_probe_budget(
        config in config_strategy(),
        extra_attempts in 0usize..8,
    ) {
        let mut core = BreakerCore::new(config);
        // Trip it: min_calls failures is always >= the 0.5 ratio.
        let trip_calls = config.min_calls.max(1);
        for i in 0..trip_calls {
            core.record(i as u64, false);
        }
        prop_assert_eq!(core.state(), BreakerState::Open);

        let after_cooldown = 1_000_000_000_000u64;
        let mut admitted = 0u32;
        let budget = config.half_open_probes.max(1) as usize;
        for _ in 0..budget + extra_attempts {
            let (ok, _) = core.allow(after_cooldown);
            if ok {
                admitted += 1;
            }
        }
        prop_assert_eq!(admitted, budget as u32, "probe budget must be exact");
        prop_assert_eq!(core.state(), BreakerState::HalfOpen);

        // Every probe fails: the first failure must reopen.
        prop_assert!(core.record(after_cooldown + 1, false).is_some());
        prop_assert_eq!(core.state(), BreakerState::Open);
        // And the reopen restarts the cooldown: immediately after, no
        // call is admitted.
        let (ok, _) = core.allow(after_cooldown + 2);
        prop_assert!(!ok);
    }

    /// The trip predicate is monotone under merged windows: if a window
    /// of `total` outcomes with `failures` failures trips, every window
    /// with the same total and more failures also trips, and merging two
    /// tripping windows still trips.
    #[test]
    fn trip_predicate_is_monotone(
        config in config_strategy(),
        failures_a in 0usize..64,
        total_a in 1usize..64,
        failures_b in 0usize..64,
        total_b in 1usize..64,
    ) {
        let fa = failures_a.min(total_a);
        let fb = failures_b.min(total_b);
        if config.would_trip(fa, total_a) {
            // More failures, same total: still trips.
            for extra in fa..=total_a {
                prop_assert!(config.would_trip(extra, total_a));
            }
            // Merging with another tripping window: still trips.
            if config.would_trip(fb, total_b) {
                prop_assert!(
                    config.would_trip(fa + fb, total_a + total_b),
                    "merged window ({},{}) must trip",
                    fa + fb,
                    total_a + total_b
                );
            }
        }
    }

    /// Backoff schedules are pure functions of the seed: same seed, same
    /// delays; every delay respects the cap.
    #[test]
    fn backoff_schedule_is_deterministic(seed in any::<u64>(), attempts in 2u32..10) {
        let policy = RetryPolicy::new(attempts, Duration::from_millis(5))
            .with_max_backoff(Duration::from_millis(80));
        let a: Vec<Duration> = policy.schedule(seed).collect();
        let b: Vec<Duration> = policy.schedule(seed).collect();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len() as u32, attempts - 1);
        for d in &a {
            prop_assert!(*d <= Duration::from_millis(80));
        }
    }
}

/// The fixed-seed regression pin for the deterministic backoff schedule:
/// if the jitter derivation changes, this fails loudly instead of
/// silently shifting every chaos scenario.
#[test]
fn backoff_schedule_matches_fixed_seed_snapshot() {
    let policy = RetryPolicy::new(5, Duration::from_millis(10)).with_jitter(0.5);
    let micros: Vec<u128> = policy.schedule(0xDC_BEEF).map(|d| d.as_micros()).collect();
    assert_eq!(micros.len(), 4);
    // Delays are jittered downward from 10ms, 20ms, 40ms, 80ms: each
    // must land in [half, full] of its nominal value and the schedule
    // must be reproducible.
    let nominal = [10_000u128, 20_000, 40_000, 80_000];
    for (got, want) in micros.iter().zip(nominal) {
        assert!(
            *got >= want / 2 && *got <= want,
            "delay {got}us outside [{}, {}]",
            want / 2,
            want
        );
    }
    let again: Vec<u128> = policy.schedule(0xDC_BEEF).map(|d| d.as_micros()).collect();
    assert_eq!(micros, again);
}
