//! Record-batch serialization, the "Serialization" tax slice of Figure 12.
//!
//! Models the hot path of Thrift/row-format serializers: typed fields,
//! varint integers, length-prefixed strings, batched rows. SparkBench uses
//! the same codec for shuffle spills, so the tax is paid where production
//! pays it.

/// A typed field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// A signed integer (zigzag varint).
    I64(i64),
    /// A double.
    F64(f64),
    /// A UTF-8 string.
    Str(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
}

/// One record: an ordered list of field values. The schema (field names
/// and types) is carried out of band, as in columnar formats.
pub type Record = Vec<FieldValue>;

/// Errors from decoding a record batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SerializeError {
    /// Input ended early.
    Truncated,
    /// Unknown field type tag.
    BadTag(u8),
    /// Invalid UTF-8 in a string field.
    BadUtf8,
    /// Varint malformed.
    BadVarint,
}

impl std::fmt::Display for SerializeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerializeError::Truncated => write!(f, "record batch truncated"),
            SerializeError::BadTag(t) => write!(f, "unknown field tag {t}"),
            SerializeError::BadUtf8 => write!(f, "invalid utf-8 in string field"),
            SerializeError::BadVarint => write!(f, "malformed varint"),
        }
    }
}

impl std::error::Error for SerializeError {}

const TAG_I64: u8 = 1;
const TAG_F64: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_BYTES: u8 = 4;

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, SerializeError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos).ok_or(SerializeError::Truncated)?;
        *pos += 1;
        if shift >= 63 && b > 1 {
            return Err(SerializeError::BadVarint);
        }
        v |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(SerializeError::BadVarint);
        }
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Serializes a batch of records into `out`, returning bytes written.
pub fn encode_batch(records: &[Record], out: &mut Vec<u8>) -> usize {
    let before = out.len();
    put_varint(out, records.len() as u64);
    for record in records {
        put_varint(out, record.len() as u64);
        for field in record {
            match field {
                FieldValue::I64(v) => {
                    out.push(TAG_I64);
                    put_varint(out, zigzag(*v));
                }
                FieldValue::F64(v) => {
                    out.push(TAG_F64);
                    out.extend_from_slice(&v.to_le_bytes());
                }
                FieldValue::Str(s) => {
                    out.push(TAG_STR);
                    put_varint(out, s.len() as u64);
                    out.extend_from_slice(s.as_bytes());
                }
                FieldValue::Bytes(b) => {
                    out.push(TAG_BYTES);
                    put_varint(out, b.len() as u64);
                    out.extend_from_slice(b);
                }
            }
        }
    }
    out.len() - before
}

/// Decodes a batch written by [`encode_batch`], returning the records and
/// the number of bytes consumed.
///
/// # Errors
///
/// Returns a [`SerializeError`] on malformed input.
pub fn decode_batch(buf: &[u8]) -> Result<(Vec<Record>, usize), SerializeError> {
    let mut pos = 0usize;
    let n_records = get_varint(buf, &mut pos)? as usize;
    if n_records > buf.len() {
        return Err(SerializeError::Truncated);
    }
    let mut records = Vec::with_capacity(n_records.min(4096));
    for _ in 0..n_records {
        let n_fields = get_varint(buf, &mut pos)? as usize;
        if n_fields > buf.len() {
            return Err(SerializeError::Truncated);
        }
        let mut record = Vec::with_capacity(n_fields.min(256));
        for _ in 0..n_fields {
            let tag = *buf.get(pos).ok_or(SerializeError::Truncated)?;
            pos += 1;
            let field = match tag {
                TAG_I64 => FieldValue::I64(unzigzag(get_varint(buf, &mut pos)?)),
                TAG_F64 => {
                    let bytes = buf.get(pos..pos + 8).ok_or(SerializeError::Truncated)?;
                    pos += 8;
                    FieldValue::F64(f64::from_le_bytes(bytes.try_into().expect("8")))
                }
                TAG_STR => {
                    let len = get_varint(buf, &mut pos)? as usize;
                    let bytes = buf
                        .get(pos..pos.checked_add(len).ok_or(SerializeError::Truncated)?)
                        .ok_or(SerializeError::Truncated)?;
                    pos += len;
                    FieldValue::Str(
                        std::str::from_utf8(bytes)
                            .map_err(|_| SerializeError::BadUtf8)?
                            .to_owned(),
                    )
                }
                TAG_BYTES => {
                    let len = get_varint(buf, &mut pos)? as usize;
                    let bytes = buf
                        .get(pos..pos.checked_add(len).ok_or(SerializeError::Truncated)?)
                        .ok_or(SerializeError::Truncated)?;
                    pos += len;
                    FieldValue::Bytes(bytes.to_vec())
                }
                other => return Err(SerializeError::BadTag(other)),
            };
            record.push(field);
        }
        records.push(record);
    }
    Ok((records, pos))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        vec![
            vec![
                FieldValue::I64(-42),
                FieldValue::F64(3.25),
                FieldValue::Str("user_9".into()),
                FieldValue::Bytes(vec![1, 2, 3]),
            ],
            vec![FieldValue::I64(i64::MAX)],
            vec![],
            vec![FieldValue::Str(String::new())],
        ]
    }

    #[test]
    fn batch_round_trips() {
        let records = sample_records();
        let mut buf = Vec::new();
        let written = encode_batch(&records, &mut buf);
        assert_eq!(written, buf.len());
        let (decoded, consumed) = decode_batch(&buf).unwrap();
        assert_eq!(decoded, records);
        assert_eq!(consumed, buf.len());
    }

    #[test]
    fn empty_batch_round_trips() {
        let mut buf = Vec::new();
        encode_batch(&[], &mut buf);
        let (decoded, _) = decode_batch(&buf).unwrap();
        assert!(decoded.is_empty());
    }

    #[test]
    fn concatenated_batches_decode_sequentially() {
        let mut buf = Vec::new();
        encode_batch(&sample_records(), &mut buf);
        let first_len = buf.len();
        encode_batch(&[vec![FieldValue::I64(7)]], &mut buf);
        let (a, consumed) = decode_batch(&buf).unwrap();
        assert_eq!(consumed, first_len);
        assert_eq!(a, sample_records());
        let (b, _) = decode_batch(&buf[consumed..]).unwrap();
        assert_eq!(b, vec![vec![FieldValue::I64(7)]]);
    }

    #[test]
    fn truncation_is_an_error_never_a_panic() {
        let mut buf = Vec::new();
        encode_batch(&sample_records(), &mut buf);
        for cut in 0..buf.len() {
            let _ = decode_batch(&buf[..cut]);
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 1); // 1 record
        put_varint(&mut buf, 1); // 1 field
        buf.push(0xEE); // bogus tag
        assert_eq!(decode_batch(&buf), Err(SerializeError::BadTag(0xEE)));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 1);
        put_varint(&mut buf, 1);
        buf.push(TAG_STR);
        put_varint(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(decode_batch(&buf), Err(SerializeError::BadUtf8));
    }

    #[test]
    fn integers_use_zigzag_compactness() {
        let mut small = Vec::new();
        encode_batch(&[vec![FieldValue::I64(-1)]], &mut small);
        let mut large = Vec::new();
        encode_batch(&[vec![FieldValue::I64(i64::MIN)]], &mut large);
        assert!(small.len() < large.len());
    }
}
