//! Datacenter-tax libraries: compression, hashing, crypto, serialization,
//! memory and concurrency kernels — all implemented from scratch.
//!
//! The paper models "common library functions used by datacenter
//! applications, such as those for RPC, encryption, hashing, serialization,
//! concurrency management, and memory operations" as a set of
//! microbenchmarks, because this *datacenter tax* consumes 18–82% of CPU
//! cycles across Meta's fleet (§3.2). This crate is both:
//!
//! 1. The tax *implementation* the full benchmarks call on their hot paths
//!    (FeedSim compresses and encrypts responses, TaoBench hashes keys,
//!    SparkBench spills compressed rows), and
//! 2. The kernel registry behind the `tax_micro` benchmark, which measures
//!    each function in isolation exactly as DCPerf's folly_bench does.
//!
//! Modules:
//!
//! * [`compress`] — an LZ77-class byte compressor ("szip") and an RLE
//!   codec, with one-shot and streaming round-trip APIs.
//! * [`hash`] — FNV-1a, a 64-bit mixing hash (`dcx64`), and table-driven
//!   CRC-32.
//! * [`crypto`] — SHA-256, HMAC-SHA-256, and the ChaCha20 stream cipher.
//! * [`serialize`] — varint-based record batch serialization.
//! * [`memops`] — sequential/strided/scatter memory kernels.
//! * [`concurrency`] — lock, atomic, and queue contention kernels.
//! * [`registry`] — the named-kernel registry for the microbenchmark
//!   harness.
//!
//! # Examples
//!
//! ```
//! use dcperf_tax::compress;
//!
//! let data = b"the quick brown fox jumps over the lazy dog, the quick brown fox";
//! let packed = compress::lz_compress(data);
//! assert_eq!(compress::lz_decompress(&packed)?, data);
//! # Ok::<(), dcperf_tax::compress::CompressError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compress;
pub mod concurrency;
pub mod crypto;
pub mod hash;
pub mod memops;
pub mod registry;
pub mod serialize;

pub use registry::{Microbench, Registry};
