//! Concurrency-management kernels: the "ThreadManager" tax slice.
//!
//! Production thread managers pay for lock handoffs, contended atomics,
//! and queue transfers. Each kernel here runs a fixed amount of work across
//! `threads` workers and returns the observed operation count so callers
//! can compute ops/sec, and so scalability collapse (e.g. a global counter
//! at high core counts, §5.3 of the paper) is directly measurable.

use crossbeam::channel::bounded;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Increments a single mutex-protected counter from `threads` workers,
/// `per_thread` times each. Returns the final count.
///
/// This is the worst-case shared-state kernel: all workers serialize on
/// one lock, exactly the `tg->load_avg` pathology of §5.3.
pub fn contended_mutex_counter(threads: usize, per_thread: u64) -> u64 {
    let counter = Arc::new(Mutex::new(0u64));
    let mut handles = Vec::new();
    for _ in 0..threads.max(1) {
        let counter = Arc::clone(&counter);
        handles.push(std::thread::spawn(move || {
            for _ in 0..per_thread {
                *counter.lock() += 1;
            }
        }));
    }
    for h in handles {
        h.join().expect("counter worker panicked");
    }
    let v = *counter.lock();
    v
}

/// The same increment load against a relaxed atomic — the "ratelimited /
/// distributed counter" fix: cache-line ping-pong but no lock handoff.
pub fn contended_atomic_counter(threads: usize, per_thread: u64) -> u64 {
    let counter = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for _ in 0..threads.max(1) {
        let counter = Arc::clone(&counter);
        handles.push(std::thread::spawn(move || {
            for _ in 0..per_thread {
                counter.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    for h in handles {
        h.join().expect("counter worker panicked");
    }
    counter.load(Ordering::Relaxed)
}

/// Per-thread sharded counters folded at the end — the scalable design.
pub fn sharded_counter(threads: usize, per_thread: u64) -> u64 {
    let shards: Vec<Arc<AtomicU64>> = (0..threads.max(1))
        .map(|_| Arc::new(AtomicU64::new(0)))
        .collect();
    let mut handles = Vec::new();
    for shard in &shards {
        let shard = Arc::clone(shard);
        handles.push(std::thread::spawn(move || {
            for _ in 0..per_thread {
                shard.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    for h in handles {
        h.join().expect("counter worker panicked");
    }
    shards.iter().map(|s| s.load(Ordering::Relaxed)).sum()
}

/// Streams `messages` items from `producers` producer threads to an equal
/// number of consumers over a bounded MPMC channel. Returns the number of
/// items received.
pub fn queue_throughput(producers: usize, messages: u64) -> u64 {
    let producers = producers.max(1);
    let (tx, rx) = bounded::<u64>(1024);
    let received = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    for p in 0..producers {
        let tx = tx.clone();
        let share = messages / producers as u64
            + if (p as u64) < messages % producers as u64 {
                1
            } else {
                0
            };
        handles.push(std::thread::spawn(move || {
            for i in 0..share {
                tx.send(i).expect("consumer hung up early");
            }
        }));
    }
    drop(tx);
    for _ in 0..producers {
        let rx = rx.clone();
        let received = Arc::clone(&received);
        handles.push(std::thread::spawn(move || {
            while rx.recv().is_ok() {
                received.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    for h in handles {
        h.join().expect("queue worker panicked");
    }
    received.load(Ordering::Relaxed)
}

/// Lock-handoff ping-pong between two threads `rounds` times; returns the
/// number of completed handoffs. Measures wake-up latency cost.
pub fn lock_handoff(rounds: u64) -> u64 {
    let (tx_a, rx_a) = bounded::<u64>(1);
    let (tx_b, rx_b) = bounded::<u64>(1);
    let ponger = std::thread::spawn(move || {
        let mut count = 0u64;
        while let Ok(v) = rx_a.recv() {
            if tx_b.send(v + 1).is_err() {
                break;
            }
            count += 1;
        }
        count
    });
    let mut completed = 0u64;
    for i in 0..rounds {
        if tx_a.send(i).is_err() {
            break;
        }
        if rx_b.recv().is_err() {
            break;
        }
        completed += 1;
    }
    drop(tx_a);
    let _ = ponger.join();
    completed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_counter_is_exact() {
        assert_eq!(contended_mutex_counter(4, 10_000), 40_000);
    }

    #[test]
    fn atomic_counter_is_exact() {
        assert_eq!(contended_atomic_counter(4, 10_000), 40_000);
    }

    #[test]
    fn sharded_counter_is_exact() {
        assert_eq!(sharded_counter(4, 10_000), 40_000);
    }

    #[test]
    fn counters_handle_zero_threads() {
        assert_eq!(contended_mutex_counter(0, 10), 10);
        assert_eq!(contended_atomic_counter(0, 10), 10);
        assert_eq!(sharded_counter(0, 10), 10);
    }

    #[test]
    fn queue_delivers_every_message() {
        assert_eq!(queue_throughput(3, 10_000), 10_000);
        assert_eq!(queue_throughput(1, 0), 0);
        // Uneven split.
        assert_eq!(queue_throughput(3, 10), 10);
    }

    #[test]
    fn lock_handoff_completes_all_rounds() {
        assert_eq!(lock_handoff(1000), 1000);
        assert_eq!(lock_handoff(0), 0);
    }
}
