//! Memory-operation kernels: the "Memory" tax slice.
//!
//! Production services spend measurable cycles in `memcpy`/`memmove`/
//! `memset` and in pointer-chasing access patterns. These kernels exercise
//! sequential copy, strided copy, random gather, and pointer chase over
//! caller-sized buffers, returning checksums so the optimizer cannot elide
//! the work.

use dcperf_util::{Rng, SplitMix64};

/// Sequentially copies `src` into `dst` `iters` times.
///
/// Returns a checksum of the final destination.
///
/// # Panics
///
/// Panics if the buffers differ in length.
pub fn copy_sequential(src: &[u8], dst: &mut [u8], iters: usize) -> u64 {
    assert_eq!(src.len(), dst.len(), "copy buffers must match in length");
    for _ in 0..iters {
        dst.copy_from_slice(src);
    }
    checksum(dst)
}

/// Copies with a stride: touches one cache line out of every `stride`,
/// defeating hardware prefetch the way sparse row access does.
///
/// # Panics
///
/// Panics if the buffers differ in length or `stride` is zero.
pub fn copy_strided(src: &[u8], dst: &mut [u8], stride: usize, iters: usize) -> u64 {
    assert_eq!(src.len(), dst.len(), "copy buffers must match in length");
    assert!(stride > 0, "stride must be positive");
    for _ in 0..iters {
        let mut i = 0;
        while i < src.len() {
            dst[i] = src[i];
            i += stride;
        }
    }
    checksum(dst)
}

/// Gathers `count` random bytes from `src` (seeded, reproducible).
pub fn gather_random(src: &[u8], count: usize, seed: u64) -> u64 {
    if src.is_empty() {
        return 0;
    }
    let mut rng = SplitMix64::new(seed);
    let mut acc = 0u64;
    for _ in 0..count {
        let idx = (rng.next_u64() % src.len() as u64) as usize;
        acc = acc.wrapping_add(src[idx] as u64).rotate_left(7);
    }
    acc
}

/// Builds a random cyclic permutation and chases it `steps` times —
/// serialized cache misses, the classic latency-bound kernel.
pub fn pointer_chase(slots: usize, steps: usize, seed: u64) -> u64 {
    if slots == 0 {
        return 0;
    }
    // Sattolo's algorithm: a single cycle visiting every slot.
    let mut next: Vec<u32> = (0..slots as u32).collect();
    let mut rng = SplitMix64::new(seed);
    for i in (1..slots).rev() {
        let j = (rng.next_u64() % i as u64) as usize;
        next.swap(i, j);
    }
    let mut pos = 0u32;
    let mut acc = 0u64;
    for _ in 0..steps {
        pos = next[pos as usize];
        acc = acc.wrapping_add(pos as u64);
    }
    acc
}

/// Fills `dst` with `value`, `iters` times, returning a checksum.
pub fn fill(dst: &mut [u8], value: u8, iters: usize) -> u64 {
    for _ in 0..iters {
        dst.fill(value);
        // Perturb one byte so successive fills are not trivially dead.
        if let Some(first) = dst.first_mut() {
            *first = first.wrapping_add(1);
        }
    }
    checksum(dst)
}

fn checksum(bytes: &[u8]) -> u64 {
    let mut acc = 0u64;
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        acc = acc.wrapping_add(u64::from_le_bytes(word)).rotate_left(1);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_sequential_copies() {
        let src: Vec<u8> = (0..=255).collect();
        let mut dst = vec![0u8; 256];
        let sum = copy_sequential(&src, &mut dst, 3);
        assert_eq!(src, dst);
        assert_ne!(sum, 0);
    }

    #[test]
    #[should_panic(expected = "match in length")]
    fn copy_sequential_rejects_mismatch() {
        let mut dst = vec![0u8; 3];
        let _ = copy_sequential(&[1, 2], &mut dst, 1);
    }

    #[test]
    fn copy_strided_touches_only_stride_positions() {
        let src = vec![9u8; 64];
        let mut dst = vec![0u8; 64];
        copy_strided(&src, &mut dst, 16, 1);
        for (i, &b) in dst.iter().enumerate() {
            if i % 16 == 0 {
                assert_eq!(b, 9, "index {i}");
            } else {
                assert_eq!(b, 0, "index {i}");
            }
        }
    }

    #[test]
    fn gather_is_deterministic_per_seed() {
        let src: Vec<u8> = (0..200).map(|i| (i * 3) as u8).collect();
        assert_eq!(gather_random(&src, 1000, 5), gather_random(&src, 1000, 5));
        assert_ne!(gather_random(&src, 1000, 5), gather_random(&src, 1000, 6));
        assert_eq!(gather_random(&[], 100, 1), 0);
    }

    #[test]
    fn pointer_chase_visits_whole_cycle() {
        // With `slots` steps, a single cycle returns to the start; the
        // accumulated sum must cover every slot exactly once.
        let slots = 64usize;
        let acc = pointer_chase(slots, slots, 3);
        // Sum of all positions 0..slots, each visited once.
        assert_eq!(acc, (0..slots as u64).sum::<u64>());
    }

    #[test]
    fn pointer_chase_zero_slots() {
        assert_eq!(pointer_chase(0, 100, 1), 0);
    }

    #[test]
    fn fill_fills() {
        let mut dst = vec![0u8; 100];
        fill(&mut dst, 0xAB, 2);
        assert!(dst[1..].iter().all(|&b| b == 0xAB));
    }

    #[test]
    fn checksum_detects_changes() {
        let a = checksum(b"hello world!");
        let b = checksum(b"hello world?");
        assert_ne!(a, b);
    }
}
