//! Non-cryptographic hashing kernels: FNV-1a, a 64-bit block-mixing hash
//! (`dcx64`), and table-driven CRC-32.
//!
//! Hashing is one of the paper's named tax categories (Figure 12 has an
//! explicit "Hashing" slice). These three span the instruction-mix range
//! of production hashes: byte-serial multiply (FNV), wide block mixing
//! with rotates (xxHash-style), and table lookups (CRC).

/// FNV-1a over `bytes` (64-bit).
///
/// # Examples
///
/// ```
/// use dcperf_tax::hash::fnv1a;
///
/// assert_ne!(fnv1a(b"key1"), fnv1a(b"key2"));
/// assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
/// ```
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

const DCX_PRIME_1: u64 = 0x9E37_79B1_85EB_CA87;
const DCX_PRIME_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const DCX_PRIME_3: u64 = 0x1656_67B1_9E37_79F9;

/// A 64-bit block hash in the xxHash family: processes 8-byte lanes with
/// multiply-rotate mixing, then avalanches the tail.
///
/// Seeded, so independent tables can use independent hash streams.
pub fn dcx64(bytes: &[u8], seed: u64) -> u64 {
    let mut h = seed
        .wrapping_add(DCX_PRIME_3)
        .wrapping_add(bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lane = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        h ^= lane
            .wrapping_mul(DCX_PRIME_1)
            .rotate_left(31)
            .wrapping_mul(DCX_PRIME_2);
        h = h
            .rotate_left(27)
            .wrapping_mul(DCX_PRIME_1)
            .wrapping_add(DCX_PRIME_3);
    }
    for &b in chunks.remainder() {
        h ^= (b as u64).wrapping_mul(DCX_PRIME_3);
        h = h.rotate_left(11).wrapping_mul(DCX_PRIME_1);
    }
    // Final avalanche.
    h ^= h >> 33;
    h = h.wrapping_mul(DCX_PRIME_2);
    h ^= h >> 29;
    h = h.wrapping_mul(DCX_PRIME_3);
    h ^ (h >> 32)
}

/// The CRC-32 (IEEE 802.3) lookup table, built at first use.
fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    })
}

/// CRC-32 (IEEE) of `bytes`.
///
/// # Examples
///
/// ```
/// use dcperf_tax::hash::crc32;
///
/// // Standard check value for "123456789".
/// assert_eq!(crc32(b"123456789"), 0xCBF43926);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_known_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414FA339
        );
    }

    #[test]
    fn dcx64_is_deterministic_and_seed_sensitive() {
        let data = b"some moderately long input for the block hash";
        assert_eq!(dcx64(data, 1), dcx64(data, 1));
        assert_ne!(dcx64(data, 1), dcx64(data, 2));
    }

    #[test]
    fn dcx64_length_extension_differs() {
        assert_ne!(dcx64(b"abc", 0), dcx64(b"abc\0", 0));
        assert_ne!(dcx64(b"", 0), dcx64(b"\0", 0));
    }

    #[test]
    fn dcx64_avalanche_on_single_bit() {
        let a = dcx64(b"helloworld000000", 0);
        let b = dcx64(b"helloworld000001", 0);
        let differing = (a ^ b).count_ones();
        assert!(
            differing > 16,
            "poor avalanche: only {differing} bits flipped"
        );
    }

    #[test]
    fn dcx64_distributes_over_buckets() {
        let buckets = 64usize;
        let mut counts = vec![0u32; buckets];
        for i in 0..64_000u64 {
            let h = dcx64(&i.to_le_bytes(), 0);
            counts[(h % buckets as u64) as usize] += 1;
        }
        let expect = 64_000 / buckets as u32;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as i64 - expect as i64).abs() < expect as i64 / 4,
                "bucket {i} has {c}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn hashes_handle_all_lengths() {
        let data: Vec<u8> = (0..=255u8).collect();
        for len in 0..64 {
            let _ = fnv1a(&data[..len]);
            let _ = dcx64(&data[..len], 7);
            let _ = crc32(&data[..len]);
        }
    }
}
