//! Byte-oriented compression: an LZ77-class codec ("szip") and RLE.
//!
//! The LZ codec follows the Snappy/LZ4 family that dominates datacenter
//! compression tax: greedy parsing, a hash-chain match finder over a 64 KiB
//! window, minimum match length 4, varint-coded token stream. It is not
//! meant to beat zstd — it is meant to *spend cycles the way production
//! compression does*: hashing 4-byte windows, chasing chains, and copying
//! overlapping runs.

const WINDOW: usize = 64 << 10;
const MIN_MATCH: usize = 4;
const MAX_CHAIN: usize = 16;
const HASH_BITS: u32 = 15;

/// Errors from decompression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// Input ended before the stream was complete.
    Truncated,
    /// A match referenced data before the start of output.
    BadOffset {
        /// The offending offset.
        offset: usize,
        /// Bytes produced so far.
        produced: usize,
    },
    /// The declared output size did not match what decoding produced.
    LengthMismatch {
        /// Declared size.
        expected: usize,
        /// Actual size.
        actual: usize,
    },
    /// A varint in the stream was malformed.
    BadVarint,
    /// The declared output size exceeds the decoder's sanity limit.
    TooLarge {
        /// Declared size.
        expected: usize,
        /// The decoder's limit.
        limit: usize,
    },
}

/// Sanity cap on declared decompressed size. A corrupt or adversarial
/// header must produce an error, not an allocation abort or an
/// effectively unbounded decode loop.
pub const MAX_DECODED_LEN: usize = 1 << 28; // 256 MiB

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::Truncated => write!(f, "compressed stream truncated"),
            CompressError::BadOffset { offset, produced } => {
                write!(f, "match offset {offset} exceeds produced bytes {produced}")
            }
            CompressError::LengthMismatch { expected, actual } => {
                write!(f, "declared size {expected} but produced {actual}")
            }
            CompressError::BadVarint => write!(f, "malformed varint"),
            CompressError::TooLarge { expected, limit } => {
                write!(f, "declared size {expected} exceeds decode limit {limit}")
            }
        }
    }
}

impl std::error::Error for CompressError {}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, CompressError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos).ok_or(CompressError::Truncated)?;
        *pos += 1;
        if shift >= 63 && b > 1 {
            return Err(CompressError::BadVarint);
        }
        v |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(CompressError::BadVarint);
        }
    }
}

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    ((v.wrapping_mul(0x9E37_79B1)) >> (32 - HASH_BITS)) as usize
}

/// Compresses `input` with the szip LZ77 codec.
///
/// Output layout: `[varint uncompressed_len]` followed by tokens of the
/// form `[varint lit_len][literals][varint match_code]` where a match code
/// of 0 terminates the stream and `code > 0` encodes a match of
/// `code + MIN_MATCH - 1` bytes followed by `[varint offset]`.
pub fn lz_compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    write_varint(&mut out, input.len() as u64);

    // Hash table: bucket -> most recent position; chain: pos -> previous
    // pos with the same hash.
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut chain = vec![usize::MAX; input.len()];

    let mut lit_start = 0usize;
    let mut i = 0usize;
    while i + MIN_MATCH <= input.len() {
        let h = hash4(&input[i..]);
        let mut candidate = head[h];
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        let mut depth = 0usize;
        while candidate != usize::MAX && depth < MAX_CHAIN {
            let off = i - candidate;
            if off > WINDOW {
                break;
            }
            // Extend the match.
            let max = input.len() - i;
            let mut len = 0usize;
            while len < max && input[candidate + len] == input[i + len] {
                len += 1;
            }
            if len > best_len {
                best_len = len;
                best_off = off;
            }
            candidate = chain[candidate];
            depth += 1;
        }

        if best_len >= MIN_MATCH {
            // Emit pending literals, then the match token.
            let lits = &input[lit_start..i];
            write_varint(&mut out, lits.len() as u64);
            out.extend_from_slice(lits);
            write_varint(&mut out, (best_len - MIN_MATCH + 1) as u64);
            write_varint(&mut out, best_off as u64);

            // Index every position inside the match (up to the last
            // hashable position), then skip past the match body.
            let match_end = i + best_len;
            let idx_end = match_end.min(input.len() - MIN_MATCH + 1);
            let mut j = i;
            while j < idx_end {
                let h = hash4(&input[j..]);
                chain[j] = head[h];
                head[h] = j;
                j += 1;
            }
            i = match_end;
            lit_start = i;
        } else {
            chain[i] = head[h];
            head[h] = i;
            i += 1;
        }
    }

    // Trailing literals + terminator.
    let lits = &input[lit_start..];
    write_varint(&mut out, lits.len() as u64);
    out.extend_from_slice(lits);
    write_varint(&mut out, 0);
    out
}

/// Decompresses an szip stream produced by [`lz_compress`].
///
/// # Errors
///
/// Returns a [`CompressError`] on any malformed input; never panics and
/// never reads out of bounds.
pub fn lz_decompress(input: &[u8]) -> Result<Vec<u8>, CompressError> {
    let mut pos = 0usize;
    let expected = read_varint(input, &mut pos)? as usize;
    if expected > MAX_DECODED_LEN {
        return Err(CompressError::TooLarge {
            expected,
            limit: MAX_DECODED_LEN,
        });
    }
    // Cap pre-allocation: a corrupt header must not allocate unbounded.
    let mut out = Vec::with_capacity(expected.min(16 << 20));
    loop {
        let lit_len = read_varint(input, &mut pos)? as usize;
        if lit_len > input.len() - pos {
            return Err(CompressError::Truncated);
        }
        out.extend_from_slice(&input[pos..pos + lit_len]);
        pos += lit_len;

        let code = read_varint(input, &mut pos)? as usize;
        if code == 0 {
            break;
        }
        let match_len = code + MIN_MATCH - 1;
        // A match that overshoots the declared size is corrupt; checking
        // here (not after the loop) bounds both memory and time.
        if match_len > expected.saturating_sub(out.len()) {
            return Err(CompressError::LengthMismatch {
                expected,
                actual: out.len().saturating_add(match_len),
            });
        }
        let offset = read_varint(input, &mut pos)? as usize;
        if offset == 0 || offset > out.len() {
            return Err(CompressError::BadOffset {
                offset,
                produced: out.len(),
            });
        }
        // Overlapping copy, byte at a time (offset may be < match_len).
        let start = out.len() - offset;
        for k in 0..match_len {
            let b = out[start + k];
            out.push(b);
        }
    }
    if out.len() != expected {
        return Err(CompressError::LengthMismatch {
            expected,
            actual: out.len(),
        });
    }
    Ok(out)
}

/// Run-length encodes `input`: tokens are `[varint (len<<1 | is_run)]`
/// followed by one byte (run) or `len` bytes (literal block).
pub fn rle_compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 4 + 16);
    write_varint(&mut out, input.len() as u64);
    let mut i = 0usize;
    let mut lit_start = 0usize;
    while i < input.len() {
        // Measure the run at i.
        let b = input[i];
        let mut run = 1usize;
        while i + run < input.len() && input[i + run] == b {
            run += 1;
        }
        if run >= 4 {
            if lit_start < i {
                let lits = &input[lit_start..i];
                write_varint(&mut out, (lits.len() as u64) << 1);
                out.extend_from_slice(lits);
            }
            write_varint(&mut out, ((run as u64) << 1) | 1);
            out.push(b);
            i += run;
            lit_start = i;
        } else {
            i += run;
        }
    }
    if lit_start < input.len() {
        let lits = &input[lit_start..];
        write_varint(&mut out, (lits.len() as u64) << 1);
        out.extend_from_slice(lits);
    }
    out
}

/// Decodes an RLE stream produced by [`rle_compress`].
///
/// # Errors
///
/// Returns a [`CompressError`] on malformed input.
pub fn rle_decompress(input: &[u8]) -> Result<Vec<u8>, CompressError> {
    let mut pos = 0usize;
    let expected = read_varint(input, &mut pos)? as usize;
    if expected > MAX_DECODED_LEN {
        return Err(CompressError::TooLarge {
            expected,
            limit: MAX_DECODED_LEN,
        });
    }
    let mut out = Vec::with_capacity(expected.min(16 << 20));
    while out.len() < expected {
        let token = read_varint(input, &mut pos)?;
        let len = (token >> 1) as usize;
        if len == 0 {
            return Err(CompressError::Truncated);
        }
        // A block that overshoots the declared size is corrupt; checking
        // here (not after the loop) bounds the run-expansion allocation.
        if len > expected - out.len() {
            return Err(CompressError::LengthMismatch {
                expected,
                actual: out.len().saturating_add(len),
            });
        }
        if token & 1 == 1 {
            let b = *input.get(pos).ok_or(CompressError::Truncated)?;
            pos += 1;
            out.extend(std::iter::repeat_n(b, len));
        } else {
            if len > input.len() - pos {
                return Err(CompressError::Truncated);
            }
            out.extend_from_slice(&input[pos..pos + len]);
            pos += len;
        }
    }
    if out.len() != expected {
        return Err(CompressError::LengthMismatch {
            expected,
            actual: out.len(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_lz(data: &[u8]) {
        let packed = lz_compress(data);
        let unpacked = lz_decompress(&packed).unwrap();
        assert_eq!(unpacked, data);
    }

    fn round_trip_rle(data: &[u8]) {
        let packed = rle_compress(data);
        let unpacked = rle_decompress(&packed).unwrap();
        assert_eq!(unpacked, data);
    }

    #[test]
    fn lz_round_trips_edge_cases() {
        round_trip_lz(b"");
        round_trip_lz(b"a");
        round_trip_lz(b"abc");
        round_trip_lz(b"aaaa");
        round_trip_lz(b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaa");
        round_trip_lz(b"abcabcabcabcabcabcabcabc");
        round_trip_lz("héllo wörld héllo wörld".as_bytes());
    }

    #[test]
    fn lz_round_trips_text() {
        let text = "the quick brown fox jumps over the lazy dog. "
            .repeat(100)
            .into_bytes();
        let packed = lz_compress(&text);
        assert!(
            packed.len() < text.len() / 3,
            "repetitive text should compress well: {} -> {}",
            text.len(),
            packed.len()
        );
        assert_eq!(lz_decompress(&packed).unwrap(), text);
    }

    #[test]
    fn lz_round_trips_pseudo_random() {
        let mut data = Vec::with_capacity(50_000);
        let mut x = 12345u64;
        for _ in 0..50_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            data.push((x >> 33) as u8);
        }
        round_trip_lz(&data);
    }

    #[test]
    fn lz_round_trips_long_range_repeats() {
        let mut data = Vec::new();
        let phrase: Vec<u8> = (0u8..=255).collect();
        for _ in 0..300 {
            data.extend_from_slice(&phrase);
        }
        let packed = lz_compress(&data);
        assert!(packed.len() < data.len() / 4);
        assert_eq!(lz_decompress(&packed).unwrap(), data);
    }

    #[test]
    fn lz_incompressible_expands_bounded() {
        let mut data = Vec::with_capacity(10_000);
        let mut x = 99u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(7);
            data.push((x >> 40) as u8);
        }
        let packed = lz_compress(&data);
        assert!(packed.len() < data.len() + data.len() / 8 + 32);
        round_trip_lz(&data);
    }

    #[test]
    fn lz_rejects_truncated_streams() {
        let packed = lz_compress(b"hello hello hello hello hello");
        for cut in 0..packed.len() {
            assert!(
                lz_decompress(&packed[..cut]).is_err(),
                "cut={cut} should fail"
            );
        }
    }

    #[test]
    fn lz_rejects_bad_offset() {
        // Handcraft: declared len 8, 0 literals, match code 5 (len 8),
        // offset 10 with nothing produced.
        let mut bad = Vec::new();
        write_varint(&mut bad, 8);
        write_varint(&mut bad, 0);
        write_varint(&mut bad, 5);
        write_varint(&mut bad, 10);
        assert!(matches!(
            lz_decompress(&bad),
            Err(CompressError::BadOffset { .. })
        ));
    }

    #[test]
    fn lz_rejects_length_mismatch() {
        let mut bad = Vec::new();
        write_varint(&mut bad, 100); // claims 100 bytes
        write_varint(&mut bad, 3); // 3 literals
        bad.extend_from_slice(b"abc");
        write_varint(&mut bad, 0); // end
        assert!(matches!(
            lz_decompress(&bad),
            Err(CompressError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn rle_round_trips() {
        round_trip_rle(b"");
        round_trip_rle(b"abc");
        round_trip_rle(b"aaaaaaaabbbbbbbbcccccccc");
        round_trip_rle(b"abababababab");
        round_trip_rle(&[0u8; 10_000]);
        let mixed: Vec<u8> = (0..5000u32)
            .flat_map(|i| {
                if i % 7 == 0 {
                    vec![9u8; 20]
                } else {
                    vec![(i % 251) as u8]
                }
            })
            .collect();
        round_trip_rle(&mixed);
    }

    #[test]
    fn rle_compresses_runs() {
        let data = vec![7u8; 100_000];
        let packed = rle_compress(&data);
        assert!(
            packed.len() < 32,
            "all-run input should be tiny: {}",
            packed.len()
        );
    }

    #[test]
    fn rle_rejects_truncation() {
        let packed = rle_compress(b"aaaaaaaaaabbbbbbbbbbx");
        for cut in 0..packed.len() {
            assert!(rle_decompress(&packed[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn compression_ratio_on_structured_content() {
        // Backing-store-like content: runs with breaks.
        let mut data = Vec::new();
        let mut x = 5u64;
        while data.len() < 20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(11);
            let run = (x % 24 + 4) as usize;
            let byte = ((x >> 32) % 64 + 32) as u8;
            data.extend(std::iter::repeat_n(byte, run));
        }
        let lz = lz_compress(&data);
        let rle = rle_compress(&data);
        assert!(
            lz.len() < data.len() / 2,
            "lz: {} / {}",
            lz.len(),
            data.len()
        );
        assert!(
            rle.len() < data.len() / 2,
            "rle: {} / {}",
            rle.len(),
            data.len()
        );
        assert_eq!(lz_decompress(&lz).unwrap(), data);
        assert_eq!(rle_decompress(&rle).unwrap(), data);
    }
}
