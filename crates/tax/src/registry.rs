//! The named-kernel registry behind the datacenter-tax microbenchmark.
//!
//! "When performance bottlenecks are identified in these functions during
//! full-workload benchmarking, we use these microbenchmarks to pinpoint
//! the problem and guide targeted optimizations" (§3.2). Each
//! [`Microbench`] is a named kernel with a self-contained workload; the
//! harness calls [`Microbench::run`] with an iteration count and gets back
//! the number of abstract operations performed, from which it derives
//! ops/sec.

use crate::{compress, concurrency, crypto, hash, memops, serialize};
use dcperf_util::{Rng, SplitMix64};

/// Tax categories, matching the slices of Figure 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaxCategory {
    /// RPC and serialization.
    Serialization,
    /// Compression and decompression.
    Compression,
    /// Cryptographic hashing/ciphering.
    Crypto,
    /// Non-cryptographic hashing.
    Hashing,
    /// Memory copies and fills.
    Memory,
    /// Locks, atomics, queues.
    ThreadManager,
}

impl std::fmt::Display for TaxCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TaxCategory::Serialization => "serialization",
            TaxCategory::Compression => "compression",
            TaxCategory::Crypto => "crypto",
            TaxCategory::Hashing => "hashing",
            TaxCategory::Memory => "memory",
            TaxCategory::ThreadManager => "thread-manager",
        };
        f.write_str(s)
    }
}

/// A single named kernel.
pub struct Microbench {
    name: &'static str,
    category: TaxCategory,
    runner: Box<dyn Fn(u64) -> u64 + Send + Sync>,
}

impl std::fmt::Debug for Microbench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Microbench")
            .field("name", &self.name)
            .field("category", &self.category)
            .finish()
    }
}

impl Microbench {
    /// Kernel name, e.g. `"compress/lz"`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Tax category the kernel belongs to.
    pub fn category(&self) -> TaxCategory {
        self.category
    }

    /// Runs `iters` iterations, returning abstract operations performed
    /// (bytes processed or calls completed, kernel-defined but stable).
    pub fn run(&self, iters: u64) -> u64 {
        (self.runner)(iters)
    }
}

/// The registry of all built-in kernels.
#[derive(Debug, Default)]
pub struct Registry {
    benches: Vec<Microbench>,
}

impl Registry {
    /// Builds the registry with every built-in kernel.
    pub fn with_builtin() -> Self {
        let mut r = Self {
            benches: Vec::new(),
        };
        r.register_builtin();
        r
    }

    /// All kernels.
    pub fn iter(&self) -> impl Iterator<Item = &Microbench> {
        self.benches.iter()
    }

    /// Looks up a kernel by name.
    pub fn get(&self, name: &str) -> Option<&Microbench> {
        self.benches.iter().find(|b| b.name == name)
    }

    /// Number of registered kernels.
    pub fn len(&self) -> usize {
        self.benches.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.benches.is_empty()
    }

    fn add(
        &mut self,
        name: &'static str,
        category: TaxCategory,
        runner: impl Fn(u64) -> u64 + Send + Sync + 'static,
    ) {
        self.benches.push(Microbench {
            name,
            category,
            runner: Box::new(runner),
        });
    }

    fn register_builtin(&mut self) {
        // A shared corpus shaped like serialized production objects.
        fn corpus(len: usize, seed: u64) -> Vec<u8> {
            let mut rng = SplitMix64::new(seed);
            let mut data = Vec::with_capacity(len);
            while data.len() < len {
                let run = (rng.next_u64() % 24 + 4) as usize;
                let byte = (rng.next_u64() % 64 + 32) as u8;
                data.extend(std::iter::repeat_n(byte, run.min(len - data.len())));
            }
            data
        }

        self.add("compress/lz", TaxCategory::Compression, |iters| {
            let data = corpus(16 << 10, 1);
            let mut bytes = 0u64;
            for _ in 0..iters {
                let packed = compress::lz_compress(&data);
                bytes += data.len() as u64;
                std::hint::black_box(&packed);
            }
            bytes
        });

        self.add(
            "compress/lz_decompress",
            TaxCategory::Compression,
            |iters| {
                let data = corpus(16 << 10, 2);
                let packed = compress::lz_compress(&data);
                let mut bytes = 0u64;
                for _ in 0..iters {
                    let out = compress::lz_decompress(&packed).expect("own stream decodes");
                    bytes += out.len() as u64;
                    std::hint::black_box(&out);
                }
                bytes
            },
        );

        self.add("compress/rle", TaxCategory::Compression, |iters| {
            let data = corpus(16 << 10, 3);
            let mut bytes = 0u64;
            for _ in 0..iters {
                let packed = compress::rle_compress(&data);
                bytes += data.len() as u64;
                std::hint::black_box(&packed);
            }
            bytes
        });

        self.add("crypto/sha256", TaxCategory::Crypto, |iters| {
            let data = corpus(4 << 10, 4);
            let mut bytes = 0u64;
            for _ in 0..iters {
                let digest = crypto::Sha256::digest(&data);
                bytes += data.len() as u64;
                std::hint::black_box(&digest);
            }
            bytes
        });

        self.add("crypto/hmac", TaxCategory::Crypto, |iters| {
            let data = corpus(1 << 10, 5);
            let mut bytes = 0u64;
            for i in 0..iters {
                let mac = crypto::hmac_sha256(&i.to_le_bytes(), &data);
                bytes += data.len() as u64;
                std::hint::black_box(&mac);
            }
            bytes
        });

        self.add("crypto/chacha20", TaxCategory::Crypto, |iters| {
            let mut data = corpus(8 << 10, 6);
            let key = [0x42u8; 32];
            let nonce = [0x24u8; 12];
            let mut bytes = 0u64;
            for i in 0..iters {
                crypto::ChaCha20::new(&key, &nonce, i as u32).apply(&mut data);
                bytes += data.len() as u64;
            }
            std::hint::black_box(&data);
            bytes
        });

        self.add("hash/fnv1a", TaxCategory::Hashing, |iters| {
            let keys: Vec<Vec<u8>> = (0..256u64)
                .map(|i| format!("object:{i}:fbid").into_bytes())
                .collect();
            let mut ops = 0u64;
            for _ in 0..iters {
                for key in &keys {
                    std::hint::black_box(hash::fnv1a(key));
                    ops += 1;
                }
            }
            ops
        });

        self.add("hash/dcx64", TaxCategory::Hashing, |iters| {
            let data = corpus(4 << 10, 7);
            let mut bytes = 0u64;
            for i in 0..iters {
                std::hint::black_box(hash::dcx64(&data, i));
                bytes += data.len() as u64;
            }
            bytes
        });

        self.add("hash/crc32", TaxCategory::Hashing, |iters| {
            let data = corpus(4 << 10, 8);
            let mut bytes = 0u64;
            for _ in 0..iters {
                std::hint::black_box(hash::crc32(&data));
                bytes += data.len() as u64;
            }
            bytes
        });

        self.add("serialize/encode", TaxCategory::Serialization, |iters| {
            let records: Vec<serialize::Record> = (0..64i64)
                .map(|i| {
                    vec![
                        serialize::FieldValue::I64(i * 31337),
                        serialize::FieldValue::F64(i as f64 * 0.5),
                        serialize::FieldValue::Str(format!("row-{i}-payload")),
                    ]
                })
                .collect();
            let mut ops = 0u64;
            let mut buf = Vec::new();
            for _ in 0..iters {
                buf.clear();
                serialize::encode_batch(&records, &mut buf);
                std::hint::black_box(&buf);
                ops += records.len() as u64;
            }
            ops
        });

        self.add("serialize/decode", TaxCategory::Serialization, |iters| {
            let records: Vec<serialize::Record> = (0..64i64)
                .map(|i| {
                    vec![
                        serialize::FieldValue::I64(i),
                        serialize::FieldValue::Str(format!("row-{i}")),
                    ]
                })
                .collect();
            let mut buf = Vec::new();
            serialize::encode_batch(&records, &mut buf);
            let mut ops = 0u64;
            for _ in 0..iters {
                let (decoded, _) = serialize::decode_batch(&buf).expect("own batch decodes");
                ops += decoded.len() as u64;
                std::hint::black_box(&decoded);
            }
            ops
        });

        self.add("memory/copy", TaxCategory::Memory, |iters| {
            let src = corpus(64 << 10, 9);
            let mut dst = vec![0u8; src.len()];
            std::hint::black_box(memops::copy_sequential(&src, &mut dst, iters as usize));
            iters * src.len() as u64
        });

        self.add("memory/gather", TaxCategory::Memory, |iters| {
            let src = corpus(1 << 20, 10);
            let count = 4096usize;
            let mut acc = 0u64;
            for i in 0..iters {
                acc ^= memops::gather_random(&src, count, i);
            }
            std::hint::black_box(acc);
            iters * count as u64
        });

        self.add("memory/pointer_chase", TaxCategory::Memory, |iters| {
            let steps = 4096usize;
            let mut acc = 0u64;
            for i in 0..iters {
                acc ^= memops::pointer_chase(1 << 16, steps, i);
            }
            std::hint::black_box(acc);
            iters * steps as u64
        });

        self.add(
            "thread/atomic_counter",
            TaxCategory::ThreadManager,
            |iters| concurrency::contended_atomic_counter(4, iters * 256),
        );

        self.add("thread/queue", TaxCategory::ThreadManager, |iters| {
            concurrency::queue_throughput(2, iters * 256)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_is_populated() {
        let r = Registry::with_builtin();
        assert!(r.len() >= 14, "only {} kernels", r.len());
        // Every Figure-12 category is represented.
        for cat in [
            TaxCategory::Serialization,
            TaxCategory::Compression,
            TaxCategory::Crypto,
            TaxCategory::Hashing,
            TaxCategory::Memory,
            TaxCategory::ThreadManager,
        ] {
            assert!(r.iter().any(|b| b.category() == cat), "no kernel for {cat}");
        }
    }

    #[test]
    fn names_are_unique() {
        let r = Registry::with_builtin();
        let mut names: Vec<&str> = r.iter().map(|b| b.name()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn every_kernel_runs_and_reports_ops() {
        let r = Registry::with_builtin();
        for bench in r.iter() {
            let ops = bench.run(2);
            assert!(ops > 0, "{} reported zero ops", bench.name());
        }
    }

    #[test]
    fn lookup_by_name() {
        let r = Registry::with_builtin();
        assert!(r.get("compress/lz").is_some());
        assert!(r.get("no/such").is_none());
    }

    #[test]
    fn ops_scale_with_iters() {
        let r = Registry::with_builtin();
        let b = r.get("crypto/sha256").unwrap();
        assert_eq!(b.run(4), 2 * b.run(2));
    }
}
