//! Cryptographic kernels: SHA-256, HMAC-SHA-256, and ChaCha20.
//!
//! FeedSim's stack includes "Crypto (OpenSSL, libsodium, fizz)" (Table 2);
//! TLS-terminating services pay hashing and stream-cipher cycles on every
//! response. These are complete, test-vector-verified implementations —
//! *not* for protecting real secrets (no constant-time guarantees), but
//! instruction-accurate stand-ins for the crypto tax.

// --------------------------------------------------------------------------
// SHA-256
// --------------------------------------------------------------------------

const SHA256_K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const SHA256_H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use dcperf_tax::crypto::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// let digest = h.finalize();
/// assert_eq!(
///     hex(&digest),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
///
/// fn hex(bytes: &[u8]) -> String {
///     bytes.iter().map(|b| format!("{b:02x}")).collect()
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    length_bits: u64,
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Self {
            state: SHA256_H0,
            buffer: [0; 64],
            buffered: 0,
            length_bits: 0,
        }
    }

    /// One-shot digest of `data`.
    pub fn digest(data: &[u8]) -> [u8; 32] {
        let mut h = Self::new();
        h.update(data);
        h.finalize()
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.length_bits = self.length_bits.wrapping_add((data.len() as u64) * 8);
        let mut rest = data;
        if self.buffered > 0 {
            let take = rest.len().min(64 - self.buffered);
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&rest[..take]);
            self.buffered += take;
            rest = &rest[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            } else {
                // Buffer still partial means `rest` is exhausted; falling
                // through would clobber `buffered` with the empty
                // remainder and drop these bytes.
                return;
            }
        }
        let mut chunks = rest.chunks_exact(64);
        for block in &mut chunks {
            self.compress(block.try_into().expect("64-byte block"));
        }
        let rem = chunks.remainder();
        self.buffer[..rem.len()].copy_from_slice(rem);
        self.buffered = rem.len();
    }

    /// Pads and produces the digest, consuming the hasher.
    pub fn finalize(mut self) -> [u8; 32] {
        self.raw_update_padding();
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn raw_update_padding(&mut self) {
        let length_bits = self.length_bits;
        // 0x80, zeros, then the 64-bit big-endian bit length.
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        let pad_len = if self.buffered < 56 {
            56 - self.buffered
        } else {
            120 - self.buffered
        };
        pad[pad_len..pad_len + 8].copy_from_slice(&length_bits.to_be_bytes());
        // Bypass length accounting for padding bytes.
        let total = pad_len + 8;
        let mut rest = &pad[..total];
        while !rest.is_empty() {
            let take = rest.len().min(64 - self.buffered);
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&rest[..take]);
            self.buffered += take;
            rest = &rest[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        debug_assert_eq!(self.buffered, 0);
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4 bytes"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(SHA256_K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

/// HMAC-SHA-256 of `message` under `key` (RFC 2104).
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut key_block = [0u8; 64];
    if key.len() > 64 {
        key_block[..32].copy_from_slice(&Sha256::digest(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

// --------------------------------------------------------------------------
// ChaCha20
// --------------------------------------------------------------------------

/// The ChaCha20 stream cipher (RFC 8439 block function).
///
/// Encryption and decryption are the same operation (XOR keystream).
///
/// # Examples
///
/// ```
/// use dcperf_tax::crypto::ChaCha20;
///
/// let key = [7u8; 32];
/// let nonce = [9u8; 12];
/// let mut data = b"attack at dawn".to_vec();
/// ChaCha20::new(&key, &nonce, 1).apply(&mut data);
/// assert_ne!(&data, b"attack at dawn");
/// ChaCha20::new(&key, &nonce, 1).apply(&mut data);
/// assert_eq!(&data, b"attack at dawn");
/// ```
#[derive(Debug, Clone)]
pub struct ChaCha20 {
    state: [u32; 16],
}

impl ChaCha20 {
    /// Creates a cipher from a 256-bit key, 96-bit nonce, and initial
    /// block counter.
    pub fn new(key: &[u8; 32], nonce: &[u8; 12], counter: u32) -> Self {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().expect("4"));
        }
        state[12] = counter;
        for i in 0..3 {
            state[13 + i] = u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().expect("4"));
        }
        Self { state }
    }

    #[inline]
    fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    fn block(&self, counter: u32) -> [u8; 64] {
        let mut working = self.state;
        working[12] = counter;
        let initial = working;
        for _ in 0..10 {
            // Column rounds.
            Self::quarter_round(&mut working, 0, 4, 8, 12);
            Self::quarter_round(&mut working, 1, 5, 9, 13);
            Self::quarter_round(&mut working, 2, 6, 10, 14);
            Self::quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            Self::quarter_round(&mut working, 0, 5, 10, 15);
            Self::quarter_round(&mut working, 1, 6, 11, 12);
            Self::quarter_round(&mut working, 2, 7, 8, 13);
            Self::quarter_round(&mut working, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for i in 0..16 {
            let word = working[i].wrapping_add(initial[i]);
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// XORs the keystream into `data` in place, starting at the
    /// construction-time counter.
    pub fn apply(&self, data: &mut [u8]) {
        let base = self.state[12];
        for (block_idx, chunk) in data.chunks_mut(64).enumerate() {
            let ks = self.block(base.wrapping_add(block_idx as u32));
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn sha256_standard_vectors() {
        assert_eq!(
            hex(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&Sha256::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn sha256_incremental_equals_oneshot() {
        let data: Vec<u8> = (0..1000u32).flat_map(|i| i.to_le_bytes()).collect();
        for split in [0usize, 1, 63, 64, 65, 100, 999] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha256::digest(&data), "split={split}");
        }
    }

    #[test]
    fn hmac_rfc4231_vectors() {
        // RFC 4231 test case 1.
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        // Test case 2 ("Jefe").
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn hmac_long_key_is_hashed_first() {
        let long_key = [0xaau8; 131];
        let mac = hmac_sha256(
            &long_key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        // RFC 4231 test case 6.
        assert_eq!(
            hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn chacha20_rfc8439_block_vector() {
        // RFC 8439 §2.3.2 test vector.
        let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
        let nonce: [u8; 12] = [
            0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let cipher = ChaCha20::new(&key, &nonce, 1);
        let block = cipher.block(1);
        assert_eq!(hex(&block[..16]), "10f1e7e4d13b5915500fdd1fa32071c4");
    }

    #[test]
    fn chacha20_rfc8439_encryption_vector() {
        // RFC 8439 §2.4.2.
        let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
        let nonce: [u8; 12] = [
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.".to_vec();
        ChaCha20::new(&key, &nonce, 1).apply(&mut data);
        assert_eq!(hex(&data[..16]), "6e2e359a2568f98041ba0728dd0d6981");
    }

    #[test]
    fn chacha20_round_trips_many_sizes() {
        let key = [3u8; 32];
        let nonce = [5u8; 12];
        for len in [0usize, 1, 63, 64, 65, 128, 1000] {
            let original: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
            let mut data = original.clone();
            ChaCha20::new(&key, &nonce, 0).apply(&mut data);
            if len > 8 {
                assert_ne!(data, original);
            }
            ChaCha20::new(&key, &nonce, 0).apply(&mut data);
            assert_eq!(data, original, "len={len}");
        }
    }

    #[test]
    fn different_nonces_differ() {
        let key = [1u8; 32];
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        ChaCha20::new(&key, &[0u8; 12], 0).apply(&mut a);
        ChaCha20::new(&key, &[1u8; 12], 0).apply(&mut b);
        assert_ne!(a, b);
    }
}
