//! Property tests for the tax codecs: every compressor round-trips on
//! arbitrary bytes, decoders never panic on corrupt input, and crypto
//! primitives hold their structural properties.

use dcperf_tax::{compress, crypto, hash, serialize};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lz_round_trips_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..20_000)) {
        let packed = compress::lz_compress(&data);
        let unpacked = compress::lz_decompress(&packed).expect("own stream decodes");
        prop_assert_eq!(unpacked, data);
    }

    #[test]
    fn lz_round_trips_repetitive_bytes(
        pattern in proptest::collection::vec(any::<u8>(), 1..64),
        repeats in 1usize..400,
    ) {
        let data: Vec<u8> = pattern.iter().cycle().take(pattern.len() * repeats).copied().collect();
        let packed = compress::lz_compress(&data);
        prop_assert_eq!(compress::lz_decompress(&packed).expect("decodes"), data);
    }

    #[test]
    fn lz_decompress_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..4_096)) {
        let _ = compress::lz_decompress(&data); // may error, must not panic
    }

    #[test]
    fn rle_round_trips_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..20_000)) {
        let packed = compress::rle_compress(&data);
        prop_assert_eq!(compress::rle_decompress(&packed).expect("decodes"), data);
    }

    #[test]
    fn rle_decompress_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..4_096)) {
        let _ = compress::rle_decompress(&data);
    }

    #[test]
    fn sha256_incremental_matches_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..4_096),
        split in 0usize..4_096,
    ) {
        let split = split.min(data.len());
        let mut h = crypto::Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), crypto::Sha256::digest(&data));
    }

    #[test]
    fn chacha20_is_an_involution(
        data in proptest::collection::vec(any::<u8>(), 0..2_048),
        key in proptest::array::uniform32(any::<u8>()),
        counter in any::<u32>(),
    ) {
        let nonce = [7u8; 12];
        let mut buf = data.clone();
        crypto::ChaCha20::new(&key, &nonce, counter).apply(&mut buf);
        crypto::ChaCha20::new(&key, &nonce, counter).apply(&mut buf);
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn hmac_differs_across_keys(
        message in proptest::collection::vec(any::<u8>(), 1..512),
        key_a in proptest::collection::vec(any::<u8>(), 1..64),
        key_b in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        prop_assume!(key_a != key_b);
        prop_assert_ne!(
            crypto::hmac_sha256(&key_a, &message),
            crypto::hmac_sha256(&key_b, &message)
        );
    }

    #[test]
    fn hashes_are_pure_functions(data in proptest::collection::vec(any::<u8>(), 0..1_024)) {
        prop_assert_eq!(hash::fnv1a(&data), hash::fnv1a(&data));
        prop_assert_eq!(hash::dcx64(&data, 5), hash::dcx64(&data, 5));
        prop_assert_eq!(hash::crc32(&data), hash::crc32(&data));
    }

    #[test]
    fn record_batches_round_trip(
        records in proptest::collection::vec(
            proptest::collection::vec(
                prop_oneof![
                    any::<i64>().prop_map(serialize::FieldValue::I64),
                    // Finite doubles only: NaN breaks PartialEq comparison.
                    (-1e300f64..1e300).prop_map(serialize::FieldValue::F64),
                    ".{0,40}".prop_map(serialize::FieldValue::Str),
                    proptest::collection::vec(any::<u8>(), 0..64)
                        .prop_map(serialize::FieldValue::Bytes),
                ],
                0..8,
            ),
            0..16,
        )
    ) {
        let mut buf = Vec::new();
        serialize::encode_batch(&records, &mut buf);
        let (decoded, consumed) = serialize::decode_batch(&buf).expect("own batch decodes");
        prop_assert_eq!(decoded, records);
        prop_assert_eq!(consumed, buf.len());
    }

    #[test]
    fn decode_batch_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..1_024)) {
        let _ = serialize::decode_batch(&data);
    }

    #[test]
    fn truncated_lz_streams_error_not_panic(
        data in proptest::collection::vec(any::<u8>(), 1..2_048),
        cut_frac in 0.0f64..1.0,
    ) {
        let packed = compress::lz_compress(&data);
        let cut = ((packed.len() as f64) * cut_frac) as usize;
        if cut < packed.len() {
            prop_assert!(compress::lz_decompress(&packed[..cut]).is_err());
        }
    }
}
