//! Load generation: closed-loop and open-loop drivers with
//! SLO-constrained peak-throughput search.
//!
//! DCPerf's clients "generate load to determine the maximum request rate
//! \[the server\] can handle while maintaining the 95th percentile latency
//! within the SLO" (§3.2, FeedSim). This crate provides the three pieces
//! of that methodology:
//!
//! * [`ClosedLoop`] — N workers issuing back-to-back requests (siege/
//!   memtier style), measuring service latency and saturating throughput.
//! * [`OpenLoop`] — a Poisson arrival process at a configured offered
//!   rate; latency is measured from *scheduled arrival* to completion, so
//!   queueing delay is captured and coordinated omission avoided.
//! * [`find_peak_load`] — doubling + binary search over offered load for
//!   the highest rate whose [`LoadReport`] still satisfies a caller
//!   predicate (the SLO).
//!
//! # Examples
//!
//! ```
//! use dcperf_loadgen::{ClosedLoop, EndpointMix, Service, ServiceError};
//! use std::time::Duration;
//!
//! struct Fast;
//! impl Service for Fast {
//!     fn call(&self, _endpoint: usize, _seq: u64) -> Result<usize, ServiceError> {
//!         Ok(64)
//!     }
//! }
//!
//! let mix = EndpointMix::uniform(&["get"])?;
//! let report = ClosedLoop::new(mix)
//!     .workers(2)
//!     .duration(Duration::from_millis(50))
//!     .run(&Fast, 42);
//! assert!(report.completed > 0);
//! assert_eq!(report.errors, 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use crossbeam::channel::{bounded, RecvTimeoutError};
use dcperf_telemetry::{metrics, Counter, Telemetry, TelemetrySnapshot};
use dcperf_util::{Empirical, Exponential, Histogram, Rng, Xoshiro256pp};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Classification of a failed [`Service`] call, routed to distinct
/// [`LoadReport`] outcome counters so resilience scenarios can separate
/// "the service broke" from "the deadline expired" from "a client-side
/// guard refused to send".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServiceErrorKind {
    /// Any other failure (application error, transport error, ...).
    #[default]
    Other,
    /// The request's deadline expired before a useful reply arrived.
    DeadlineExceeded,
    /// A client-side guard (circuit breaker, retry budget) rejected the
    /// call without issuing it.
    Rejected,
}

/// An error returned by a [`Service`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceError {
    /// Outcome classification.
    pub kind: ServiceErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl ServiceError {
    /// A plain failure ([`ServiceErrorKind::Other`]).
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            kind: ServiceErrorKind::Other,
            message: message.into(),
        }
    }

    /// A deadline-expired failure.
    pub fn deadline_exceeded(message: impl Into<String>) -> Self {
        Self {
            kind: ServiceErrorKind::DeadlineExceeded,
            message: message.into(),
        }
    }

    /// A breaker/budget rejection.
    pub fn rejected(message: impl Into<String>) -> Self {
        Self {
            kind: ServiceErrorKind::Rejected,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            ServiceErrorKind::Other => write!(f, "service error: {}", self.message),
            ServiceErrorKind::DeadlineExceeded => {
                write!(f, "deadline exceeded: {}", self.message)
            }
            ServiceErrorKind::Rejected => write!(f, "rejected: {}", self.message),
        }
    }
}

impl std::error::Error for ServiceError {}

/// The system under test, as seen by the load generator.
///
/// `endpoint` indexes into the [`EndpointMix`]; `seq` is a unique request
/// number usable as a deterministic content seed. The return value is the
/// response size in bytes (reported in throughput accounting).
pub trait Service: Send + Sync {
    /// Executes one request.
    ///
    /// # Errors
    ///
    /// Returns a [`ServiceError`] for failed requests; these count against
    /// the error-rate SLO.
    fn call(&self, endpoint: usize, seq: u64) -> Result<usize, ServiceError>;

    /// Executes a pipelined batch of requests, returning one outcome per
    /// `(endpoint, seq)` element in order.
    ///
    /// The default issues the batch sequentially through
    /// [`Service::call`], so plain services work unchanged; services
    /// backed by a pipelined transport override this to keep the whole
    /// batch in flight on one connection.
    fn call_many(&self, batch: &[(usize, u64)]) -> Vec<Result<usize, ServiceError>> {
        batch
            .iter()
            .map(|&(endpoint, seq)| self.call(endpoint, seq))
            .collect()
    }
}

/// A weighted set of endpoints (e.g. Instagram's `feed`, `timeline`,
/// `seen`, `inbox`).
#[derive(Debug, Clone)]
pub struct EndpointMix {
    names: Vec<String>,
    dist: Empirical,
}

impl EndpointMix {
    /// Builds a mix with explicit weights.
    ///
    /// # Errors
    ///
    /// Returns an error if lengths mismatch or the weights are invalid.
    pub fn new(names: &[&str], weights: &[f64]) -> Result<Self, Box<dyn std::error::Error>> {
        if names.len() != weights.len() {
            return Err("endpoint names and weights must have equal length".into());
        }
        Ok(Self {
            names: names.iter().map(|s| s.to_string()).collect(),
            dist: Empirical::new(weights)?,
        })
    }

    /// Builds a uniform mix.
    ///
    /// # Errors
    ///
    /// Returns an error if `names` is empty.
    pub fn uniform(names: &[&str]) -> Result<Self, Box<dyn std::error::Error>> {
        let weights = vec![1.0; names.len()];
        Self::new(names, &weights)
    }

    /// Endpoint names, index-aligned with [`Service::call`]'s `endpoint`.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.dist.sample(rng)
    }
}

/// Everything measured during one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests that failed with [`ServiceErrorKind::Other`].
    pub errors: u64,
    /// Requests whose deadline expired ([`ServiceErrorKind::DeadlineExceeded`]).
    pub deadline_exceeded: u64,
    /// Requests rejected client-side ([`ServiceErrorKind::Rejected`]).
    pub rejected: u64,
    /// Open-loop only: arrivals dropped because the queue was saturated.
    pub dropped: u64,
    /// Latency histogram in nanoseconds (service time for closed loop;
    /// scheduled-arrival-to-completion for open loop).
    pub latency_ns: Histogram,
    /// Measured wall-clock duration.
    pub duration: Duration,
    /// Bytes returned by successful calls.
    pub response_bytes: u64,
    /// Per-endpoint completion counts, index-aligned with the mix.
    pub per_endpoint: Vec<u64>,
    /// Snapshot of the run's telemetry registry: every count above under
    /// `loadgen.*` names plus the latency-histogram digest, ready to embed
    /// in a benchmark report or diff against other subsystems.
    pub telemetry: TelemetrySnapshot,
}

impl LoadReport {
    /// Achieved throughput in successful requests per second.
    pub fn throughput_rps(&self) -> f64 {
        if self.duration.is_zero() {
            0.0
        } else {
            self.completed as f64 / self.duration.as_secs_f64()
        }
    }

    /// All failed outcomes (errors, expired deadlines, rejections, and
    /// drops) as a fraction of attempted requests.
    pub fn error_rate(&self) -> f64 {
        let failed = self.errors + self.deadline_exceeded + self.rejected + self.dropped;
        let attempted = self.completed + failed;
        if attempted == 0 {
            0.0
        } else {
            failed as f64 / attempted as f64
        }
    }

    /// Goodput: successful completions per second (alias of
    /// [`LoadReport::throughput_rps`], named for chaos reports where the
    /// offered load is higher than what completes).
    pub fn goodput_rps(&self) -> f64 {
        self.throughput_rps()
    }

    /// P95 latency in milliseconds.
    pub fn p95_ms(&self) -> f64 {
        self.latency_ns.p95() as f64 / 1e6
    }
}

/// Per-run counter handles resolved from the run's telemetry registry.
///
/// Workers record through these (single relaxed atomics / wait-free
/// histogram stripes); the registry itself is only locked to create the
/// handles and to take the final snapshot.
struct RunRecorder {
    telemetry: Telemetry,
    completed: Arc<Counter>,
    errors: Arc<Counter>,
    deadline_exceeded: Arc<Counter>,
    rejected: Arc<Counter>,
    dropped: Arc<Counter>,
    bytes: Arc<Counter>,
    latency: Arc<dcperf_telemetry::ConcurrentHistogram>,
    per_endpoint: Vec<Arc<Counter>>,
}

impl RunRecorder {
    /// Resolves handles from `shared` when given, so the run's counters
    /// and latency digest land in the caller's registry (and therefore in
    /// any report snapshot taken from it); otherwise uses a private one.
    fn new(mix: &EndpointMix, shared: Option<&Telemetry>) -> Self {
        let telemetry = shared.cloned().unwrap_or_default();
        Self {
            completed: telemetry.counter(metrics::LOADGEN_COMPLETED),
            errors: telemetry.counter(metrics::LOADGEN_ERRORS),
            deadline_exceeded: telemetry.counter(metrics::LOADGEN_DEADLINE_EXCEEDED),
            rejected: telemetry.counter(metrics::LOADGEN_REJECTED),
            dropped: telemetry.counter(metrics::LOADGEN_DROPPED),
            bytes: telemetry.counter(metrics::LOADGEN_RESPONSE_BYTES),
            latency: telemetry.histogram(metrics::LOADGEN_LATENCY_NS),
            per_endpoint: mix
                .names
                .iter()
                .enumerate()
                .map(|(i, name)| {
                    telemetry.counter(&format!("{}.{i}.{name}", metrics::DYN_LOADGEN_ENDPOINT))
                })
                .collect(),
            telemetry,
        }
    }

    fn record_failure(&self, kind: ServiceErrorKind) {
        match kind {
            ServiceErrorKind::Other => self.errors.inc(),
            ServiceErrorKind::DeadlineExceeded => self.deadline_exceeded.inc(),
            ServiceErrorKind::Rejected => self.rejected.inc(),
        }
    }

    /// Freezes the run into a report. Call only after every worker has
    /// joined, so the histogram snapshot is exact.
    fn into_report(self, duration: Duration) -> LoadReport {
        LoadReport {
            completed: self.completed.get(),
            errors: self.errors.get(),
            deadline_exceeded: self.deadline_exceeded.get(),
            rejected: self.rejected.get(),
            dropped: self.dropped.get(),
            latency_ns: self.latency.snapshot(),
            duration,
            response_bytes: self.bytes.get(),
            per_endpoint: self.per_endpoint.iter().map(|c| c.get()).collect(),
            telemetry: self.telemetry.snapshot(),
        }
    }
}

/// Closed-loop driver: each worker issues the next request as soon as the
/// previous one completes.
#[derive(Debug, Clone)]
pub struct ClosedLoop {
    mix: EndpointMix,
    workers: usize,
    duration: Duration,
    max_requests: Option<u64>,
    pipeline_depth: usize,
    telemetry: Option<Telemetry>,
}

impl ClosedLoop {
    /// Creates a driver over `mix` with defaults (4 workers, 1 s,
    /// pipeline depth 1).
    pub fn new(mix: EndpointMix) -> Self {
        Self {
            mix,
            workers: 4,
            duration: Duration::from_secs(1),
            max_requests: None,
            pipeline_depth: 1,
            telemetry: None,
        }
    }

    /// Sets how many requests each worker keeps in flight per turn
    /// (builder style; clamped to ≥ 1). Depths above 1 drive the service
    /// through [`Service::call_many`] in bursts; the recorded latency is
    /// then the full batch turn per request, honestly reflecting the
    /// latency a pipelined request observes waiting for its burst.
    pub fn pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth.max(1);
        self
    }

    /// Records the run onto `telemetry` instead of a private registry
    /// (builder style). Counter names are shared across runs, so two runs
    /// on the same registry accumulate — keep warmup runs on their own.
    pub fn telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.telemetry = Some(telemetry.clone());
        self
    }

    /// Sets the worker count (builder style).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the run duration (builder style).
    pub fn duration(mut self, duration: Duration) -> Self {
        self.duration = duration;
        self
    }

    /// Caps total requests across workers (builder style); whichever of
    /// the cap and the duration hits first ends the run.
    pub fn max_requests(mut self, n: u64) -> Self {
        self.max_requests = Some(n);
        self
    }

    /// Runs the workload and gathers a report.
    pub fn run<S: Service>(&self, service: &S, seed: u64) -> LoadReport {
        let recorder = RunRecorder::new(&self.mix, self.telemetry.as_ref());
        let stop = AtomicBool::new(false);
        let issued = AtomicU64::new(0);
        let budget = self.max_requests.unwrap_or(u64::MAX);
        let started = Instant::now();

        std::thread::scope(|scope| {
            for w in 0..self.workers {
                let mut rng = Xoshiro256pp::seed_from_u64(seed ^ (w as u64) << 32);
                let mix = &self.mix;
                let recorder = &recorder;
                let stop = &stop;
                let issued = &issued;
                let deadline = started + self.duration;
                let depth = self.pipeline_depth;
                scope.spawn(move || loop {
                    // ordering: advisory stop flag; a stale read costs one extra call
                    if stop.load(Ordering::Relaxed) || Instant::now() >= deadline {
                        break;
                    }
                    // Claim up to `depth` call-budget slots for this turn.
                    let mut batch = Vec::with_capacity(depth);
                    for _ in 0..depth {
                        // ordering: seq only claims a unique slot in the call budget
                        let seq = issued.fetch_add(1, Ordering::Relaxed);
                        if seq >= budget {
                            // ordering: advisory stop flag; scope join is the real barrier
                            stop.store(true, Ordering::Relaxed);
                            break;
                        }
                        batch.push((mix.sample(&mut rng), seq));
                    }
                    if batch.is_empty() {
                        break;
                    }
                    let t0 = Instant::now();
                    let outcomes = service.call_many(&batch);
                    // Every request in the burst waited for the whole turn;
                    // record the turn latency per request so pipelining's
                    // latency cost is visible, not hidden.
                    let turn_ns = t0.elapsed().as_nanos() as u64;
                    for (&(endpoint, _), outcome) in batch.iter().zip(outcomes) {
                        match outcome {
                            Ok(bytes) => {
                                recorder.latency.record(turn_ns);
                                recorder.completed.inc();
                                recorder.bytes.add(bytes as u64);
                                recorder.per_endpoint[endpoint].inc();
                            }
                            Err(e) => {
                                recorder.record_failure(e.kind);
                            }
                        }
                    }
                });
            }
        });

        recorder.into_report(started.elapsed())
    }
}

/// Open-loop driver: a dispatcher schedules Poisson arrivals at the
/// offered rate; workers serve them from a bounded queue. Latency includes
/// queueing delay, and arrivals that find the queue full are *dropped*
/// (counted, visible to SLO checks) rather than silently delayed.
#[derive(Debug, Clone)]
pub struct OpenLoop {
    mix: EndpointMix,
    workers: usize,
    duration: Duration,
    offered_rps: f64,
    queue_depth: usize,
    pipeline_depth: usize,
    telemetry: Option<Telemetry>,
}

impl OpenLoop {
    /// Creates a driver over `mix` at `offered_rps` with defaults
    /// (4 workers, 1 s, queue depth 1024, pipeline depth 1).
    pub fn new(mix: EndpointMix, offered_rps: f64) -> Self {
        Self {
            mix,
            workers: 4,
            duration: Duration::from_secs(1),
            offered_rps: offered_rps.max(1.0),
            queue_depth: 1024,
            pipeline_depth: 1,
            telemetry: None,
        }
    }

    /// Sets how many queued arrivals a worker drains into one pipelined
    /// [`Service::call_many`] burst (builder style; clamped to ≥ 1).
    /// Workers never *wait* to fill a burst — they take whatever has
    /// already arrived — so light load degenerates to single calls and
    /// latency still counts from each arrival's scheduled instant.
    pub fn pipeline_depth(mut self, depth: usize) -> Self {
        self.pipeline_depth = depth.max(1);
        self
    }

    /// Records the run onto `telemetry` instead of a private registry
    /// (builder style). Counter names are shared across runs, so two runs
    /// on the same registry accumulate — keep warmup runs on their own.
    pub fn telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.telemetry = Some(telemetry.clone());
        self
    }

    /// Sets the worker count (builder style).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the run duration (builder style).
    pub fn duration(mut self, duration: Duration) -> Self {
        self.duration = duration;
        self
    }

    /// Sets the arrival-queue depth (builder style).
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Runs the workload and gathers a report.
    ///
    /// # Panics
    ///
    /// Panics only if the internal arrival-rate distribution is invalid,
    /// which the constructor's clamping prevents.
    pub fn run<S: Service>(&self, service: &S, seed: u64) -> LoadReport {
        let recorder = RunRecorder::new(&self.mix, self.telemetry.as_ref());
        let started = Instant::now();
        let deadline = started + self.duration;
        // Arrival = (endpoint, seq, scheduled time).
        let (tx, rx) = bounded::<(usize, u64, Instant)>(self.queue_depth);

        std::thread::scope(|scope| {
            // Dispatcher.
            {
                let mix = &self.mix;
                let recorder = &recorder;
                let gaps =
                    // analyzer: allow(panic-path) — rate() clamps to positive at construction
                    Exponential::new(self.offered_rps).expect("offered rate clamped positive");
                let mut rng = Xoshiro256pp::seed_from_u64(seed);
                let tx = tx.clone();
                scope.spawn(move || {
                    let mut next = Instant::now();
                    let mut seq = 0u64;
                    loop {
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        if next > now {
                            std::thread::sleep(next - now);
                        }
                        let endpoint = mix.sample(&mut rng);
                        match tx.try_send((endpoint, seq, next)) {
                            Ok(()) => {}
                            Err(_) => {
                                recorder.dropped.inc();
                            }
                        }
                        seq += 1;
                        next += Duration::from_secs_f64(gaps.sample(&mut rng));
                    }
                });
            }
            drop(tx);

            for _ in 0..self.workers {
                let recorder = &recorder;
                let rx = rx.clone();
                let depth = self.pipeline_depth;
                scope.spawn(move || loop {
                    match rx.recv_timeout(Duration::from_millis(50)) {
                        Ok(first) => {
                            // Drain whatever else already arrived, up to the
                            // pipeline depth — opportunistic, never waiting.
                            let mut arrivals = vec![first];
                            while arrivals.len() < depth {
                                match rx.try_recv() {
                                    Ok(a) => arrivals.push(a),
                                    Err(_) => break,
                                }
                            }
                            let batch: Vec<(usize, u64)> = arrivals
                                .iter()
                                .map(|&(endpoint, seq, _)| (endpoint, seq))
                                .collect();
                            let outcomes = service.call_many(&batch);
                            let now = Instant::now();
                            for (&(endpoint, _, scheduled), outcome) in
                                arrivals.iter().zip(outcomes)
                            {
                                match outcome {
                                    Ok(bytes) => {
                                        // From scheduled arrival, so queueing
                                        // and burst-wait delay both count.
                                        let lat = now.saturating_duration_since(scheduled);
                                        recorder.latency.record(lat.as_nanos() as u64);
                                        recorder.completed.inc();
                                        recorder.bytes.add(bytes as u64);
                                        recorder.per_endpoint[endpoint].inc();
                                    }
                                    Err(e) => {
                                        recorder.record_failure(e.kind);
                                    }
                                }
                            }
                        }
                        Err(RecvTimeoutError::Timeout) => {
                            if Instant::now() >= deadline {
                                break;
                            }
                        }
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                });
            }
        });

        recorder.into_report(started.elapsed())
    }
}

/// The outcome of a peak-load search.
#[derive(Debug, Clone)]
pub struct PeakSearchResult {
    /// Highest offered RPS whose report satisfied the SLO predicate,
    /// or `None` if even the starting rate failed.
    pub peak_rps: Option<f64>,
    /// Report of the best passing trial.
    pub best_report: Option<LoadReport>,
    /// Every `(offered_rps, passed)` trial, in order.
    pub trials: Vec<(f64, bool)>,
}

/// Searches for the maximum offered load meeting an SLO: doubles the rate
/// until the predicate fails, then binary-searches the bracket.
///
/// `run_trial` executes one open-loop trial at a rate and returns its
/// report; `meets_slo` judges it. `refinements` bounds the binary-search
/// steps.
pub fn find_peak_load(
    start_rps: f64,
    max_rps: f64,
    refinements: u32,
    mut run_trial: impl FnMut(f64) -> LoadReport,
    mut meets_slo: impl FnMut(&LoadReport) -> bool,
) -> PeakSearchResult {
    let mut trials = Vec::new();
    let mut best: Option<(f64, LoadReport)> = None;
    let mut lo = start_rps.max(1.0);

    // Phase 1: doubling until failure or cap.
    let mut hi = None;
    let mut rate = lo;
    loop {
        let report = run_trial(rate);
        let pass = meets_slo(&report);
        trials.push((rate, pass));
        if pass {
            best = Some((rate, report));
            lo = rate;
            if rate >= max_rps {
                break;
            }
            rate = (rate * 2.0).min(max_rps);
        } else {
            hi = Some(rate);
            break;
        }
    }

    // Phase 2: binary search between lo (pass) and hi (fail).
    if let Some(mut hi) = hi {
        if best.is_some() {
            for _ in 0..refinements {
                let mid = (lo + hi) / 2.0;
                if hi - lo < lo * 0.05 {
                    break; // within 5% — good enough for a benchmark
                }
                let report = run_trial(mid);
                let pass = meets_slo(&report);
                trials.push((mid, pass));
                if pass {
                    best = Some((mid, report));
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
        }
    }

    let (peak_rps, best_report) = match best {
        Some((rps, report)) => (Some(rps), Some(report)),
        None => (None, None),
    };
    PeakSearchResult {
        peak_rps,
        best_report,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Sleepy {
        us: u64,
    }

    impl Service for Sleepy {
        fn call(&self, _endpoint: usize, _seq: u64) -> Result<usize, ServiceError> {
            if self.us > 0 {
                let deadline = Instant::now() + Duration::from_micros(self.us);
                while Instant::now() < deadline {
                    std::hint::spin_loop();
                }
            }
            Ok(10)
        }
    }

    struct Flaky;

    impl Service for Flaky {
        fn call(&self, _endpoint: usize, seq: u64) -> Result<usize, ServiceError> {
            if seq.is_multiple_of(4) {
                Err(ServiceError::new("planned failure"))
            } else {
                Ok(1)
            }
        }
    }

    fn mix() -> EndpointMix {
        EndpointMix::new(&["feed", "timeline"], &[3.0, 1.0]).unwrap()
    }

    #[test]
    fn closed_loop_measures_throughput() {
        let report = ClosedLoop::new(mix())
            .workers(2)
            .duration(Duration::from_millis(100))
            .run(&Sleepy { us: 100 }, 1);
        assert!(report.completed > 100, "completed={}", report.completed);
        assert_eq!(report.errors, 0);
        assert!(report.throughput_rps() > 1000.0);
        assert!(
            report.latency_ns.p50() >= 90_000,
            "p50={}",
            report.latency_ns.p50()
        );
        assert_eq!(report.response_bytes, report.completed * 10);
    }

    #[test]
    fn closed_loop_respects_request_cap() {
        let report = ClosedLoop::new(mix())
            .workers(4)
            .duration(Duration::from_secs(10))
            .max_requests(500)
            .run(&Sleepy { us: 0 }, 2);
        assert!(report.completed <= 500);
        assert!(
            report.duration < Duration::from_secs(5),
            "cap should end early"
        );
    }

    #[test]
    fn closed_loop_mix_weights_respected() {
        let report = ClosedLoop::new(mix())
            .workers(2)
            .duration(Duration::from_millis(80))
            .run(&Sleepy { us: 10 }, 3);
        let total: u64 = report.per_endpoint.iter().sum();
        assert_eq!(total, report.completed);
        let frac0 = report.per_endpoint[0] as f64 / total as f64;
        assert!((frac0 - 0.75).abs() < 0.1, "frac0={frac0}");
    }

    #[test]
    fn errors_are_counted() {
        let report = ClosedLoop::new(mix())
            .workers(1)
            .duration(Duration::from_secs(5))
            .max_requests(1000)
            .run(&Flaky, 4);
        assert!(report.errors > 150, "errors={}", report.errors);
        assert!(report.error_rate() > 0.15 && report.error_rate() < 0.35);
    }

    struct Classed;

    impl Service for Classed {
        fn call(&self, _endpoint: usize, seq: u64) -> Result<usize, ServiceError> {
            match seq % 4 {
                0 => Ok(1),
                1 => Err(ServiceError::new("boom")),
                2 => Err(ServiceError::deadline_exceeded("budget spent")),
                _ => Err(ServiceError::rejected("breaker open")),
            }
        }
    }

    #[test]
    fn failure_kinds_land_in_distinct_outcome_classes() {
        let report = ClosedLoop::new(mix())
            .workers(2)
            .duration(Duration::from_secs(5))
            .max_requests(400)
            .run(&Classed, 7);
        let attempted =
            report.completed + report.errors + report.deadline_exceeded + report.rejected;
        assert!(attempted >= 397, "attempted={attempted}"); // workers may cut the tail
                                                            // Each class gets ~1/4 of the sequence numbers.
        for (name, count) in [
            ("completed", report.completed),
            ("errors", report.errors),
            ("deadline_exceeded", report.deadline_exceeded),
            ("rejected", report.rejected),
        ] {
            assert!((80..=120).contains(&count), "{name}={count}");
        }
        assert!((report.error_rate() - 0.75).abs() < 0.05);
        // The classes also surface as telemetry counters.
        assert_eq!(
            report.telemetry.counter("loadgen.deadline_exceeded"),
            Some(report.deadline_exceeded)
        );
        assert_eq!(
            report.telemetry.counter("loadgen.rejected"),
            Some(report.rejected)
        );
    }

    #[test]
    fn open_loop_tracks_offered_rate() {
        let report = OpenLoop::new(mix(), 2000.0)
            .workers(4)
            .duration(Duration::from_millis(300))
            .run(&Sleepy { us: 20 }, 5);
        let achieved = report.throughput_rps();
        assert!(
            achieved > 1000.0 && achieved < 3500.0,
            "achieved={achieved}"
        );
        assert_eq!(report.dropped, 0, "no drops expected at this light load");
    }

    #[test]
    fn open_loop_overload_drops_or_queues() {
        // One slow worker (1ms/call => ~1000 rps capacity) at 20k offered:
        // queue fills, drops occur, and queueing delay shows in latency.
        let report = OpenLoop::new(mix(), 20_000.0)
            .workers(1)
            .queue_depth(64)
            .duration(Duration::from_millis(300))
            .run(&Sleepy { us: 1000 }, 6);
        assert!(report.dropped > 0, "expected drops under overload");
        assert!(
            report.latency_ns.p95() > 1_000_000,
            "queueing delay should inflate p95: {}",
            report.latency_ns.p95()
        );
    }

    #[test]
    fn peak_search_converges_on_capacity() {
        // Simulated service: pass while offered <= 1000 rps.
        let result = find_peak_load(
            100.0,
            100_000.0,
            12,
            |rate| {
                // Fabricate a report whose p95 blows up past capacity.
                let mut hist = Histogram::new();
                let lat_ns = if rate <= 1000.0 {
                    1_000_000
                } else {
                    600_000_000
                };
                for _ in 0..100 {
                    hist.record(lat_ns);
                }
                LoadReport {
                    completed: rate as u64,
                    errors: 0,
                    deadline_exceeded: 0,
                    rejected: 0,
                    dropped: 0,
                    latency_ns: hist,
                    duration: Duration::from_secs(1),
                    response_bytes: 0,
                    per_endpoint: vec![rate as u64],
                    telemetry: TelemetrySnapshot::default(),
                }
            },
            |report| report.p95_ms() <= 500.0,
        );
        let peak = result.peak_rps.expect("capacity is reachable");
        assert!(
            (800.0..=1100.0).contains(&peak),
            "peak={peak}, trials={:?}",
            result.trials
        );
        assert!(result.best_report.is_some());
    }

    #[test]
    fn peak_search_reports_unattainable_slo() {
        let result = find_peak_load(
            100.0,
            1000.0,
            4,
            |_rate| LoadReport {
                completed: 0,
                errors: 100,
                deadline_exceeded: 0,
                rejected: 0,
                dropped: 0,
                latency_ns: Histogram::new(),
                duration: Duration::from_secs(1),
                response_bytes: 0,
                per_endpoint: vec![0],
                telemetry: TelemetrySnapshot::default(),
            },
            |report| report.error_rate() < 0.01,
        );
        assert!(result.peak_rps.is_none());
        assert_eq!(result.trials.len(), 1);
    }

    /// A batch-aware service that records every burst size it saw.
    struct BatchProbe {
        burst_sizes: std::sync::Mutex<Vec<usize>>,
    }

    impl BatchProbe {
        fn new() -> Self {
            Self {
                burst_sizes: std::sync::Mutex::new(Vec::new()),
            }
        }
    }

    impl Service for BatchProbe {
        fn call(&self, endpoint: usize, seq: u64) -> Result<usize, ServiceError> {
            self.call_many(&[(endpoint, seq)]).swap_remove(0)
        }

        fn call_many(&self, batch: &[(usize, u64)]) -> Vec<Result<usize, ServiceError>> {
            self.burst_sizes.lock().unwrap().push(batch.len());
            batch.iter().map(|_| Ok(4)).collect()
        }
    }

    #[test]
    fn default_call_many_maps_to_call() {
        let svc = Flaky;
        let outcomes = svc.call_many(&[(0, 0), (0, 1), (0, 4)]);
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes[0].is_err(), "seq 0 is a planned failure");
        assert!(outcomes[1].is_ok());
        assert!(outcomes[2].is_err(), "seq 4 is a planned failure");
    }

    #[test]
    fn closed_loop_pipelined_issues_full_bursts() {
        let svc = BatchProbe::new();
        let report = ClosedLoop::new(mix())
            .workers(2)
            .pipeline_depth(8)
            .duration(Duration::from_secs(5))
            .max_requests(400)
            .run(&svc, 9);
        assert!(report.completed >= 393, "completed={}", report.completed);
        assert_eq!(report.response_bytes, report.completed * 4);
        let sizes = svc.burst_sizes.lock().unwrap();
        assert!(
            sizes.iter().filter(|&&s| s == 8).count() >= 40,
            "expected mostly full bursts, got {sizes:?}"
        );
        // Every burst respects the configured depth.
        assert!(sizes.iter().all(|&s| s <= 8));
        let total: u64 = report.per_endpoint.iter().sum();
        assert_eq!(total, report.completed);
    }

    #[test]
    fn closed_loop_depth_one_matches_classic_behavior() {
        let svc = BatchProbe::new();
        let report = ClosedLoop::new(mix())
            .workers(1)
            .pipeline_depth(1)
            .duration(Duration::from_secs(5))
            .max_requests(50)
            .run(&svc, 10);
        assert_eq!(report.completed, 50);
        assert!(svc.burst_sizes.lock().unwrap().iter().all(|&s| s == 1));
    }

    #[test]
    fn open_loop_pipelined_drains_bursts_under_load() {
        // One worker at high offered rate: the queue backs up, so drains
        // regularly pick up more than one arrival.
        let svc = BatchProbe::new();
        let report = OpenLoop::new(mix(), 20_000.0)
            .workers(1)
            .pipeline_depth(16)
            .queue_depth(256)
            .duration(Duration::from_millis(200))
            .run(&svc, 11);
        assert!(report.completed > 0);
        let sizes = svc.burst_sizes.lock().unwrap();
        assert!(
            sizes.iter().any(|&s| s > 1),
            "expected multi-arrival bursts, got {sizes:?}"
        );
        assert!(sizes.iter().all(|&s| s <= 16));
    }

    #[test]
    fn endpoint_mix_validation() {
        assert!(EndpointMix::new(&["a"], &[1.0, 2.0]).is_err());
        assert!(EndpointMix::uniform(&[]).is_err());
        let m = EndpointMix::uniform(&["x", "y"]).unwrap();
        assert_eq!(m.names(), &["x".to_string(), "y".to_string()]);
    }
}
