//! Figure/table regeneration library for DCPerf-RS.
//!
//! Every table and figure of the paper's evaluation has a `render_*`
//! function here returning the printable series; the `figures` binary is a
//! thin CLI over them, and integration tests assert their qualitative
//! shape. Model-driven figures (2–12, 14–16) come from `dcperf-platform`;
//! the runnable-workload figures (13, and the measured columns of the
//! microbenchmark tables) execute the actual `dcperf-workloads` code.

#![forbid(unsafe_code)]

pub mod figures;

pub use figures::{render, render_all, FIGURE_IDS};
