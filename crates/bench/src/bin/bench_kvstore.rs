//! Deterministic KV cache read-path and fill-amplification benchmark.
//!
//! Two phases, both seeded so repeat runs replay identical key streams:
//!
//! 1. **Read path.** Sweeps reader thread count x key skew (uniform and
//!    hot-key Zipf 0.99) over a fully resident working set. The traffic
//!    shape is the pipelined-RPC one: each thread issues bursts of
//!    `--depth` keys. The baseline is a faithful reconstruction of the
//!    pre-rewrite cache — mutex-per-shard [`Shard::get`] with a clock
//!    read and hit/miss counters per lookup, and no batch API, so a
//!    burst pays one lock/clock/counter round *per key*. Against it the
//!    current [`Cache`] is measured twice: scalar `get` per key, and one
//!    shard-grouped [`Cache::get_many`] per burst (how the TaoBench
//!    mget/Django feed paths drive it), which amortises those rounds
//!    across the burst. On multi-core hosts the `RwLock` read path adds
//!    reader parallelism on top; this sweep's speedup is the part that
//!    survives even a single-core box.
//! 2. **Fill amplification.** Eight threads race `get_or_load` on a
//!    fresh cold key every round against a slow loader, with
//!    single-flight on and off. The on/off loader-invocation ratio is
//!    the stampede factor the in-flight fill table removes.
//!
//! Usage (also aliased as `cargo bench-kvstore`):
//!
//! ```text
//! bench_kvstore [--ops N] [--threads 1,2,4,8] [--depth D] [--keyspace K]
//!               [--value-bytes B] [--rounds R] [--seed S]
//!               [--out BENCH_kvstore.json]
//! ```

#![forbid(unsafe_code)]

use dcperf_kvstore::shard::Shard;
use dcperf_kvstore::{Cache, CacheConfig};
use dcperf_tax::hash::fnv1a;
use dcperf_util::{Rng, Xoshiro256pp, Zipf};
use parking_lot::Mutex;
use serde::Serialize;
use std::collections::hash_map::RandomState;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Shard count used by both cache builds in the read-path sweep.
const SHARDS: usize = 4;

/// Hot-key Zipf exponent (the skew the DCPerf cache workloads model).
const ZIPF_S: f64 = 0.99;

/// Timed repetitions per read mode; modes are interleaved round-robin
/// and each mode keeps its fastest repetition, so slow host-frequency
/// drift cancels out of the reported ratios.
const READ_REPS: usize = 9;

#[derive(Debug, Serialize)]
struct ReadPoint {
    threads: usize,
    skew: &'static str,
    burst_depth: usize,
    total_ops: u64,
    baseline_mutex_rps: f64,
    rwlock_scalar_rps: f64,
    rwlock_batched_rps: f64,
    /// Batched `get_many` bursts vs the pre-rewrite scalar mutex path —
    /// the headline regression-tracked ratio.
    speedup: f64,
    scalar_speedup: f64,
}

#[derive(Debug, Serialize)]
struct FillSide {
    single_flight: bool,
    rounds: u64,
    loader_runs: u64,
    /// Loader runs per cold round; 1.0 means every miss burst coalesced.
    amplification: f64,
    singleflight_fills: u64,
    singleflight_waits: u64,
}

#[derive(Debug, Serialize)]
struct BenchOutput {
    benchmark: String,
    seed: u64,
    key_space: u64,
    value_bytes: usize,
    shards: usize,
    zipf_s: f64,
    read_reps: usize,
    recency_sample_every: u32,
    read_path: Vec<ReadPoint>,
    fill_threads: usize,
    fill_amplification: Vec<FillSide>,
}

struct Args {
    ops: u64,
    threads: Vec<usize>,
    depth: usize,
    keyspace: u64,
    value_bytes: usize,
    rounds: u64,
    seed: u64,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        ops: 1_200_000,
        threads: vec![1, 2, 4, 8],
        depth: 16,
        keyspace: 4_096,
        value_bytes: 128,
        rounds: 24,
        seed: 42,
        out: "BENCH_kvstore.json".to_owned(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--ops" => args.ops = value("--ops")?.parse().map_err(|e| format!("--ops: {e}"))?,
            "--threads" => {
                args.threads = value("--threads")?
                    .split(',')
                    .map(|t| t.trim().parse().map_err(|e| format!("--threads: {e}")))
                    .collect::<Result<Vec<usize>, String>>()?;
            }
            "--depth" => {
                args.depth = value("--depth")?
                    .parse()
                    .map_err(|e| format!("--depth: {e}"))?;
            }
            "--keyspace" => {
                args.keyspace = value("--keyspace")?
                    .parse()
                    .map_err(|e| format!("--keyspace: {e}"))?;
            }
            "--value-bytes" => {
                args.value_bytes = value("--value-bytes")?
                    .parse()
                    .map_err(|e| format!("--value-bytes: {e}"))?;
            }
            "--rounds" => {
                args.rounds = value("--rounds")?
                    .parse()
                    .map_err(|e| format!("--rounds: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--out" => args.out = value("--out")?,
            "--help" | "-h" => {
                return Err(
                    "usage: bench_kvstore [--ops N] [--threads CSV] [--depth D] \
                     [--keyspace K] [--value-bytes B] [--rounds R] [--seed S] [--out PATH]"
                        .to_owned(),
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.threads.is_empty() || args.threads.contains(&0) {
        return Err("--threads must list at least one nonzero count".to_owned());
    }
    if args.keyspace == 0 || args.ops == 0 || args.rounds == 0 || args.depth == 0 {
        return Err("--keyspace, --ops, --rounds, and --depth must be nonzero".to_owned());
    }
    Ok(args)
}

/// The pre-rewrite read path, reconstructed faithfully: every lookup
/// reads the clock, takes its shard's exclusive lock, refreshes LRU
/// recency inline through [`Shard::get`] over the era's SipHash key map
/// (`RandomState`), and bumps a hit/miss counter — exactly the per-op
/// cost profile `Cache::get` had before the `RwLock` + batched-recency +
/// batch-API + FNV-map change. Kept here (not in the library) so the
/// library carries only the current implementation.
struct MutexShardedCache {
    shards: Vec<Mutex<Shard<RandomState>>>,
    mask: u64,
    epoch: Instant,
    // Boxed like the pre-PR `CacheStats`, which held `Arc<Counter>`
    // telemetry handles — each bump paid a pointer chase.
    hits: Arc<AtomicU64>,
    misses: Arc<AtomicU64>,
}

impl MutexShardedCache {
    fn new(capacity_bytes: usize, shards: usize) -> Self {
        let shards = shards.next_power_of_two();
        let per_shard = capacity_bytes / shards;
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::with_hasher(per_shard, RandomState::new())))
                .collect(),
            mask: shards as u64 - 1,
            epoch: Instant::now(),
            hits: Arc::new(AtomicU64::new(0)),
            misses: Arc::new(AtomicU64::new(0)),
        }
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn shard_for(&self, key: &[u8]) -> &Mutex<Shard<RandomState>> {
        // Same FNV-1a shard selection as `Cache`, so both builds see an
        // identical key-to-shard distribution.
        &self.shards[(fnv1a(key) & self.mask) as usize]
    }

    fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let now = self.now_ms();
        let result = self.shard_for(key).lock().get(key, now);
        match &result {
            // ordering: relaxed stat counter, aggregated after the run
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            // ordering: relaxed stat counter, aggregated after the run
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        result
    }

    fn set(&self, key: &[u8], value: Vec<u8>) {
        let now = self.now_ms();
        self.shard_for(key).lock().insert(key, value, None, now);
    }
}

fn key_bytes(id: u64) -> [u8; 8] {
    id.to_le_bytes()
}

/// Pre-computes one deterministic key stream per thread. Streams depend
/// only on (seed, skew, thread index), so every cache build replays
/// byte-identical traffic.
fn key_streams(
    seed: u64,
    skew: &str,
    threads: usize,
    ops_per_thread: u64,
    keyspace: u64,
) -> Vec<Vec<[u8; 8]>> {
    let zipf = Zipf::new(keyspace, ZIPF_S).expect("zipf parameters are valid");
    (0..threads)
        .map(|t| {
            let mut rng = Xoshiro256pp::seed_from_u64(
                seed ^ (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ fnv1a(skew.as_bytes()),
            );
            (0..ops_per_thread)
                .map(|_| {
                    let id = match skew {
                        "uniform" => rng.gen_range(0, keyspace),
                        _ => zipf.sample(&mut rng),
                    };
                    key_bytes(id)
                })
                .collect()
        })
        .collect()
}

/// Runs every thread's lookup pass and returns elapsed wall-clock
/// seconds from barrier release to last completion. Each pass must stay
/// on the hit path (the working set is fully resident) and reports its
/// hit count for verification.
fn timed_reads<C, F>(cache: &Arc<C>, streams: &[Vec<[u8; 8]>], pass: F) -> f64
where
    C: Send + Sync + 'static,
    F: Fn(&C, &[[u8; 8]]) -> u64 + Send + Sync + 'static,
{
    let pass = Arc::new(pass);
    let barrier = Arc::new(Barrier::new(streams.len()));
    // Stamped by whichever worker the scheduler runs first after the
    // barrier trips. Stamping in the coordinating thread instead would
    // undercount on an oversubscribed host: workers can burn whole
    // timeslices before the coordinator gets scheduled again.
    let started: Arc<std::sync::OnceLock<Instant>> = Arc::new(std::sync::OnceLock::new());
    let handles: Vec<_> = streams
        .iter()
        .map(|stream| {
            let cache = Arc::clone(cache);
            let pass = Arc::clone(&pass);
            let barrier = Arc::clone(&barrier);
            let started = Arc::clone(&started);
            let stream = stream.clone();
            std::thread::spawn(move || {
                barrier.wait();
                started.get_or_init(Instant::now);
                let hits = pass(&cache, &stream);
                assert_eq!(hits, stream.len() as u64, "sweep must stay on the hit path");
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("reader thread");
    }
    let elapsed = started.get().map(Instant::elapsed).unwrap_or_default();
    elapsed.as_secs_f64()
}

/// Scalar pass: one `get` per key. Generic over the hit payload so the
/// same driver covers the baseline's owned `Vec<u8>` and the current
/// cache's shared `Arc<[u8]>` — each side pays its own representation's
/// hand-out cost (a copy vs a refcount bump).
fn scalar_pass<C, V>(get: impl Fn(&C, &[u8]) -> Option<V>) -> impl Fn(&C, &[[u8; 8]]) -> u64 {
    move |cache, stream| {
        stream
            .iter()
            .filter(|key| get(cache, &key[..]).is_some())
            .count() as u64
    }
}

/// Burst pass: one `get_many` per `depth` keys, as the pipelined RPC
/// handlers issue it.
fn batched_pass(depth: usize) -> impl Fn(&Cache, &[[u8; 8]]) -> u64 {
    move |cache, stream| {
        let mut hits = 0u64;
        let mut refs: Vec<&[u8]> = Vec::with_capacity(depth);
        for burst in stream.chunks(depth) {
            refs.clear();
            refs.extend(burst.iter().map(|k| &k[..]));
            hits += cache
                .get_many(&refs)
                .iter()
                .filter(|found| found.is_some())
                .count() as u64;
        }
        hits
    }
}

/// One read-path sweep point: populates the cache builds with the full
/// key space, replays the same streams against each, and reports rps.
fn run_read_point(args: &Args, threads: usize, skew: &'static str) -> ReadPoint {
    // Ample capacity: every key stays resident, so the sweep measures
    // lock behaviour rather than eviction.
    let capacity = (args.keyspace as usize) * (args.value_bytes + 128) * 2;
    let ops_per_thread = args.ops / threads as u64;
    let total_ops = ops_per_thread * threads as u64;

    let value = vec![0xA5u8; args.value_bytes];
    let streams = key_streams(args.seed, skew, threads, ops_per_thread, args.keyspace);
    let warmup = key_streams(
        args.seed ^ 0xDEAD,
        skew,
        threads,
        (ops_per_thread / 10).max(64),
        args.keyspace,
    );

    // Interleave the three modes and keep each mode's best repetition.
    // Each repetition rebuilds, repopulates, and rewarms both caches:
    // host frequency drift moves all modes together on a seconds scale,
    // and rebuilding resamples allocator layout (which is otherwise
    // frozen per cache build and can skew one mode an entire run), so
    // round-robin min-of-reps keeps the *ratios* stable even when
    // absolute throughput wobbles between runs.
    let mut mutex_elapsed = f64::INFINITY;
    let mut rw_scalar_elapsed = f64::INFINITY;
    let mut rw_batched_elapsed = f64::INFINITY;
    for _ in 0..READ_REPS {
        let mutex_cache = Arc::new(MutexShardedCache::new(capacity, SHARDS));
        let rw_cache = Arc::new(Cache::new(
            CacheConfig::with_capacity_bytes(capacity).with_shards(SHARDS),
        ));
        for id in 0..args.keyspace {
            mutex_cache.set(&key_bytes(id), value.clone());
            rw_cache.set(&key_bytes(id), value.clone());
        }
        timed_reads(&mutex_cache, &warmup, scalar_pass(MutexShardedCache::get));
        timed_reads(&rw_cache, &warmup, scalar_pass(|c: &Cache, k| c.get(k)));
        timed_reads(&rw_cache, &warmup, batched_pass(args.depth));

        mutex_elapsed = mutex_elapsed.min(timed_reads(
            &mutex_cache,
            &streams,
            scalar_pass(MutexShardedCache::get),
        ));
        rw_scalar_elapsed = rw_scalar_elapsed.min(timed_reads(
            &rw_cache,
            &streams,
            scalar_pass(|c: &Cache, k| c.get(k)),
        ));
        rw_batched_elapsed =
            rw_batched_elapsed.min(timed_reads(&rw_cache, &streams, batched_pass(args.depth)));
    }

    let baseline_mutex_rps = total_ops as f64 / mutex_elapsed;
    let rwlock_scalar_rps = total_ops as f64 / rw_scalar_elapsed;
    let rwlock_batched_rps = total_ops as f64 / rw_batched_elapsed;
    ReadPoint {
        threads,
        skew,
        burst_depth: args.depth,
        total_ops,
        baseline_mutex_rps,
        rwlock_scalar_rps,
        rwlock_batched_rps,
        speedup: rwlock_batched_rps / baseline_mutex_rps,
        scalar_speedup: rwlock_scalar_rps / baseline_mutex_rps,
    }
}

/// Races `fill_threads` callers at a fresh cold key each round against a
/// sleeping loader and counts loader invocations. With single-flight on,
/// one leader loads per round; off, every racing miss loads.
fn run_fill_side(args: &Args, fill_threads: usize, single_flight: bool) -> FillSide {
    let config = CacheConfig::with_capacity_bytes(1 << 20).with_shards(1);
    let config = if single_flight {
        config
    } else {
        config.without_single_flight()
    };
    let cache = Arc::new(Cache::new(config));
    let loader_runs = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(fill_threads));
    let rounds = args.rounds;
    let tag = u64::from(single_flight);

    let handles: Vec<_> = (0..fill_threads)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let loader_runs = Arc::clone(&loader_runs);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                for round in 0..rounds {
                    let key = [key_bytes(round), key_bytes(tag)].concat();
                    barrier.wait();
                    let got = cache.get_or_load(&key, |_| {
                        // ordering: relaxed run counter, read only after all threads join
                        loader_runs.fetch_add(1, Ordering::Relaxed);
                        // Slow enough that every racer arrives while the
                        // fill is still in flight, as a stalled backing
                        // store would hold it.
                        std::thread::sleep(Duration::from_millis(2));
                        Some(round.to_le_bytes().to_vec())
                    });
                    assert_eq!(got.as_deref(), Some(&round.to_le_bytes()[..]));
                    barrier.wait();
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("fill thread");
    }

    // ordering: relaxed counter read after join; threads are done
    let loader_runs = loader_runs.load(Ordering::Relaxed);
    FillSide {
        single_flight,
        rounds,
        loader_runs,
        amplification: loader_runs as f64 / rounds as f64,
        singleflight_fills: cache.stats().singleflight_fills(),
        singleflight_waits: cache.stats().singleflight_waits(),
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    eprintln!(
        "bench_kvstore: {} ops/point, threads {:?}, depth {}, keyspace {}, seed {}",
        args.ops, args.threads, args.depth, args.keyspace, args.seed
    );

    let mut read_path = Vec::new();
    for &threads in &args.threads {
        for skew in ["uniform", "zipf"] {
            let point = run_read_point(&args, threads, skew);
            eprintln!(
                "  read {:>7} x{:>2} threads: mutex {:>9.0}  rw-scalar {:>9.0}  \
                 rw-batched {:>9.0} rps  {:.2}x",
                point.skew,
                point.threads,
                point.baseline_mutex_rps,
                point.rwlock_scalar_rps,
                point.rwlock_batched_rps,
                point.speedup,
            );
            read_path.push(point);
        }
    }

    let fill_threads = 8;
    let fill_amplification: Vec<FillSide> = [true, false]
        .into_iter()
        .map(|on| {
            let side = run_fill_side(&args, fill_threads, on);
            eprintln!(
                "  fill single_flight={:<5}: {} loader runs / {} rounds = {:.2}x amplification",
                side.single_flight, side.loader_runs, side.rounds, side.amplification,
            );
            side
        })
        .collect();

    let output = BenchOutput {
        benchmark: "kvstore_read_path_and_fill_amplification".to_owned(),
        seed: args.seed,
        key_space: args.keyspace,
        value_bytes: args.value_bytes,
        shards: SHARDS,
        zipf_s: ZIPF_S,
        read_reps: READ_REPS,
        recency_sample_every: dcperf_kvstore::DEFAULT_RECENCY_SAMPLE,
        read_path,
        fill_threads,
        fill_amplification,
    };
    let json = serde_json::to_string_pretty(&output).expect("serialize bench output");
    std::fs::write(&args.out, format!("{json}\n")).expect("write bench output");
    eprintln!("wrote {}", args.out);
}
