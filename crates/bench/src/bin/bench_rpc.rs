//! Deterministic RPC pipelining regression benchmark.
//!
//! Sweeps the client pipeline depth against a loopback [`TcpServer`] echo
//! handler and reports throughput plus per-request batch-turn latency for
//! each depth. Depth 1 is the classic one-request-per-turn baseline; the
//! emitted JSON records each depth's speedup against it so CI can assert
//! the pipelined path keeps its win.
//!
//! Usage (also aliased as `cargo bench-rpc`):
//!
//! ```text
//! bench_rpc [--requests N] [--payload BYTES] [--depths 1,2,4,8,16,32]
//!           [--seed S] [--out BENCH_rpc_pipeline.json]
//! ```
//!
//! The request stream is derived from the seed alone, so two runs with the
//! same arguments issue byte-identical traffic.

#![forbid(unsafe_code)]

use dcperf_rpc::{PipelineConfig, PoolConfig, Response, TcpClient, TcpServer};
use dcperf_util::{Histogram, Rng, Xoshiro256pp};
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct DepthResult {
    depth: usize,
    requests: u64,
    elapsed_ms: f64,
    throughput_rps: f64,
    latency_p50_us: f64,
    latency_p99_us: f64,
    speedup_vs_depth1: f64,
}

#[derive(Debug, Serialize)]
struct BenchOutput {
    benchmark: String,
    seed: u64,
    requests_per_depth: u64,
    payload_bytes: usize,
    server_pipeline_max_inflight: usize,
    server_pipeline_max_batch: usize,
    depths: Vec<DepthResult>,
}

struct Args {
    requests: u64,
    payload: usize,
    depths: Vec<usize>,
    seed: u64,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        requests: 4_000,
        payload: 64,
        depths: vec![1, 2, 4, 8, 16, 32],
        seed: 42,
        out: "BENCH_rpc_pipeline.json".to_owned(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--requests" => {
                args.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?;
            }
            "--payload" => {
                args.payload = value("--payload")?
                    .parse()
                    .map_err(|e| format!("--payload: {e}"))?;
            }
            "--depths" => {
                args.depths = value("--depths")?
                    .split(',')
                    .map(|d| d.trim().parse().map_err(|e| format!("--depths: {e}")))
                    .collect::<Result<Vec<usize>, String>>()?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--out" => args.out = value("--out")?,
            "--help" | "-h" => {
                return Err(
                    "usage: bench_rpc [--requests N] [--payload BYTES] [--depths CSV] \
                     [--seed S] [--out PATH]"
                        .to_owned(),
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.depths.is_empty() || args.depths.contains(&0) {
        return Err("--depths must list at least one nonzero depth".to_owned());
    }
    Ok(args)
}

/// Builds the deterministic payload for request `i`.
fn payload_for(rng_seed: u64, i: u64, len: usize) -> Vec<u8> {
    let mut rng = Xoshiro256pp::seed_from_u64(rng_seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut body = vec![0u8; len];
    rng.fill_bytes(&mut body);
    body
}

/// One sweep point: issues `requests` echoes at the given depth and
/// returns (elapsed, per-request batch-turn latency histogram).
fn run_depth(
    addr: std::net::SocketAddr,
    depth: usize,
    requests: u64,
    payload: usize,
    seed: u64,
) -> std::io::Result<(f64, Histogram)> {
    let mut client = TcpClient::connect(addr)?.with_window(depth);
    let mut hist = Histogram::new();
    let started = Instant::now();
    let mut issued = 0u64;
    while issued < requests {
        let batch = depth.min((requests - issued) as usize);
        if batch == 1 {
            let body = payload_for(seed, issued, payload);
            let t0 = Instant::now();
            let resp = client
                .call("echo", body)
                .map_err(|e| std::io::Error::other(e.to_string()))?;
            hist.record(t0.elapsed().as_nanos() as u64);
            assert_eq!(resp.body.len(), payload, "echo must return the payload");
            issued += 1;
            continue;
        }
        let bodies: Vec<Vec<u8>> = (0..batch as u64)
            .map(|j| payload_for(seed, issued + j, payload))
            .collect();
        let t0 = Instant::now();
        let outcomes = client.call_many("echo", bodies);
        let turn_ns = t0.elapsed().as_nanos() as u64;
        for outcome in outcomes {
            let resp = outcome.map_err(|e| std::io::Error::other(e.to_string()))?;
            assert_eq!(resp.body.len(), payload, "echo must return the payload");
            hist.record(turn_ns);
        }
        issued += batch as u64;
    }
    Ok((started.elapsed().as_secs_f64(), hist))
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    let pipeline = PipelineConfig::default();
    let server = TcpServer::bind_with_pipeline(
        "127.0.0.1:0",
        |req: &dcperf_rpc::Request| Response::ok(req.body.clone()),
        PoolConfig::single_lane(4).with_queue_depth(4096),
        pipeline,
    )
    .expect("bind loopback echo server");
    let addr = server.local_addr();

    eprintln!(
        "bench_rpc: {} requests x {} depths, {}B payload, seed {}",
        args.requests,
        args.depths.len(),
        args.payload,
        args.seed
    );

    let mut depths = Vec::with_capacity(args.depths.len());
    let mut baseline_rps = None;
    for &depth in &args.depths {
        // One untimed warmup pass per depth settles connections and pools.
        run_depth(
            addr,
            depth,
            (args.requests / 10).max(64),
            args.payload,
            args.seed,
        )
        .expect("warmup");
        let (elapsed, hist) =
            run_depth(addr, depth, args.requests, args.payload, args.seed).expect("sweep");
        let rps = args.requests as f64 / elapsed;
        if depth == 1 || baseline_rps.is_none() {
            baseline_rps.get_or_insert(rps);
        }
        let speedup = rps / baseline_rps.unwrap_or(rps);
        eprintln!(
            "  depth {depth:>3}: {rps:>10.0} rps  p50 {:>8.1}us  p99 {:>8.1}us  {speedup:.2}x",
            hist.p50() as f64 / 1e3,
            hist.p99() as f64 / 1e3,
        );
        depths.push(DepthResult {
            depth,
            requests: args.requests,
            elapsed_ms: elapsed * 1e3,
            throughput_rps: rps,
            latency_p50_us: hist.p50() as f64 / 1e3,
            latency_p99_us: hist.p99() as f64 / 1e3,
            speedup_vs_depth1: speedup,
        });
    }

    let output = BenchOutput {
        benchmark: "rpc_pipeline_depth_sweep".to_owned(),
        seed: args.seed,
        requests_per_depth: args.requests,
        payload_bytes: args.payload,
        server_pipeline_max_inflight: pipeline.max_inflight,
        server_pipeline_max_batch: pipeline.max_batch,
        depths,
    };
    let json = serde_json::to_string_pretty(&output).expect("serialize bench output");
    std::fs::write(&args.out, format!("{json}\n")).expect("write bench output");
    eprintln!("wrote {}", args.out);
    server.shutdown();
}
