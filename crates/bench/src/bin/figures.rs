//! CLI that regenerates the paper's tables and figures.
//!
//! Usage: `figures all` or `figures fig2 fig14 table3 …`.

#![forbid(unsafe_code)]

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!("usage: figures all | <id>...");
        eprintln!("ids: {}", dcperf_bench::FIGURE_IDS.join(", "));
        std::process::exit(2);
    }
    if args.iter().any(|a| a == "all") {
        print!("{}", dcperf_bench::render_all());
        return;
    }
    for id in &args {
        match dcperf_bench::render(id) {
            Ok(text) => {
                println!("==================== {id} ====================");
                print!("{text}");
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }
}
