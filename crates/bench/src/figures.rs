//! Renderers for every table and figure in the paper's evaluation.

use dcperf_platform::cloudsuite::{self, InMemoryBench};
use dcperf_platform::model::OsConfig;
use dcperf_platform::profile::profiles;
use dcperf_platform::{projection, sku, vendor, Model, WorkloadProfile};
use std::fmt::Write as _;

/// Every renderable id, in paper order.
pub const FIGURE_IDS: [&str; 21] = [
    "table1", "table2", "table3", "table4", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
    "fig9", "fig10", "fig11", "fig12", "fig13a", "fig13b", "fig13c", "fig14", "fig15", "fig16",
];

/// Renders one table/figure by id.
///
/// # Errors
///
/// Returns an error message for unknown ids.
pub fn render(id: &str) -> Result<String, String> {
    match id {
        "table1" => Ok(table1()),
        "table2" => Ok(table2()),
        "table3" => Ok(sku::render_table3()),
        "table4" => Ok(sku::render_table4()),
        "fig2" => Ok(fig2()),
        "fig3" => Ok(fig3()),
        "fig4" => Ok(fig4()),
        "fig5" => Ok(fig5()),
        "fig6" => Ok(micro_metric_figure(
            "Figure 6: IPC per physical core (SMT on), SKU2",
            "IPC",
            |est| est.ipc,
        )),
        "fig7" => Ok(micro_metric_figure(
            "Figure 7: memory bandwidth consumption (GB/s), SKU2",
            "GB/s",
            |est| est.mem_bw_gbs,
        )),
        "fig8" => Ok(micro_metric_figure(
            "Figure 8: L1 I-cache misses (MPKI), SKU2",
            "MPKI",
            |est| est.l1i_mpki,
        )),
        "fig9" => Ok(fig9()),
        "fig10" => Ok(fig10()),
        "fig11" => Ok(micro_metric_figure(
            "Figure 11: core frequency (GHz), SKU2",
            "GHz",
            |est| est.freq_ghz,
        )),
        "fig12" => Ok(fig12()),
        "fig13a" => Ok(fig13a()),
        "fig13b" => Ok(fig13b()),
        "fig13c" => Ok(fig13c()),
        "fig14" => Ok(fig14()),
        "fig15" => Ok(fig15()),
        "fig16" => Ok(fig16()),
        other => Err(format!(
            "unknown figure id '{other}'; known ids: {}",
            FIGURE_IDS.join(", ")
        )),
    }
}

/// Renders every table and figure, in paper order.
pub fn render_all() -> String {
    let mut out = String::new();
    for id in FIGURE_IDS {
        out.push_str(&format!("==================== {id} ====================\n"));
        out.push_str(&render(id).expect("built-in ids render"));
        out.push('\n');
    }
    out
}

fn table1() -> String {
    let mut out = String::from(
        "Table 1: workloads modeled in DCPerf (N(n) = same order of magnitude as n)\n",
    );
    let rows = [
        (
            "Workload",
            "Web",
            "Ranking",
            "Data Caching",
            "Big Data",
            "Media Proc.",
        ),
        (
            "Benchmarks",
            "MediaWiki, DjangoBench",
            "FeedSim",
            "TaoBench",
            "SparkBench",
            "VideoTranscode",
        ),
        (
            "Perf. metric",
            "Peak RPS",
            "RPS under latency SLO",
            "Peak RPS + hit rate",
            "Throughput",
            "Throughput",
        ),
        (
            "Req. proc. time",
            "Seconds",
            "Seconds",
            "Milliseconds",
            "Minutes",
            "Minutes",
        ),
        (
            "Peak CPU util.",
            "90-100%",
            "50-70%",
            "80%",
            "60-80%",
            "95-100%",
        ),
        ("Thread:core", "N(100)", "N(10)", "N(10)", "N(1)", "N(1)"),
        (
            "Per-server RPS",
            "N(1K)",
            "N(100)",
            "N(1M)",
            "N(10)",
            "N(10)",
        ),
        ("RPC fanout", "N(100)", "N(10)", "N(10)", "N(10)", "0"),
        (
            "Instr/request",
            "N(1B)",
            "N(10B)",
            "N(1K)",
            "N(10B)",
            "N(1M)",
        ),
    ];
    for row in rows {
        let _ = writeln!(
            out,
            "{:<16} {:<24} {:<22} {:<20} {:<12} {:<14}",
            row.0, row.1, row.2, row.3, row.4, row.5
        );
    }
    out
}

fn table2() -> String {
    let mut out = String::from(
        "Table 2: software stacks (paper) and the from-scratch Rust substitutes (this repo)\n",
    );
    let rows = [
        (
            "MediaWiki",
            "HHVM, MediaWiki, Memcached, MySQL, Nginx, wrk",
            "wiki-markup renderer + dcperf-kvstore + row store + siege-style loadgen",
        ),
        (
            "DjangoBench",
            "Django, UWSGI, Cassandra, Memcached",
            "share-nothing worker-per-core app + wide-row store + dcperf-kvstore",
        ),
        (
            "FeedSim",
            "OLDIsim, Zlib/Snappy, OpenSSL/fizz, FBThrift/Wangle",
            "feature-extract/rank pipeline + dcperf-tax (compress/crypto) + dcperf-rpc",
        ),
        (
            "TaoBench",
            "Memcached, Memtier, Folly, fmt, libevent",
            "dcperf-kvstore read-through cache + memtier-style client + fast/slow pools",
        ),
        (
            "SparkBench",
            "Apache Spark, OpenJDK, SparkSQL",
            "mini columnar engine with spill-to-disk shuffle (dcperf-workloads::spark)",
        ),
        (
            "VideoTranscode",
            "ffmpeg, svt-av1, libaom, x264",
            "resize ladder + 8x8 DCT block encoder (dcperf-workloads::video)",
        ),
    ];
    for (bench, paper, ours) in rows {
        let _ = writeln!(out, "{bench:<14} paper: {paper}\n{:<14} ours : {ours}", "");
    }
    out
}

fn fig2() -> String {
    let model = Model::new();
    let scores = projection::figure2(&model);
    let mut out = String::from(
        "Figure 2: performance of SKUs normalized to SKU1\nsuite        SKU1   SKU2   SKU3   SKU4\n",
    );
    for suite in ["Production", "DCPerf", "SPEC 2006", "SPEC 2017"] {
        let row: Vec<f64> = scores
            .iter()
            .filter(|s| s.suite == suite)
            .map(|s| s.score)
            .collect();
        let _ = writeln!(
            out,
            "{suite:<12} {:.2}   {:.2}   {:.2}   {:.2}",
            row[0], row[1], row[2], row[3]
        );
    }
    out.push_str("paper:       Production 1/1.25/1.74/4.50, DCPerf 1/1.24/1.69/4.65,\n");
    out.push_str("             SPEC06 1/1.24/1.67/5.42, SPEC17 1/1.32/1.90/5.75\n");
    out
}

fn fig3() -> String {
    let model = Model::new();
    let errors = projection::figure3(&model);
    let mut out = String::from(
        "Figure 3: relative error of performance projection vs production (%)\nsuite        SKU1    SKU2    SKU3    SKU4\n",
    );
    for suite in ["DCPerf", "SPEC 2006", "SPEC 2017"] {
        let row: Vec<f64> = errors
            .iter()
            .filter(|s| s.suite == suite)
            .map(|s| s.score)
            .collect();
        let _ = writeln!(
            out,
            "{suite:<12} {:+.1}%  {:+.1}%  {:+.1}%  {:+.1}%",
            row[0], row[1], row[2], row[3]
        );
    }
    out.push_str("paper:       DCPerf 0/-0.8/-2.9/+3.3, SPEC06 0/-0.8/-4.0/+20.4,\n");
    out.push_str("             SPEC17 0/+5.6/+9.2/+27.8\n");
    out
}

fn evaluation_columns() -> Vec<WorkloadProfile> {
    let mut cols = Vec::new();
    for (bench, prod) in profiles::dcperf_production_pairs() {
        cols.push(prod);
        cols.push(bench);
    }
    cols.extend(profiles::spec2017_suite());
    cols
}

fn fig4() -> String {
    let model = Model::new();
    let os = OsConfig::default();
    let mut out = String::from(
        "Figure 4: TMAM profiles on SKU2 (percent of pipeline slots)\nworkload              frontend  badspec  backend  retiring\n",
    );
    for p in evaluation_columns() {
        let t = model.evaluate(&p, &sku::SKU2, &os).tmam;
        let _ = writeln!(
            out,
            "{:<22} {:>7.0}  {:>7.0}  {:>7.0}  {:>8.0}",
            p.name, t.frontend, t.bad_spec, t.backend, t.retiring
        );
    }
    out
}

fn fig5() -> String {
    let model = Model::new();
    let os = OsConfig::default();
    let mut out = String::from(
        "Figure 5: average TMAM components (percent of pipeline slots)\nsuite        frontend  badspec  backend  retiring\n",
    );
    let suites: [(&str, Vec<WorkloadProfile>); 3] = [
        ("Prod", profiles::production_suite()),
        ("DCPerf", profiles::dcperf_suite()),
        ("SPEC2017", profiles::spec2017_suite()),
    ];
    for (label, suite) in suites {
        let n = suite.len() as f64;
        let mut f = 0.0;
        let mut b = 0.0;
        let mut be = 0.0;
        let mut r = 0.0;
        for p in &suite {
            let t = model.evaluate(p, &sku::SKU2, &os).tmam;
            f += t.frontend;
            b += t.bad_spec;
            be += t.backend;
            r += t.retiring;
        }
        let _ = writeln!(
            out,
            "{label:<12} {:>7.0}  {:>7.0}  {:>7.0}  {:>8.0}",
            f / n,
            b / n,
            be / n,
            r / n
        );
    }
    out.push_str("paper: Prod 36/9/16/39, DCPerf 34/9/13/45, SPEC17 20/9/24/47\n");
    out
}

fn micro_metric_figure(
    title: &str,
    unit: &str,
    metric: impl Fn(&dcperf_platform::PerfEstimate) -> f64,
) -> String {
    let model = Model::new();
    let os = OsConfig::default();
    let mut out = format!("{title}\nworkload              {unit}\n");
    for p in evaluation_columns() {
        let est = model.evaluate(&p, &sku::SKU2, &os);
        let _ = writeln!(out, "{:<22} {:>8.2}", p.name, metric(&est));
    }
    out
}

fn fig9() -> String {
    let model = Model::new();
    let os = OsConfig::default();
    let mut out = String::from(
        "Figure 9: CPU utilization on SKU2 (percent)\nworkload              total    sys\n",
    );
    for p in evaluation_columns() {
        let est = model.evaluate(&p, &sku::SKU2, &os);
        let _ = writeln!(
            out,
            "{:<22} {:>5.0}  {:>5.1}",
            p.name, est.cpu_util_total, est.cpu_util_sys
        );
    }
    out
}

fn fig10() -> String {
    let model = Model::new();
    let os = OsConfig::default();
    let mut out = String::from(
        "Figure 10: power as percent of server design power, SKU2\nworkload              core   soc  dram  other  TOTAL\n",
    );
    let mut cols: Vec<WorkloadProfile> = vec![
        profiles::fbweb_prod(),
        profiles::mediawiki(),
        profiles::igweb_prod(),
        profiles::djangobench(),
        profiles::ranking_prod(),
        profiles::feedsim(),
    ];
    for setting in 1..=3u8 {
        cols.push(profiles::video_prod(setting));
        cols.push(profiles::videobench(setting));
    }
    cols.extend(profiles::spec2017_suite());
    for p in cols {
        let pw = model.evaluate(&p, &sku::SKU2, &os).power_pct;
        let _ = writeln!(
            out,
            "{:<22} {:>4.0}  {:>4.0}  {:>4.0}  {:>5.0}  {:>5.0}",
            p.name,
            pw.core,
            pw.soc,
            pw.dram,
            pw.other,
            pw.total()
        );
    }
    out.push_str("paper averages: Prod 87%, DCPerf 84%, SPEC 78%\n");
    out
}

fn fig12() -> String {
    let mut out =
        String::from("Figure 12: CPU-cycle breakdown, application logic vs datacenter tax\n");
    for (bench, prod) in profiles::dcperf_production_pairs() {
        for p in [prod, bench] {
            if p.tax.is_empty() {
                continue;
            }
            let _ = writeln!(
                out,
                "{:<16} app {:>4.0}%  tax {:>4.0}%",
                p.name,
                p.app_percent(),
                p.tax_percent()
            );
            for s in &p.tax {
                let _ = writeln!(out, "    {:<28} {:>5.1}%", s.label, s.percent);
            }
        }
    }
    out
}

fn fig13a() -> String {
    let mut out = String::from("Figure 13a: CloudSuite Data Caching, RPS vs CPU utilization\n");
    for (label, cores) in [("SKU-A (72 cores)", 72u32), ("SKU4 (176 cores)", 176)] {
        let _ = writeln!(out, "{label}:");
        for p in cloudsuite::figure13a(cores) {
            let _ = writeln!(out, "  util {:>4.0}%  {:>8.0} RPS", p.cpu_util, p.rps);
        }
    }
    out.push_str("shape: 7.3x util gain buys only +26% RPS on 72 cores; RPS falls on 176\n");
    out
}

fn fig13b() -> String {
    let mut out = String::from(
        "Figure 13b: CloudSuite Web Serving vs load scale (SKU4)\nload   ops/s  errors/s  cpu%\n",
    );
    for p in cloudsuite::figure13b() {
        let _ = writeln!(
            out,
            "{:>4}  {:>6.1}  {:>8.1}  {:>4.0}",
            p.load_scale, p.ops_per_sec, p.errors_per_sec, p.cpu_util
        );
    }
    out.push_str("shape: ops plateau past 100; 504 timeouts past 140 at <50% CPU\n");
    out
}

fn fig13c() -> String {
    let mut out = String::from(
        "Figure 13c: CPU utilization timeline (SKU4)\nt(s)   CloudSuite-ALS  SparkBench\n",
    );
    let cs = cloudsuite::figure13c(InMemoryBench::CloudSuiteAnalytics);
    let sb = cloudsuite::figure13c(InMemoryBench::SparkBench);
    for (a, b) in cs.iter().zip(&sb).step_by(5) {
        let _ = writeln!(
            out,
            "{:>4}   {:>13.0}%  {:>9.0}%",
            a.elapsed_s, a.cpu_util, b.cpu_util
        );
    }
    out.push_str(
        "shape: ALS stuck ~20% for the whole run; SparkBench 60% I/O stages then 80% compute\n",
    );
    out
}

fn fig14() -> String {
    let model = Model::new();
    let rows = projection::figure14(&model);
    let mut out = String::from(
        "Figure 14: Perf/Watt normalized to SKU1\nbenchmark      SKU4   SKU-A  SKU-B\n",
    );
    let mut names: Vec<String> = Vec::new();
    for r in &rows {
        if !names.contains(&r.benchmark) {
            names.push(r.benchmark.clone());
        }
    }
    for name in names {
        let cell = |sku: &str| {
            rows.iter()
                .find(|r| r.benchmark == name && r.sku == sku)
                .map(|r| r.value)
                .unwrap_or(0.0)
        };
        let _ = writeln!(
            out,
            "{name:<14} {:>5.1}  {:>5.1}  {:>5.1}",
            cell("SKU4"),
            cell("SKU-A"),
            cell("SKU-B")
        );
    }
    out.push_str("paper suite rows: DCPerf 1.8/2.3(+25%)/0.8(-57%), SPEC17 1.6/1.8/1.6\n");
    out
}

fn fig15() -> String {
    let model = Model::new();
    let mut out = String::from(
        "Figure 15: impact of the vendor's cache-replacement optimization\nworkload        appPerf   GIPS    IPC   L1I-miss  L2-miss  LLC-miss  MemBW\n",
    );
    for i in vendor::figure15(&model) {
        let _ = writeln!(
            out,
            "{:<15} {:>+6.1}% {:>+6.1}% {:>+6.1}% {:>+8.0}% {:>+7.0}% {:>+8.1}% {:>+6.1}%",
            i.workload, i.app_perf, i.gips, i.ipc, i.l1i_miss, i.l2_miss, i.llc_miss, i.mem_bw
        );
    }
    out.push_str(
        "paper: FBweb +2.9/+2.4/+2.2/-36/-28/-14.4/-9.9; Mediawiki +3.5/+3.0/+1.9/-36/-28/-10.2/-6.7\n",
    );
    out
}

fn fig16() -> String {
    let model = Model::new();
    let mut out =
        String::from("Figure 16: TaoBench relative performance across kernels and SKUs\n");
    for cell in projection::figure16(&model) {
        let _ = writeln!(
            out,
            "{:<14} {:<12} {:>6.0}%",
            cell.sku, cell.kernel, cell.relative_percent
        );
    }
    out.push_str("paper: 176c 6.4=100%, 384c 6.4=162%, 176c 6.9=103%, 384c 6.9=249%\n");
    out
}
