//! Criterion benchmarks for the system substrates: the cache, the RPC
//! stack, the histogram recorder, and the wiki renderer — the hot inner
//! loops of the full benchmarks.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dcperf_kvstore::{BackingStore, BackingStoreConfig, Cache, CacheConfig};
use dcperf_rpc::{InProcServer, PoolConfig, Request, Response, Value};
use dcperf_util::Histogram;
use dcperf_workloads::wiki::{self, TemplateSet};
use std::hint::black_box;

fn bench_cache(c: &mut Criterion) {
    let cache = Cache::new(CacheConfig::with_capacity_bytes(32 << 20).with_shards(8));
    let store = BackingStore::new(BackingStoreConfig::tao_like().without_latency(), 1);
    for i in 0..10_000u64 {
        cache.set(&i.to_le_bytes(), store.synthesize_for_key(&i.to_le_bytes()));
    }
    let mut group = c.benchmark_group("kvstore");
    group.throughput(Throughput::Elements(1));
    let mut i = 0u64;
    group.bench_function("get_hit", |b| {
        b.iter(|| {
            i = (i + 1) % 10_000;
            black_box(cache.get(&i.to_le_bytes()))
        })
    });
    let mut j = 0u64;
    group.bench_function("set", |b| {
        b.iter(|| {
            j += 1;
            cache.set(&(j % 20_000).to_le_bytes(), vec![0u8; 128]);
        })
    });
    let mut k = 0u64;
    group.bench_function("read_through_miss", |b| {
        b.iter(|| {
            k += 1;
            let key = (1_000_000 + k).to_le_bytes();
            black_box(cache.get_or_load(&key, |kb| store.lookup(kb)))
        })
    });
    group.finish();
}

fn bench_rpc(c: &mut Criterion) {
    let server = InProcServer::start(
        |req: &Request| Response::ok(req.body.clone()),
        PoolConfig::single_lane(2),
    );
    let client = server.client();
    let mut group = c.benchmark_group("rpc");
    group.throughput(Throughput::Elements(1));
    group.bench_function("inproc_round_trip_64b", |b| {
        b.iter(|| black_box(client.call("echo", vec![7u8; 64]).unwrap()))
    });
    let value = Value::Struct(vec![
        (1, Value::I64(42)),
        (2, Value::Str("hello world hello world".into())),
        (3, Value::List(vec![Value::F64(1.0); 16])),
    ]);
    let encoded = value.encode();
    group.bench_function("value_encode", |b| b.iter(|| black_box(value.encode())));
    group.bench_function("value_decode", |b| {
        b.iter(|| black_box(Value::decode(black_box(&encoded)).unwrap()))
    });
    group.finish();
    server.shutdown();
}

fn bench_histogram(c: &mut Criterion) {
    let mut group = c.benchmark_group("histogram");
    group.throughput(Throughput::Elements(1));
    let mut hist = Histogram::new();
    let mut v = 1u64;
    group.bench_function("record", |b| {
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            hist.record(black_box(v >> 30));
        })
    });
    for i in 1..100_000u64 {
        hist.record(i * 37);
    }
    group.bench_function("p99_query", |b| {
        b.iter(|| black_box(hist.value_at_percentile(99.0)))
    });
    group.finish();
}

fn bench_wiki(c: &mut Criterion) {
    let templates = TemplateSet::standard();
    let article = wiki::generate_article(1, 6_000, 7);
    let mut group = c.benchmark_group("wiki");
    group.throughput(Throughput::Bytes(article.len() as u64));
    group.bench_function("render_6k_article", |b| {
        b.iter(|| black_box(wiki::render(black_box(&article), &templates)))
    });
    group.finish();
}

criterion_group!(benches, bench_cache, bench_rpc, bench_histogram, bench_wiki);
criterion_main!(benches);
