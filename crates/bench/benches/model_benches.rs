//! Criterion benchmarks for the projection model and figure renderers:
//! evaluating one workload×SKU, scoring a full suite, and regenerating
//! Figure 2 must all be cheap enough to embed in optimization loops.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dcperf_platform::model::OsConfig;
use dcperf_platform::profile::profiles;
use dcperf_platform::{projection, sku, Model};
use std::hint::black_box;

fn bench_model(c: &mut Criterion) {
    let model = Model::new();
    let os = OsConfig::default();
    let feedsim = profiles::feedsim();
    let mut group = c.benchmark_group("model");
    group.throughput(Throughput::Elements(1));
    group.bench_function("evaluate_one", |b| {
        b.iter(|| black_box(model.evaluate(black_box(&feedsim), &sku::SKU4, &os)))
    });
    group.bench_function("figure2_full", |b| {
        b.iter(|| black_box(projection::figure2(&model)))
    });
    group.bench_function("figure14_perf_per_watt", |b| {
        b.iter(|| black_box(projection::figure14(&model)))
    });
    group.finish();
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.bench_function("render_fig4_tmam", |b| {
        b.iter(|| black_box(dcperf_bench::render("fig4").unwrap()))
    });
    group.bench_function("render_all", |b| {
        b.iter(|| black_box(dcperf_bench::render_all()))
    });
    group.finish();
}

criterion_group!(benches, bench_model, bench_figures);
criterion_main!(benches);
