//! Criterion micro-benchmarks for the datacenter-tax kernels — the
//! measured counterpart of §3.2's tax microbenchmarks. One group per tax
//! category of Figure 12.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dcperf_tax::{compress, crypto, hash, memops, serialize};
use dcperf_util::{Rng, SplitMix64};
use std::hint::black_box;

fn corpus(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed);
    let mut data = Vec::with_capacity(len);
    while data.len() < len {
        let run = (rng.next_u64() % 24 + 4) as usize;
        let byte = (rng.next_u64() % 64 + 32) as u8;
        data.extend(std::iter::repeat_n(byte, run.min(len - data.len())));
    }
    data
}

fn bench_compression(c: &mut Criterion) {
    let data = corpus(16 << 10, 1);
    let packed = compress::lz_compress(&data);
    let mut group = c.benchmark_group("compression");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("lz_compress_16k", |b| {
        b.iter(|| black_box(compress::lz_compress(black_box(&data))))
    });
    group.bench_function("lz_decompress_16k", |b| {
        b.iter(|| black_box(compress::lz_decompress(black_box(&packed)).unwrap()))
    });
    group.bench_function("rle_compress_16k", |b| {
        b.iter(|| black_box(compress::rle_compress(black_box(&data))))
    });
    group.finish();
}

fn bench_hashing(c: &mut Criterion) {
    let data = corpus(4 << 10, 2);
    let mut group = c.benchmark_group("hashing");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("fnv1a_4k", |b| {
        b.iter(|| black_box(hash::fnv1a(black_box(&data))))
    });
    group.bench_function("dcx64_4k", |b| {
        b.iter(|| black_box(hash::dcx64(black_box(&data), 7)))
    });
    group.bench_function("crc32_4k", |b| {
        b.iter(|| black_box(hash::crc32(black_box(&data))))
    });
    group.finish();
}

fn bench_crypto(c: &mut Criterion) {
    let data = corpus(4 << 10, 3);
    let key = [0x42u8; 32];
    let nonce = [0x24u8; 12];
    let mut group = c.benchmark_group("crypto");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("sha256_4k", |b| {
        b.iter(|| black_box(crypto::Sha256::digest(black_box(&data))))
    });
    group.bench_function("hmac_sha256_4k", |b| {
        b.iter(|| black_box(crypto::hmac_sha256(&key, black_box(&data))))
    });
    group.bench_function("chacha20_4k", |b| {
        b.iter(|| {
            let mut buf = data.clone();
            crypto::ChaCha20::new(&key, &nonce, 1).apply(&mut buf);
            black_box(buf)
        })
    });
    group.finish();
}

fn bench_serialization(c: &mut Criterion) {
    let records: Vec<serialize::Record> = (0..64i64)
        .map(|i| {
            vec![
                serialize::FieldValue::I64(i * 31337),
                serialize::FieldValue::F64(i as f64 * 0.5),
                serialize::FieldValue::Str(format!("row-{i}-payload")),
            ]
        })
        .collect();
    let mut encoded = Vec::new();
    serialize::encode_batch(&records, &mut encoded);
    let mut group = c.benchmark_group("serialization");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("encode_64_records", |b| {
        b.iter(|| {
            let mut buf = Vec::new();
            serialize::encode_batch(black_box(&records), &mut buf);
            black_box(buf)
        })
    });
    group.bench_function("decode_64_records", |b| {
        b.iter(|| black_box(serialize::decode_batch(black_box(&encoded)).unwrap()))
    });
    group.finish();
}

fn bench_memory(c: &mut Criterion) {
    let src = corpus(64 << 10, 4);
    let mut dst = vec![0u8; src.len()];
    let mut group = c.benchmark_group("memory");
    group.throughput(Throughput::Bytes(src.len() as u64));
    group.bench_function("copy_64k", |b| {
        b.iter(|| black_box(memops::copy_sequential(&src, &mut dst, 1)))
    });
    group.bench_function("gather_4096_from_64k", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(memops::gather_random(&src, 4096, seed))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_compression,
    bench_hashing,
    bench_crypto,
    bench_serialization,
    bench_memory
);
criterion_main!(benches);
