//! Integration tests asserting the paper's qualitative claims hold in
//! every regenerated table and figure — the "shape" contract of the
//! reproduction.

use dcperf_bench::{render, render_all, FIGURE_IDS};

#[test]
fn every_figure_renders_nonempty() {
    for id in FIGURE_IDS {
        let text = render(id).unwrap_or_else(|e| panic!("{id}: {e}"));
        assert!(text.len() > 40, "{id} rendered only {} bytes", text.len());
    }
}

#[test]
fn unknown_id_is_an_error() {
    assert!(render("fig99").is_err());
}

#[test]
fn render_all_contains_every_id() {
    let all = render_all();
    for id in FIGURE_IDS {
        assert!(
            all.contains(&format!("==================== {id} ")),
            "{id} missing"
        );
    }
}

/// Figure 2/3: DCPerf's projection error is far below SPEC's on the
/// many-core SKU4 — the headline result.
#[test]
fn fig3_dcperf_is_most_accurate_on_sku4() {
    let text = render("fig3").unwrap();
    let row = |suite: &str| -> Vec<f64> {
        text.lines()
            .find(|l| l.starts_with(suite))
            .unwrap_or_else(|| panic!("row {suite} missing in:\n{text}"))
            .split_whitespace()
            .filter_map(|tok| tok.trim_end_matches('%').parse::<f64>().ok())
            .collect()
    };
    let dcperf = row("DCPerf");
    let spec06 = row("SPEC 2006");
    let spec17 = row("SPEC 2017");
    // SKU4 is the last column.
    let (d4, s06, s17) = (
        dcperf.last().unwrap().abs(),
        *spec06.last().unwrap(),
        *spec17.last().unwrap(),
    );
    assert!(d4 < 8.0, "DCPerf SKU4 error {d4}% (paper: 3.3%)");
    assert!(s06 > 10.0, "SPEC06 SKU4 error {s06}% (paper: 20.4%)");
    assert!(s17 > s06, "SPEC17 must be worse than SPEC06 on SKU4");
}

/// Figure 5: SPEC has far fewer frontend stalls than datacenter
/// workloads ("the SPEC benchmarks have a small codebase").
#[test]
fn fig5_spec_frontend_stalls_are_low() {
    let text = render("fig5").unwrap();
    let frontend = |suite: &str| -> f64 {
        text.lines()
            .find(|l| l.starts_with(suite))
            .unwrap()
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap()
    };
    let prod = frontend("Prod");
    let dcperf = frontend("DCPerf");
    let spec = frontend("SPEC2017");
    assert!(prod > spec + 8.0, "prod {prod} vs spec {spec}");
    assert!(dcperf > spec + 8.0, "dcperf {dcperf} vs spec {spec}");
    assert!((prod - dcperf).abs() < 8.0, "dcperf must track prod");
}

/// Figure 8: SPEC's L1-I MPKI is an order of magnitude below the web
/// workloads'.
#[test]
fn fig8_spec_icache_misses_are_tiny() {
    let text = render("fig8").unwrap();
    let mpki = |workload: &str| -> f64 {
        text.lines()
            .find(|l| l.starts_with(workload))
            .unwrap_or_else(|| panic!("{workload} missing"))
            .split_whitespace()
            .last()
            .unwrap()
            .parse()
            .unwrap()
    };
    assert!(mpki("IG Web (prod)") > 40.0);
    assert!(mpki("Cache (prod)") > 40.0);
    assert!(mpki("505.mcf") < 10.0);
    assert!(mpki("541.leela") < 10.0);
}

/// Figure 13: the three CloudSuite pathologies are present in the
/// rendered curves.
#[test]
fn fig13_pathologies_render() {
    let a = render("fig13a").unwrap();
    assert!(a.contains("RPS falls on 176"));
    let b = render("fig13b").unwrap();
    // Errors appear in the sweep (nonzero error column near the bottom).
    let has_errors = b
        .lines()
        .filter_map(|l| l.split_whitespace().nth(2))
        .filter_map(|tok| tok.parse::<f64>().ok())
        .any(|e| e > 0.0);
    assert!(has_errors, "no 504s in:\n{b}");
    let c = render("fig13c").unwrap();
    assert!(c.contains("stuck ~20%"));
}

/// Figure 14: DCPerf picks SKU-A and rejects SKU-B.
#[test]
fn fig14_decides_the_arm_selection() {
    let text = render("fig14").unwrap();
    let dcperf_row = text
        .lines()
        .find(|l| l.starts_with("DCPerf "))
        .expect("suite row");
    let cells: Vec<f64> = dcperf_row
        .split_whitespace()
        .skip(1)
        .map(|t| t.parse().unwrap())
        .collect();
    let (sku4, sku_a, sku_b) = (cells[0], cells[1], cells[2]);
    assert!(sku_a > sku4, "SKU-A must win on Perf/Watt");
    assert!(sku_b < sku4 * 0.7, "SKU-B must lose decisively");
}

/// Figure 15: large miss reductions, small app-level gains, no SPEC
/// signal.
#[test]
fn fig15_vendor_optimization_shape() {
    let text = render("fig15").unwrap();
    assert!(text.contains("-36%"), "L1I reduction missing:\n{text}");
    assert!(text.contains("-28%"), "L2 reduction missing");
    // Both app-perf deltas are small single-digit positives: the first
    // percentage token on each data row is the appPerf column.
    let mut rows_checked = 0;
    for line in text
        .lines()
        .filter(|l| l.starts_with("FB Web") || l.starts_with("Mediawiki"))
    {
        let app_perf = line
            .split_whitespace()
            .find(|t| t.ends_with('%'))
            .and_then(|t| t.trim_end_matches('%').parse::<f64>().ok())
            .unwrap_or_else(|| panic!("no appPerf token in: {line}"));
        assert!(
            (0.0..10.0).contains(&app_perf),
            "app perf {app_perf} out of band"
        );
        rows_checked += 1;
    }
    assert_eq!(rows_checked, 2, "both workloads must be reported");
}

/// Figure 16: kernel 6.9 matters at 384 cores, not at 176.
#[test]
fn fig16_kernel_upgrade_shape() {
    let text = render("fig16").unwrap();
    let cell = |sku: &str, kernel: &str| -> f64 {
        text.lines()
            .find(|l| l.contains(sku) && l.contains(kernel))
            .unwrap()
            .split_whitespace()
            .last()
            .unwrap()
            .trim_end_matches('%')
            .parse()
            .unwrap()
    };
    let gain_176 = cell("176-core", "6.9") / cell("176-core", "6.4");
    let gain_384 = cell("384-core", "6.9") / cell("384-core", "6.4");
    assert!(gain_176 < 1.12, "176-core gain {gain_176}");
    assert!(gain_384 > 1.3, "384-core gain {gain_384}");
}

/// Tables reproduce the published columns.
#[test]
fn tables_contain_published_values() {
    let t3 = render("table3").unwrap();
    for v in ["36", "52", "72", "176", "2018", "2023"] {
        assert!(t3.contains(v), "table3 missing {v}");
    }
    let t4 = render("table4").unwrap();
    assert!(t4.contains("175W") && t4.contains("275W"));
    let t1 = render("table1").unwrap();
    for v in ["TaoBench", "FeedSim", "SparkBench", "N(1M)", "N(100)"] {
        assert!(t1.contains(v), "table1 missing {v}");
    }
    let t2 = render("table2").unwrap();
    assert!(t2.contains("Memcached") && t2.contains("dcperf-kvstore"));
}
