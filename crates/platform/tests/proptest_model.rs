//! Property tests on the analytical model: structural invariants that
//! must hold for *any* plausible SKU, not just the calibrated ones.

use dcperf_platform::model::{KernelVersion, OsConfig};
use dcperf_platform::profile::profiles;
use dcperf_platform::{sku, Model, SkuSpec};
use proptest::prelude::*;

/// Strategy over plausible SKUs derived from SKU2 by perturbing the
/// microarchitectural knobs.
fn sku_strategy() -> impl Strategy<Value = SkuSpec> {
    (
        2u32..256,                                                    // physical cores
        1u32..3,                                                      // smt ways
        prop_oneof![Just(16.0), Just(32.0), Just(64.0), Just(128.0)], // l1i
        8.0f64..512.0,                                                // llc mb
        40.0f64..800.0,                                               // mem bw
        60.0f64..140.0,                                               // latency
        1.2f64..3.5,                                                  // sustained ghz
        2.0f64..8.0,                                                  // issue width
        0.8f64..1.3,                                                  // branch quality
        100.0f64..800.0,                                              // design power
    )
        .prop_map(
            |(phys, smt, l1i, llc, bw, lat, ghz, width, branch, power)| SkuSpec {
                name: "SKU-prop",
                physical_cores: phys,
                logical_cores: phys * smt,
                l1i_kb: l1i,
                llc_mb: llc,
                mem_bw_gbs: bw,
                mem_latency_ns: lat,
                sustained_ghz: ghz,
                boost_ghz: ghz + 1.0,
                issue_width: width,
                branch_quality: branch,
                design_power_w: power,
                idle_power_w: power * 0.3,
                ..sku::SKU2.clone()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// TMAM always sums to 100 and every component stays within [0, 100].
    #[test]
    fn tmam_is_always_a_valid_split(sku in sku_strategy()) {
        let model = Model::new();
        let os = OsConfig::default();
        for p in profiles::dcperf_suite() {
            let t = model.evaluate(&p, &sku, &os).tmam;
            let sum = t.frontend + t.bad_spec + t.backend + t.retiring;
            prop_assert!((sum - 100.0).abs() < 1e-6, "{}: {}", p.name, sum);
            for (label, v) in [
                ("frontend", t.frontend),
                ("bad_spec", t.bad_spec),
                ("backend", t.backend),
                ("retiring", t.retiring),
            ] {
                prop_assert!((0.0..=100.0).contains(&v), "{} {}={}", p.name, label, v);
            }
        }
    }

    /// Throughput, IPC, power, and frequency are always positive and
    /// finite.
    #[test]
    fn estimates_are_finite_and_positive(sku in sku_strategy()) {
        let model = Model::new();
        let os = OsConfig::default();
        for p in profiles::dcperf_suite().iter().chain(profiles::spec2017_suite().iter()) {
            let est = model.evaluate(p, &sku, &os);
            for (label, v) in [
                ("throughput", est.throughput),
                ("ipc", est.ipc),
                ("power", est.power_w),
                ("freq", est.freq_ghz),
                ("mpki", est.l1i_mpki),
                ("bw", est.mem_bw_gbs),
            ] {
                prop_assert!(v.is_finite() && v > 0.0, "{} {}={}", p.name, label, v);
            }
        }
    }

    /// A kernel upgrade never makes anything slower.
    #[test]
    fn kernel_69_never_hurts(sku in sku_strategy()) {
        let model = Model::new();
        for p in profiles::dcperf_suite() {
            let v64 = model
                .evaluate(&p, &sku, &OsConfig { kernel: KernelVersion::V6_4 })
                .throughput;
            let v69 = model
                .evaluate(&p, &sku, &OsConfig { kernel: KernelVersion::V6_9 })
                .throughput;
            prop_assert!(v69 >= v64 * 0.999999, "{}: {} < {}", p.name, v69, v64);
        }
    }

    /// More cores with proportionally more memory bandwidth never reduce
    /// modeled throughput. (Cores *without* bandwidth can lose — the
    /// saturation term is supposed to model exactly that — so the
    /// property holds the bytes-per-core ratio fixed.)
    #[test]
    fn adding_balanced_cores_is_monotone_for_scalable_workloads(
        base in sku_strategy(),
        extra in 1u32..64,
    ) {
        let model = Model::new();
        let os = OsConfig { kernel: KernelVersion::V6_9 };
        let mut bigger = base.clone();
        bigger.physical_cores = base.physical_cores + extra;
        bigger.logical_cores = bigger.physical_cores * base.smt_ways();
        bigger.mem_bw_gbs =
            base.mem_bw_gbs * bigger.physical_cores as f64 / base.physical_cores as f64;
        // The embarrassingly parallel workload must never lose from a
        // balanced scale-up.
        let p = profiles::videobench(1);
        let small = model.evaluate(&p, &base, &os).throughput;
        let large = model.evaluate(&p, &bigger, &os).throughput;
        prop_assert!(large >= small * 0.999, "video: {} -> {}", small, large);
    }

    /// A larger L1-I never increases MPKI; a smaller one never decreases
    /// it.
    #[test]
    fn icache_size_is_monotone_in_mpki(sku in sku_strategy()) {
        let model = Model::new();
        let os = OsConfig::default();
        let mut bigger = sku.clone();
        bigger.l1i_kb = sku.l1i_kb * 2.0;
        for p in profiles::dcperf_suite() {
            let base = model.evaluate(&p, &sku, &os).l1i_mpki;
            let with_big = model.evaluate(&p, &bigger, &os).l1i_mpki;
            prop_assert!(with_big <= base + 1e-9, "{}: {} -> {}", p.name, base, with_big);
        }
    }
}
