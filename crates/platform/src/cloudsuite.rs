//! CloudSuite comparison models (Figure 13, §4.6).
//!
//! The paper's point about CloudSuite is not its absolute numbers but its
//! *scalability pathologies* on modern many-core servers:
//!
//! * **Data Caching** (13a): throughput rises only 26% while CPU
//!   utilization rises 7.3× on a 72-core server, and *decreases* with
//!   utilization on a 176-core server.
//! * **Web Serving** (13b): throughput saturates past load-scale 100 and
//!   "504 Gateway Timeout" errors appear past 140 while CPU is below 50%.
//! * **In-Memory Analytics** (13c): CPU utilization is stuck around 20%
//!   for the whole run regardless of Spark parallelism settings.
//!
//! Each function reproduces the measured curve shape from a mechanistic
//! mini-model (serialization bottlenecks, fixed timeout budgets, bounded
//! parallelism). A *runnable* demonstration of the same pathologies lives
//! in `dcperf-workloads::cloudsuite`.

/// One point of Figure 13a: Data Caching RPS at a CPU utilization level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataCachingPoint {
    /// CPU utilization, %.
    pub cpu_util: f64,
    /// Requests per second.
    pub rps: f64,
}

/// Figure 13a: Data Caching throughput versus CPU utilization for a
/// 72-core SKU-A-class server and the 176-core SKU4.
///
/// Model: the benchmark serializes on a global lock; added threads raise
/// utilization (spinning and lock handoffs) much faster than throughput,
/// and on very high core counts the cross-socket lock migration makes
/// added threads *negative*-value.
pub fn figure13a(cores: u32) -> Vec<DataCachingPoint> {
    let utils = [12.0, 25.0, 40.0, 55.0, 70.0, 88.0];
    let base_rps = 490_000.0;
    utils
        .iter()
        .map(|&u| {
            let rps = if cores <= 96 {
                // 72-core: +26% total from 12% to 88% utilization.
                let span = (u - 12.0) / (88.0 - 12.0);
                base_rps * (1.0 + 0.26 * span)
            } else {
                // 176-core: lock migration across dies makes throughput
                // fall as more threads pile on.
                let span = (u - 12.0) / (88.0 - 12.0);
                620_000.0 * (1.0 - 0.35 * span)
            };
            DataCachingPoint { cpu_util: u, rps }
        })
        .collect()
}

/// One point of Figure 13b: Web Serving at a load-scale setting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WebServingPoint {
    /// The benchmark's load-scale knob.
    pub load_scale: u32,
    /// Successful operations per second.
    pub ops_per_sec: f64,
    /// Errors per second (mostly 504 Gateway Timeout).
    pub errors_per_sec: f64,
    /// Peak CPU utilization, %.
    pub cpu_util: f64,
}

/// Figure 13b: Web Serving ops/sec, errors/sec, and peak CPU utilization
/// versus load scale on the 176-core SKU4.
///
/// Model: a fixed-size PHP-FPM-style worker pool saturates near load
/// scale 100 (ops plateau ~70/s); past 140, queued requests exceed the
/// gateway timeout and convert into errors; CPU utilization keeps rising
/// linearly (busy spinning + context switching) until 100%.
pub fn figure13b() -> Vec<WebServingPoint> {
    (1..=14)
        .map(|i| {
            let load = (i * 30) as f64 - 20.0; // 10, 40, 70, ..., 400
                                               // Linear up to the worker-pool knee at load 100 (~62 ops/s),
                                               // then only a slow creep (the paper's plateau).
            let ops = if load <= 100.0 {
                load * 0.62
            } else {
                62.0 + 13.0 * (load - 100.0) / 300.0
            };
            let errors = if load > 140.0 {
                ((load - 140.0) / 260.0).powf(1.4) * 55.0
            } else {
                0.0
            };
            let cpu = (load / 400.0 * 100.0).min(100.0);
            WebServingPoint {
                load_scale: load as u32,
                ops_per_sec: ops,
                errors_per_sec: errors,
                cpu_util: cpu,
            }
        })
        .collect()
}

/// One point of Figure 13c: CPU utilization over time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilTimelinePoint {
    /// Seconds since the run started.
    pub elapsed_s: u32,
    /// CPU utilization, %.
    pub cpu_util: f64,
}

/// Figure 13c: CPU utilization timeline of CloudSuite's In-Memory
/// Analytics versus DCPerf's SparkBench on the 176-core SKU4.
///
/// Model: the ALS job's parallelism is bounded by its small (1.2 GB)
/// dataset partitioning, pinning utilization near 20% no matter the
/// executor settings; SparkBench alternates I/O stages (~60%) with a
/// compute stage (~80%).
pub fn figure13c(bench: InMemoryBench) -> Vec<UtilTimelinePoint> {
    (0..=100)
        .map(|i| {
            let t = i * 5;
            let util = match bench {
                InMemoryBench::CloudSuiteAnalytics => {
                    // Flat ~20% with small phase wiggles.
                    20.0 + 3.0 * ((t as f64) / 40.0).sin()
                }
                InMemoryBench::SparkBench => {
                    // Stages 1-2 (I/O, ~60%) then stage 3 (compute, ~80%).
                    if t < 330 {
                        60.0 + 8.0 * ((t as f64) / 25.0).sin()
                    } else {
                        80.0 + 5.0 * ((t as f64) / 20.0).sin()
                    }
                }
            };
            UtilTimelinePoint {
                elapsed_s: t,
                cpu_util: util,
            }
        })
        .collect()
}

/// Which in-memory analytics workload Figure 13c plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InMemoryBench {
    /// CloudSuite's ALS-based In-Memory Analytics.
    CloudSuiteAnalytics,
    /// DCPerf's SparkBench.
    SparkBench,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_caching_72core_gains_only_26_percent() {
        let points = figure13a(72);
        let first = points.first().unwrap();
        let last = points.last().unwrap();
        let util_gain = last.cpu_util / first.cpu_util;
        let rps_gain = last.rps / first.rps;
        assert!((util_gain - 7.3).abs() < 0.1, "util x{util_gain}");
        assert!((rps_gain - 1.26).abs() < 0.02, "rps x{rps_gain}");
    }

    #[test]
    fn data_caching_176core_regresses() {
        let points = figure13a(176);
        let first = points.first().unwrap();
        let last = points.last().unwrap();
        assert!(
            last.rps < first.rps,
            "throughput must fall with utilization on 176 cores"
        );
    }

    #[test]
    fn web_serving_plateaus_then_errors() {
        let points = figure13b();
        let at = |load: u32| points.iter().find(|p| p.load_scale >= load).unwrap();
        // Throughput growth slows sharply after ~100.
        let growth_early = at(100).ops_per_sec / at(40).ops_per_sec;
        let growth_late = at(400).ops_per_sec / at(100).ops_per_sec;
        assert!(growth_early > 1.8, "early {growth_early}");
        assert!(growth_late < 1.3, "late {growth_late}");
        // Errors start past 140 while CPU is under 50%.
        let first_errors = points.iter().find(|p| p.errors_per_sec > 0.0).unwrap();
        assert!(first_errors.load_scale > 140);
        assert!(first_errors.cpu_util < 50.0, "{}", first_errors.cpu_util);
        // CPU eventually reaches 100%.
        assert!(points.last().unwrap().cpu_util >= 99.0);
    }

    #[test]
    fn in_memory_analytics_stuck_at_20_percent() {
        let cs = figure13c(InMemoryBench::CloudSuiteAnalytics);
        for p in &cs {
            assert!((15.0..=25.0).contains(&p.cpu_util), "{}", p.cpu_util);
        }
        let spark = figure13c(InMemoryBench::SparkBench);
        let avg: f64 = spark.iter().map(|p| p.cpu_util).sum::<f64>() / spark.len() as f64;
        assert!(avg > 55.0, "SparkBench average {avg}");
        // SparkBench's compute stage runs hotter than its I/O stages.
        let early: f64 = spark
            .iter()
            .filter(|p| p.elapsed_s < 300)
            .map(|p| p.cpu_util)
            .sum::<f64>()
            / spark.iter().filter(|p| p.elapsed_s < 300).count() as f64;
        let late: f64 = spark
            .iter()
            .filter(|p| p.elapsed_s >= 350)
            .map(|p| p.cpu_util)
            .sum::<f64>()
            / spark.iter().filter(|p| p.elapsed_s >= 350).count() as f64;
        assert!(late > early + 10.0, "late {late} vs early {early}");
    }
}
