//! The §5.2 vendor-optimization study (Figure 15).
//!
//! In 2023 a CPU vendor iteratively improved its cache-replacement
//! microcode under DCPerf's guidance; Figure 15 reports the effect on
//! MediaWiki in the vendor's lab and on the Facebook web application in
//! production. This module reproduces that what-if through
//! [`Model::evaluate_adjusted`]: the optimization is expressed as miss
//! multipliers, and application performance, GIPS, IPC, and bandwidth
//! deltas fall out of the model.

use crate::model::{Adjustments, Model, OsConfig};
use crate::profile::{profiles, WorkloadProfile};
use crate::sku::{SkuSpec, SKU2};

/// A vendor microarchitecture optimization, expressed as relative miss
/// changes (the quantities a cache-replacement microcode change moves).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VendorOptimization {
    /// L1-I miss multiplier (Figure 15: 0.64 ⇒ −36%).
    pub l1i_miss_mult: f64,
    /// L2 miss multiplier (0.72 ⇒ −28%).
    pub l2_miss_mult: f64,
}

impl VendorOptimization {
    /// The cache-replacement optimization of §5.2.
    pub fn cache_replacement_2023() -> Self {
        Self {
            l1i_miss_mult: 0.64,
            l2_miss_mult: 0.72,
        }
    }
}

/// Figure 15's metric deltas for one workload, in percent
/// (positive = higher after the optimization).
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizationImpact {
    /// Workload name.
    pub workload: &'static str,
    /// Application performance change, %.
    pub app_perf: f64,
    /// Giga-instructions-per-second change, %.
    pub gips: f64,
    /// IPC change, %.
    pub ipc: f64,
    /// L1-I cache miss change, %.
    pub l1i_miss: f64,
    /// L2 cache miss change, %.
    pub l2_miss: f64,
    /// LLC miss change, %.
    pub llc_miss: f64,
    /// Memory bandwidth usage change, %.
    pub mem_bw: f64,
}

/// Projects the impact of `opt` on `workload` running on `sku`.
pub fn project_impact(
    model: &Model,
    workload: &WorkloadProfile,
    sku: &SkuSpec,
    opt: &VendorOptimization,
) -> OptimizationImpact {
    let os = OsConfig::default();
    let base = model.evaluate(workload, sku, &os);
    // A replacement-policy change removes misses that were largely
    // overlapped, so the frontend coupling is much weaker than for a
    // capacity change (see Model::frontend_beta); 0.055 calibrates the
    // MediaWiki IPC delta to the vendor's measured ~+1.9%.
    let adj = Adjustments {
        l1i_mpki_mult: opt.l1i_miss_mult,
        l2_miss_mult: opt.l2_miss_mult,
        frontend_beta: Some(0.055),
    };
    let tuned = model.evaluate_adjusted(workload, sku, &os, &adj);

    let pct = |after: f64, before: f64| (after / before - 1.0) * 100.0;
    // LLC misses fall roughly with the square root of the L2 reduction
    // (only some of the removed L2 misses would have missed LLC too).
    let llc_miss = (opt.l2_miss_mult.sqrt() - 1.0) * 100.0;
    OptimizationImpact {
        workload: workload.name,
        app_perf: pct(tuned.throughput, base.throughput),
        gips: pct(
            tuned.ipc * tuned.freq_ghz * tuned.effective_cores,
            base.ipc * base.freq_ghz * base.effective_cores,
        ),
        ipc: pct(tuned.ipc, base.ipc),
        l1i_miss: pct(tuned.l1i_mpki, base.l1i_mpki),
        l2_miss: (opt.l2_miss_mult - 1.0) * 100.0,
        llc_miss,
        mem_bw: pct(tuned.mem_bw_gbs, base.mem_bw_gbs),
    }
}

/// Figure 15: the 2023 cache-replacement optimization projected for
/// MediaWiki (vendor lab) and FB Web production.
pub fn figure15(model: &Model) -> Vec<OptimizationImpact> {
    let opt = VendorOptimization::cache_replacement_2023();
    vec![
        project_impact(model, &profiles::fbweb_prod(), &SKU2, &opt),
        project_impact(model, &profiles::mediawiki(), &SKU2, &opt),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure15_shape() {
        let fig = figure15(&Model::new());
        assert_eq!(fig.len(), 2);
        for impact in &fig {
            // Small positive app-level gains (paper: +2.9% / +3.5%)...
            assert!(
                (0.2..=8.0).contains(&impact.app_perf),
                "{}: app {}",
                impact.workload,
                impact.app_perf
            );
            // ...driven by large L1-I/L2 miss reductions.
            assert!((impact.l1i_miss + 36.0).abs() < 1.0, "{}", impact.l1i_miss);
            assert!((impact.l2_miss + 28.0).abs() < 1.0, "{}", impact.l2_miss);
            // IPC gains are modest, like the paper's +1.9% / +2.2%.
            assert!((0.2..=6.0).contains(&impact.ipc), "ipc {}", impact.ipc);
            // Bandwidth drops (fewer misses reach DRAM).
            assert!(impact.mem_bw < 0.0, "bw {}", impact.mem_bw);
        }
    }

    #[test]
    fn spec_sees_nothing() {
        // §5.2: "testing on SPEC 2017 revealed no noticeable performance
        // changes" — SPEC's tiny instruction footprint leaves nothing for
        // an I-cache replacement optimization to recover.
        let model = Model::new();
        let opt = VendorOptimization::cache_replacement_2023();
        let spec = profiles::spec2017_suite();
        for p in &spec {
            let impact = project_impact(&model, p, &SKU2, &opt);
            assert!(
                impact.app_perf < 1.0,
                "{}: {}% should be negligible",
                p.name,
                impact.app_perf
            );
        }
    }

    #[test]
    fn mediawiki_gains_more_than_nothing() {
        let fig = figure15(&Model::new());
        let mediawiki = fig.iter().find(|i| i.workload == "Mediawiki").unwrap();
        let fbweb = fig.iter().find(|i| i.workload == "FB Web (prod)").unwrap();
        // Both in the low single digits, same order as the paper
        // (3.5% lab vs 2.9% production).
        assert!(mediawiki.app_perf > 0.0 && fbweb.app_perf > 0.0);
    }
}
