//! The analytical microarchitecture model.
//!
//! [`Model::evaluate`] projects a workload's [reference-SKU
//! anchor](crate::MicroAnchor) onto an arbitrary [`SkuSpec`] through a
//! chain of transfer functions. Each function is a standard first-order
//! model from the architecture literature; all are *ratios against the
//! reference SKU*, so on the reference SKU every projection reproduces the
//! anchor exactly (calibration by construction, evaluation elsewhere).
//!
//! Transfer chain:
//!
//! 1. **I-cache**: L1-I MPKI follows a power-law capacity-miss curve in
//!    `footprint / L1I size`, with the footprint inflated by thread
//!    oversubscription (context switches dilute the cache — §4.3's
//!    explanation for TaoBench's high MPKI despite a small binary).
//! 2. **TMAM re-composition**: frontend-bound tracks the I-cache MPKI
//!    ratio (damped — misses overlap with decode and resteer bubbles);
//!    bad speculation tracks branch-predictor quality; backend-bound
//!    splits into a core part (issue-width ratio) and a memory part that
//!    follows loaded latency, LLC miss-curve relief, and a
//!    bandwidth-saturation queueing term. Retiring absorbs the residual.
//! 3. **IPC** = anchor IPC × retiring ratio × issue-width ratio.
//! 4. **Frequency**: all-core sustained clock scaled by the workload's
//!    anchored residency factor.
//! 5. **Core scaling**: the Universal Scalability Law over effective
//!    cores (physical × SMT yield), with the contention coefficient κ
//!    split into an application part and a *kernel* part that the
//!    kernel-6.9 `load_avg` ratelimit patch shrinks (§5.3).
//! 6. **Throughput** = USL(effective cores) × frequency^sensitivity ×
//!    IPC, normalized to the reference SKU.
//! 7. **Power** = design power × anchored component fractions × an
//!    *envelope-utilization* term (dense, fully-utilized execution fills a
//!    bigger part's budget; stall-heavy SLO-bound services leave it dark),
//!    with the DRAM component tracking achieved bandwidth.

use crate::profile::{MicroAnchor, PowerBreakdown, Tmam, WorkloadProfile};
use crate::sku::{SkuSpec, SKU2};
use serde::Serialize;

/// Linux kernel version, for the §5.3 scalability study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum KernelVersion {
    /// Kernel 6.4: global `tg->load_avg` counter updated on every
    /// scheduling event — heavy cross-core contention at high core counts.
    V6_4,
    /// Kernel 6.9: the ratelimit patch cuts the update frequency, removing
    /// most of that contention.
    V6_9,
}

impl KernelVersion {
    /// Multiplier on the kernel-attributed part of the USL κ coefficient.
    pub fn kernel_kappa_multiplier(self) -> f64 {
        match self {
            KernelVersion::V6_4 => 1.0,
            KernelVersion::V6_9 => 0.06,
        }
    }
}

/// Host OS configuration for a projection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct OsConfig {
    /// Kernel version.
    pub kernel: KernelVersion,
}

impl Default for OsConfig {
    fn default() -> Self {
        // The paper's SKU measurements predate the 6.9 upgrade.
        Self {
            kernel: KernelVersion::V6_4,
        }
    }
}

/// Microarchitecture-level adjustments for what-if studies (vendor
/// optimizations, §5.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adjustments {
    /// Multiplier on L1-I MPKI (e.g. 0.64 for a 36% reduction).
    pub l1i_mpki_mult: f64,
    /// Multiplier on L2 misses (flows into the memory-bound backend part).
    pub l2_miss_mult: f64,
    /// Override of the frontend-stall-to-MPKI coupling (see
    /// [`Model::frontend_beta`]); `None` keeps the default.
    pub frontend_beta: Option<f64>,
}

impl Default for Adjustments {
    fn default() -> Self {
        Self {
            l1i_mpki_mult: 1.0,
            l2_miss_mult: 1.0,
            frontend_beta: None,
        }
    }
}

/// Everything the model projects for one (workload, SKU, OS) triple.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PerfEstimate {
    /// Throughput relative to the same workload on the reference SKU
    /// (reference = 1.0 under the default OS).
    pub throughput: f64,
    /// Projected TMAM split.
    pub tmam: Tmam,
    /// Projected IPC per physical core.
    pub ipc: f64,
    /// Projected L1-I MPKI.
    pub l1i_mpki: f64,
    /// Projected memory bandwidth consumption, GB/s.
    pub mem_bw_gbs: f64,
    /// Projected total CPU utilization, %.
    pub cpu_util_total: f64,
    /// Projected kernel CPU utilization, %.
    pub cpu_util_sys: f64,
    /// Projected average core frequency, GHz.
    pub freq_ghz: f64,
    /// Projected server power, watts.
    pub power_w: f64,
    /// Projected power split, % of design power.
    pub power_pct: PowerBreakdown,
    /// Throughput per watt (relative units / W).
    pub perf_per_watt: f64,
    /// USL-effective cores actually contributing.
    pub effective_cores: f64,
}

/// The projection engine. Construct once, evaluate many.
#[derive(Debug, Clone)]
pub struct Model {
    reference: SkuSpec,
}

impl Default for Model {
    fn default() -> Self {
        Self::new()
    }
}

impl Model {
    /// A model calibrated against SKU2 (the paper's profiling SKU).
    pub fn new() -> Self {
        Self { reference: SKU2 }
    }

    /// The calibration reference SKU.
    pub fn reference(&self) -> &SkuSpec {
        &self.reference
    }

    /// Default coupling between the L1-I MPKI ratio and frontend stalls.
    ///
    /// Misses overlap with other fetch bubbles, so a doubling of MPKI
    /// costs less than a doubling of frontend-bound slots.
    pub fn frontend_beta(&self) -> f64 {
        0.5
    }

    /// Effective instruction footprint: the binary's working set diluted
    /// by thread oversubscription (context switches evict the cache).
    fn effective_icache_kb(profile: &WorkloadProfile) -> f64 {
        profile.icache_kb * (1.0 + 0.18 * profile.thread_core_ratio.max(1.0).ln())
    }

    /// Capacity-miss curve: relative misses as a function of
    /// footprint/capacity. Linear below capacity (compulsory misses),
    /// power-law above it.
    fn icache_miss_level(footprint_kb: f64, l1i_kb: f64) -> f64 {
        let x = footprint_kb / l1i_kb.max(1.0);
        if x <= 1.0 {
            x.max(0.05)
        } else {
            x.powf(0.75)
        }
    }

    /// LLC miss-ratio curve (fraction of accesses missing).
    fn llc_miss_ratio(data_mb: f64, llc_mb: f64) -> f64 {
        let x = data_mb / llc_mb.max(1.0);
        x / (1.0 + x)
    }

    /// Queueing-style latency inflation as bandwidth demand approaches
    /// capacity.
    fn bw_inflation(demand_gbs: f64, capacity_gbs: f64) -> f64 {
        let u = (demand_gbs / capacity_gbs.max(1.0)).min(0.95);
        1.0 + 1.2 * u * u
    }

    /// USL-effective parallelism for `n` effective cores, with an extra
    /// quartic kernel-contention term: a single contended kernel cache
    /// line (the §5.3 `tg->load_avg` counter) degrades superlinearly as
    /// every core both updates it and pays coherence misses on it.
    fn usl(n: f64, sigma: f64, kappa_app: f64, kappa_kernel: f64) -> f64 {
        n / (1.0 + sigma * (n - 1.0) + kappa_app * n * (n - 1.0) + kappa_kernel * n.powi(4))
    }

    fn effective_cores(profile: &WorkloadProfile, sku: &SkuSpec) -> f64 {
        let ways = sku.smt_ways() as f64;
        sku.physical_cores as f64 * (1.0 + profile.smt_yield * (ways - 1.0))
    }

    fn kernel_kappa_for(profile: &WorkloadProfile, os: &OsConfig) -> f64 {
        profile.kernel_kappa * os.kernel.kernel_kappa_multiplier()
    }

    /// Projected average core frequency for a workload on a SKU.
    fn frequency(&self, anchor: &MicroAnchor, sku: &SkuSpec) -> f64 {
        let residency = anchor.freq_ghz / self.reference.sustained_ghz;
        (sku.sustained_ghz * residency).min(sku.boost_ghz)
    }

    /// Projects `profile` onto `sku` under `os`.
    pub fn evaluate(
        &self,
        profile: &WorkloadProfile,
        sku: &SkuSpec,
        os: &OsConfig,
    ) -> PerfEstimate {
        self.evaluate_adjusted(profile, sku, os, &Adjustments::default())
    }

    /// Projects with microarchitectural what-if adjustments applied to
    /// the target SKU (used for the §5.2 vendor study).
    pub fn evaluate_adjusted(
        &self,
        profile: &WorkloadProfile,
        sku: &SkuSpec,
        os: &OsConfig,
        adj: &Adjustments,
    ) -> PerfEstimate {
        let reference = &self.reference;
        let anchor = &profile.anchor;
        let anchor_tmam = anchor.tmam.normalized();

        // --- 1. I-cache ---------------------------------------------------
        let footprint = Self::effective_icache_kb(profile);
        let miss_ref = Self::icache_miss_level(footprint, reference.l1i_kb);
        let miss_sku = Self::icache_miss_level(footprint, sku.l1i_kb);
        // A replacement-policy what-if only recovers *capacity* misses;
        // workloads whose footprint fits the cache (SPEC) see nothing.
        let capacity_pressure = ((footprint / sku.l1i_kb - 1.0) / 4.0).clamp(0.0, 1.0);
        let eff_mpki_mult = 1.0 - (1.0 - adj.l1i_mpki_mult) * capacity_pressure;
        let l1i_mpki = anchor.l1i_mpki * (miss_sku / miss_ref) * eff_mpki_mult;

        // --- 2. TMAM ------------------------------------------------------
        let beta = adj.frontend_beta.unwrap_or_else(|| self.frontend_beta());
        let mpki_ratio = l1i_mpki / anchor.l1i_mpki.max(0.01);
        let frontend = (anchor_tmam.frontend * (1.0 + beta * (mpki_ratio - 1.0))).clamp(1.0, 75.0);

        let bad_spec = (anchor_tmam.bad_spec * (reference.branch_quality / sku.branch_quality))
            .clamp(0.5, 40.0);

        // Memory-bound share of backend stalls grows with the data set.
        let mem_frac =
            (profile.data_mb / (profile.data_mb + 20.0 * reference.llc_mb)).clamp(0.1, 0.9);
        let llc_relief = Self::llc_miss_ratio(profile.data_mb, sku.llc_mb)
            / Self::llc_miss_ratio(profile.data_mb, reference.llc_mb).max(1e-6);
        // Bandwidth demand scales with the raw compute capability ratio.
        let raw_compute_ratio = (sku.physical_cores as f64 * sku.sustained_ghz)
            / (reference.physical_cores as f64 * reference.sustained_ghz);
        let demand_ref = anchor.mem_bw_gbs;
        let demand_sku = anchor.mem_bw_gbs * raw_compute_ratio;
        let bw_term = Self::bw_inflation(demand_sku, sku.mem_bw_gbs)
            / Self::bw_inflation(demand_ref, reference.mem_bw_gbs);
        let lat_term = sku.mem_latency_ns / reference.mem_latency_ns;
        let mem_factor = llc_relief * lat_term * bw_term;
        let core_factor = (reference.issue_width / sku.issue_width).sqrt();
        let backend = (anchor_tmam.backend
            * ((1.0 - mem_frac) * core_factor + mem_frac * mem_factor))
            .clamp(0.5, 85.0);

        // New stalls appear (they don't just scale) when bandwidth
        // demand pushes past ~55% of the target's capacity: queueing
        // delay turns into backend-bound slots the anchor never had.
        let u_sku = (demand_sku / sku.mem_bw_gbs.max(1.0)).min(0.95);
        let u_ref = (demand_ref / reference.mem_bw_gbs.max(1.0)).min(0.95);
        let extra_backend = 28.0 * ((u_sku - 0.55).max(0.0) - (u_ref - 0.55).max(0.0));
        let backend = (backend + extra_backend).clamp(0.5, 85.0);

        let retiring = (100.0 - frontend - bad_spec - backend).max(5.0);
        let tmam = Tmam {
            frontend,
            bad_spec,
            backend,
            retiring,
        }
        .normalized();

        // --- 3. IPC -------------------------------------------------------
        let ipc_raw = anchor.ipc
            * (tmam.retiring / anchor_tmam.retiring)
            * (sku.issue_width / reference.issue_width).sqrt();
        // A physical core cannot sustain more IPC than its width allows;
        // narrow efficiency cores cap high-ILP workloads (Spark, video).
        // The cap is scaled so the reference SKU always reproduces the
        // anchor even for anchors near the reference's own ceiling.
        let ref_ceiling = 0.7 * reference.issue_width;
        let ceiling_scale = (anchor.ipc / ref_ceiling).max(1.0);
        let ipc = ipc_raw.min(0.7 * sku.issue_width * ceiling_scale);

        // --- 4. Frequency ---------------------------------------------------
        let freq = self.frequency(anchor, sku);
        let freq_ref = self.frequency(anchor, reference);

        // --- 5. Core scaling ------------------------------------------------
        let kk = Self::kernel_kappa_for(profile, os);
        let kk_ref = Self::kernel_kappa_for(profile, &OsConfig::default());
        let n_sku = Self::effective_cores(profile, sku);
        let n_ref = Self::effective_cores(profile, reference);
        let usl_sku = Self::usl(n_sku, profile.usl_sigma, profile.usl_kappa, kk);
        let usl_ref = Self::usl(n_ref, profile.usl_sigma, profile.usl_kappa, kk_ref);

        // --- 6. Throughput ----------------------------------------------------
        let ipc_ratio = ipc / anchor.ipc;
        let freq_ratio = (freq / freq_ref).powf(profile.freq_sensitivity);
        let throughput = (usl_sku / usl_ref) * freq_ratio * ipc_ratio;

        // --- Derived micro metrics -------------------------------------------
        // Traffic follows throughput; miss-reduction what-ifs shave the
        // share of accesses that still reach DRAM.
        let mem_bw = (anchor.mem_bw_gbs * throughput * adj.l2_miss_mult.powf(0.35))
            .min(sku.mem_bw_gbs * 0.95);
        // Kernel share grows slightly with core count (more cross-core
        // scheduling), bounded by the anchor's character.
        let sys_scale = (n_sku / n_ref).powf(0.15);
        let cpu_util_sys = (anchor.cpu_util_sys * sys_scale).min(anchor.cpu_util_total);

        // --- 7. Power ---------------------------------------------------------
        // Component fractions are anchored per workload: each SKU's design
        // power already budgets for its own clocks, so only the DRAM share
        // moves (with achieved bandwidth).
        let core_pct = anchor.power.core;
        let dram_pct = anchor.power.dram * (mem_bw / anchor.mem_bw_gbs.max(1.0)).sqrt();
        let power_pct = PowerBreakdown {
            core: core_pct,
            soc: anchor.power.soc,
            dram: dram_pct,
            other: anchor.power.other,
        };
        // Envelope utilization: a workload that drives every core flat out
        // (SPEC, act→1) fills a bigger part's power budget on bigger parts,
        // while SLO- and utilization-bound workloads leave progressively
        // more of a many-core SKU's envelope idle. Anchored (=1) on the
        // reference SKU; calibrated against Figure 14's suite rows.
        // Activity combines how many cycles the cores are busy with how
        // much work each busy cycle retires: SPEC's dense, fully-utilized
        // execution fills a big part's power envelope; stall-heavy,
        // SLO-bound services leave much of it dark.
        let act = ((anchor.cpu_util_total / 100.0).powi(2) * (anchor_tmam.retiring / 45.0))
            .clamp(0.0, 1.6);
        let envelope =
            (1.0 + (0.0875 * act - 0.648 * (1.0 - act)) * (n_sku / n_ref).ln()).clamp(0.45, 2.0);
        let power_w = sku.design_power_w * power_pct.total() / 100.0 * envelope;
        let perf_per_watt = throughput / power_w.max(1.0);

        PerfEstimate {
            throughput,
            tmam,
            ipc,
            l1i_mpki,
            mem_bw_gbs: mem_bw,
            cpu_util_total: anchor.cpu_util_total,
            cpu_util_sys,
            freq_ghz: freq,
            power_w,
            power_pct,
            perf_per_watt,
            effective_cores: usl_sku,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profiles;
    use crate::sku;

    fn model() -> Model {
        Model::new()
    }

    #[test]
    fn reference_projection_reproduces_anchor() {
        let m = model();
        let os = OsConfig::default();
        for p in profiles::dcperf_suite()
            .iter()
            .chain(profiles::production_suite().iter())
        {
            let est = m.evaluate(p, &sku::SKU2, &os);
            let a = p.anchor.tmam.normalized();
            assert!((est.throughput - 1.0).abs() < 1e-9, "{}", p.name);
            assert!((est.ipc - p.anchor.ipc).abs() < 1e-9, "{}", p.name);
            assert!(
                (est.l1i_mpki - p.anchor.l1i_mpki).abs() < 1e-9,
                "{}",
                p.name
            );
            assert!((est.tmam.frontend - a.frontend).abs() < 1e-6, "{}", p.name);
            assert!(
                (est.freq_ghz - p.anchor.freq_ghz).abs() < 1e-9,
                "{}",
                p.name
            );
            assert!(
                (est.mem_bw_gbs - p.anchor.mem_bw_gbs).abs() < 1e-9,
                "{}",
                p.name
            );
        }
    }

    #[test]
    fn tmam_projection_sums_to_100() {
        let m = model();
        let os = OsConfig::default();
        for p in profiles::dcperf_suite() {
            for s in [&sku::SKU1, &sku::SKU3, &sku::SKU4, &sku::SKU_A, &sku::SKU_B] {
                let t = m.evaluate(&p, s, &os).tmam;
                let sum = t.frontend + t.bad_spec + t.backend + t.retiring;
                assert!(
                    (sum - 100.0).abs() < 1e-6,
                    "{} on {}: {sum}",
                    p.name,
                    s.name
                );
            }
        }
    }

    #[test]
    fn newer_x86_skus_are_faster() {
        let m = model();
        let os = OsConfig::default();
        for p in profiles::dcperf_suite() {
            let mut last = 0.0;
            for s in sku::X86_SKUS {
                let t = m.evaluate(&p, s, &os).throughput;
                assert!(t > last, "{} on {}: {t} <= {last}", p.name, s.name);
                last = t;
            }
        }
    }

    #[test]
    fn small_icache_hurts_web_workloads_most() {
        // §5.1: SKU-B's small L1-I "is not well-suited for the large code
        // base of web workloads".
        let m = model();
        let os = OsConfig::default();
        let web = profiles::djangobench();
        let video = profiles::videobench(1);
        // Compare IPC degradation caused by SKU-B's 16 KiB L1-I relative
        // to an otherwise-identical SKU with SKU-A's 64 KiB L1-I.
        let mut sku_b_big_l1i = sku::SKU_B.clone();
        sku_b_big_l1i.l1i_kb = 64.0;
        let web_drop =
            m.evaluate(&web, &sku::SKU_B, &os).ipc / m.evaluate(&web, &sku_b_big_l1i, &os).ipc;
        let video_drop =
            m.evaluate(&video, &sku::SKU_B, &os).ipc / m.evaluate(&video, &sku_b_big_l1i, &os).ipc;
        assert!(web_drop < 0.85, "web ipc ratio {web_drop}");
        assert!(
            web_drop < video_drop - 0.05,
            "web {web_drop} vs video {video_drop}"
        );
    }

    #[test]
    fn kernel_69_matters_only_at_extreme_core_counts() {
        // Figure 16: 3% on 176 cores, ~54% on 384 cores, for TaoBench.
        let m = model();
        let tao = profiles::taobench();
        let v64 = OsConfig {
            kernel: KernelVersion::V6_4,
        };
        let v69 = OsConfig {
            kernel: KernelVersion::V6_9,
        };
        let gain_176 = m.evaluate(&tao, &sku::SKU4, &v69).throughput
            / m.evaluate(&tao, &sku::SKU4, &v64).throughput;
        let gain_384 = m.evaluate(&tao, &sku::SKU_384C, &v69).throughput
            / m.evaluate(&tao, &sku::SKU_384C, &v64).throughput;
        assert!(gain_176 > 1.0 && gain_176 < 1.15, "gain@176 = {gain_176}");
        assert!(gain_384 > 1.25, "gain@384 = {gain_384}");
        assert!(gain_384 > gain_176);
    }

    #[test]
    fn spec_scales_better_than_dcperf_on_many_cores() {
        // The central Figure 2/3 claim: SPEC overestimates many-core
        // gains relative to datacenter workloads.
        let m = model();
        let os = OsConfig::default();
        let spec_gain: f64 = profiles::spec2017_suite()
            .iter()
            .map(|p| {
                m.evaluate(p, &sku::SKU4, &os).throughput
                    / m.evaluate(p, &sku::SKU1, &os).throughput
            })
            .sum::<f64>()
            / 10.0;
        let dcperf_gain: f64 = profiles::dcperf_suite()
            .iter()
            .map(|p| {
                m.evaluate(p, &sku::SKU4, &os).throughput
                    / m.evaluate(p, &sku::SKU1, &os).throughput
            })
            .sum::<f64>()
            / 5.0;
        assert!(
            spec_gain > dcperf_gain * 1.1,
            "spec {spec_gain} vs dcperf {dcperf_gain}"
        );
    }

    #[test]
    fn vendor_adjustment_improves_ipc_modestly() {
        // §5.2 / Figure 15: -36% L1-I misses → ~+2% IPC for MediaWiki.
        let m = model();
        let os = OsConfig::default();
        let mw = profiles::mediawiki();
        let base = m.evaluate(&mw, &sku::SKU2, &os);
        let adj = Adjustments {
            l1i_mpki_mult: 0.64,
            l2_miss_mult: 0.72,
            frontend_beta: Some(0.055),
        };
        let opt = m.evaluate_adjusted(&mw, &sku::SKU2, &os, &adj);
        let ipc_gain = opt.ipc / base.ipc - 1.0;
        assert!((0.005..=0.05).contains(&ipc_gain), "ipc gain {ipc_gain}");
        assert!((opt.l1i_mpki / base.l1i_mpki - 0.64).abs() < 1e-9);
    }

    #[test]
    fn power_tracks_design_power() {
        let m = model();
        let os = OsConfig::default();
        let p = profiles::mediawiki();
        let a = m.evaluate(&p, &sku::SKU_A, &os);
        let b = m.evaluate(&p, &sku::SKU_B, &os);
        // SKU-A's server is 175W design vs SKU-B's 275W.
        assert!(a.power_w < b.power_w);
    }

    #[test]
    fn perf_per_watt_is_throughput_over_power() {
        let m = model();
        let os = OsConfig::default();
        let p = profiles::feedsim();
        let est = m.evaluate(&p, &sku::SKU4, &os);
        assert!((est.perf_per_watt - est.throughput / est.power_w).abs() < 1e-12);
    }
}
