//! Workload profiles: structural parameters plus the microarchitecture
//! anchor measured on the reference SKU.
//!
//! Anchor values ([`MicroAnchor`]) are transcribed from the paper's SKU2
//! measurements: TMAM from Figure 4, IPC from Figure 6, memory bandwidth
//! from Figure 7, L1-I MPKI from Figure 8, CPU utilization from Figure 9,
//! power from Figure 10, frequency from Figure 11, and the datacenter-tax
//! cycle breakdown from Figure 12. Structural parameters (footprints,
//! thread ratios, fan-out, scaling coefficients) come from Table 1 and the
//! benchmark descriptions of §3.2.

use serde::Serialize;

/// Top-down pipeline-slot percentages (must sum to ~100).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Tmam {
    /// Frontend-bound slots, %.
    pub frontend: f64,
    /// Bad-speculation slots, %.
    pub bad_spec: f64,
    /// Backend-bound slots, %.
    pub backend: f64,
    /// Retiring slots, %.
    pub retiring: f64,
}

impl Tmam {
    /// Creates a TMAM split.
    ///
    /// # Panics
    ///
    /// Panics if the components do not sum to 100 ± 2 (the figures are
    /// read to the nearest percent).
    pub fn new(frontend: f64, bad_spec: f64, backend: f64, retiring: f64) -> Self {
        let sum = frontend + bad_spec + backend + retiring;
        assert!(
            (98.0..=102.0).contains(&sum),
            "TMAM components must sum to ~100, got {sum}"
        );
        Self {
            frontend,
            bad_spec,
            backend,
            retiring,
        }
    }

    /// Renormalizes the components to sum exactly 100.
    pub fn normalized(&self) -> Tmam {
        let sum = self.frontend + self.bad_spec + self.backend + self.retiring;
        Tmam {
            frontend: self.frontend / sum * 100.0,
            bad_spec: self.bad_spec / sum * 100.0,
            backend: self.backend / sum * 100.0,
            retiring: self.retiring / sum * 100.0,
        }
    }
}

/// Server power split, each component as a percent of design power
/// (Figure 10's stacking).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PowerBreakdown {
    /// CPU core power, % of design power.
    pub core: f64,
    /// SoC non-core (interconnect, memory controller), %.
    pub soc: f64,
    /// DRAM, %.
    pub dram: f64,
    /// Everything else (storage, NIC, BMC, fans), %.
    pub other: f64,
}

impl PowerBreakdown {
    /// Total power as a percent of design power.
    pub fn total(&self) -> f64 {
        self.core + self.soc + self.dram + self.other
    }
}

/// One slice of the Figure-12 cycle breakdown.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TaxSlice {
    /// Slice label (e.g. `"RPC"`, `"(App) Ranking"`).
    pub label: &'static str,
    /// Percent of CPU cycles.
    pub percent: f64,
    /// Whether this is application logic (`true`) or datacenter tax.
    pub is_app: bool,
}

/// The microarchitecture profile measured on the reference SKU (SKU2).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MicroAnchor {
    /// TMAM split (Figure 4).
    pub tmam: Tmam,
    /// IPC per physical core, SMT on (Figure 6).
    pub ipc: f64,
    /// Memory bandwidth consumption, GB/s (Figure 7).
    pub mem_bw_gbs: f64,
    /// L1 I-cache misses per kilo-instruction (Figure 8).
    pub l1i_mpki: f64,
    /// Total CPU utilization, % (Figure 9).
    pub cpu_util_total: f64,
    /// Kernel+IRQ CPU utilization, % (Figure 9).
    pub cpu_util_sys: f64,
    /// Average core frequency, GHz (Figure 11).
    pub freq_ghz: f64,
    /// Power breakdown (Figure 10; suite averages where the figure has no
    /// per-workload column).
    pub power: PowerBreakdown,
}

/// Which suite a profile belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum ProfileKind {
    /// A Meta production workload (aggregated fleet measurement).
    Production,
    /// A DCPerf benchmark.
    DcPerf,
    /// A SPEC CPU 2017 rate benchmark.
    Spec2017,
    /// A SPEC CPU 2006 rate benchmark (the paper's selected subset).
    Spec2006,
    /// A CloudSuite benchmark.
    CloudSuite,
}

/// A complete workload description: anchor + structural parameters.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WorkloadProfile {
    /// Display name (matches the paper's figure labels).
    pub name: &'static str,
    /// Suite membership.
    pub kind: ProfileKind,
    /// Microarchitecture anchor on the reference SKU.
    pub anchor: MicroAnchor,
    /// Instruction working-set footprint, KiB.
    pub icache_kb: f64,
    /// Data working set, MiB (drives LLC/bandwidth sensitivity).
    pub data_mb: f64,
    /// Threads per logical core (Table 1's thread-to-core ratio).
    pub thread_core_ratio: f64,
    /// RPC fan-out per request (Table 1).
    pub rpc_fanout: f64,
    /// Instructions per request (Table 1).
    pub instructions_per_request: f64,
    /// USL contention coefficient σ (serialization).
    pub usl_sigma: f64,
    /// USL coherence coefficient κ (application crosstalk, × N(N−1)).
    pub usl_kappa: f64,
    /// Kernel-contention coefficient (× N⁴): the global-counter
    /// coherence pathology of §5.3, shrunk ~16× by the kernel-6.9
    /// ratelimit patch.
    pub kernel_kappa: f64,
    /// Throughput sensitivity to frequency (1.0 = linear).
    pub freq_sensitivity: f64,
    /// Throughput yield of the second SMT thread (0 = none, 1 = double).
    pub smt_yield: f64,
    /// Figure-12 cycle breakdown (empty for SPEC/production workloads the
    /// figure does not cover).
    pub tax: Vec<TaxSlice>,
    /// Fleet power weight for the production suite score (§4.1 weighs
    /// production workloads by power consumption); 1.0 elsewhere.
    pub fleet_weight: f64,
}

impl WorkloadProfile {
    /// Sum of tax (non-app) slices, % of cycles.
    pub fn tax_percent(&self) -> f64 {
        self.tax
            .iter()
            .filter(|s| !s.is_app)
            .map(|s| s.percent)
            .sum()
    }

    /// Sum of application slices, % of cycles.
    pub fn app_percent(&self) -> f64 {
        self.tax
            .iter()
            .filter(|s| s.is_app)
            .map(|s| s.percent)
            .sum()
    }
}

/// Constructors for every profile in the evaluation, plus suite
/// groupings.
pub mod profiles {
    use super::*;

    fn slice(label: &'static str, percent: f64, is_app: bool) -> TaxSlice {
        TaxSlice {
            label,
            percent,
            is_app,
        }
    }

    // Suite-average power splits for workloads Figure 10 does not cover.
    const PROD_AVG_POWER: PowerBreakdown = PowerBreakdown {
        core: 32.0,
        soc: 26.0,
        dram: 10.0,
        other: 19.0,
    };
    const DCPERF_AVG_POWER: PowerBreakdown = PowerBreakdown {
        core: 39.0,
        soc: 22.0,
        dram: 10.0,
        other: 13.0,
    };

    // ---------------------------------------------------------------
    // Production workloads
    // ---------------------------------------------------------------

    /// "Cache (prod)": the TAO-style read-through caching tier.
    pub fn cache_prod() -> WorkloadProfile {
        WorkloadProfile {
            name: "Cache (prod)",
            kind: ProfileKind::Production,
            anchor: MicroAnchor {
                tmam: Tmam::new(41.0, 6.0, 22.0, 31.0),
                ipc: 1.2,
                mem_bw_gbs: 29.0,
                l1i_mpki: 56.0,
                cpu_util_total: 90.0,
                cpu_util_sys: 30.0,
                freq_ghz: 2.00,
                power: PROD_AVG_POWER,
            },
            icache_kb: 220.0,
            data_mb: 48_000.0,
            thread_core_ratio: 10.0,
            rpc_fanout: 10.0,
            instructions_per_request: 1e3,
            usl_sigma: 0.001,
            usl_kappa: 5.0e-7,
            kernel_kappa: 1.7e-10,
            freq_sensitivity: 0.85,
            smt_yield: 0.35,
            tax: vec![
                slice("(App) KVStore logic", 20.0, true),
                slice("RPC", 20.0, false),
                slice("Compression", 12.0, false),
                slice("Serialization", 12.0, false),
                slice("KVStore", 10.0, false),
                slice("ThreadManager", 8.0, false),
                slice("Memory", 8.0, false),
                slice("Hashing", 4.0, false),
                slice("Others", 6.0, false),
            ],
            fleet_weight: 1.2,
        }
    }

    /// "Ranking (prod)": newsfeed ranking.
    pub fn ranking_prod() -> WorkloadProfile {
        WorkloadProfile {
            name: "Ranking (prod)",
            kind: ProfileKind::Production,
            anchor: MicroAnchor {
                tmam: Tmam::new(29.0, 13.0, 13.0, 44.0),
                ipc: 1.8,
                mem_bw_gbs: 31.0,
                l1i_mpki: 17.0,
                cpu_util_total: 61.0,
                cpu_util_sys: 10.0,
                freq_ghz: 2.10,
                power: PowerBreakdown {
                    core: 31.0,
                    soc: 29.0,
                    dram: 9.0,
                    other: 19.0,
                },
            },
            icache_kb: 300.0,
            data_mb: 8_000.0,
            thread_core_ratio: 10.0,
            rpc_fanout: 10.0,
            instructions_per_request: 1e10,
            usl_sigma: 0.0015,
            usl_kappa: 4.0e-7,
            kernel_kappa: 1.0e-11,
            freq_sensitivity: 0.95,
            smt_yield: 0.30,
            tax: vec![
                slice("(App) Feature Extraction", 25.0, true),
                slice("(App) Ranking", 20.0, true),
                slice("RPC", 15.0, false),
                slice("Compression", 10.0, false),
                slice("Serialization", 8.0, false),
                slice("Memory", 7.0, false),
                slice("ThreadManager", 5.0, false),
                slice("Hashing", 3.0, false),
                slice("Others", 7.0, false),
            ],
            fleet_weight: 1.5,
        }
    }

    /// "IG Web (prod)": Instagram's Django frontend.
    pub fn igweb_prod() -> WorkloadProfile {
        WorkloadProfile {
            name: "IG Web (prod)",
            kind: ProfileKind::Production,
            anchor: MicroAnchor {
                tmam: Tmam::new(48.0, 9.0, 18.0, 25.0),
                ipc: 1.0,
                mem_bw_gbs: 19.0,
                l1i_mpki: 55.0,
                cpu_util_total: 98.0,
                cpu_util_sys: 13.0,
                freq_ghz: 1.92,
                power: PowerBreakdown {
                    core: 33.0,
                    soc: 30.0,
                    dram: 11.0,
                    other: 20.0,
                },
            },
            icache_kb: 1_400.0,
            data_mb: 4_000.0,
            thread_core_ratio: 100.0,
            rpc_fanout: 100.0,
            instructions_per_request: 1e9,
            usl_sigma: 0.0012,
            usl_kappa: 5.0e-7,
            kernel_kappa: 2.0e-11,
            freq_sensitivity: 0.92,
            smt_yield: 0.40,
            tax: Vec::new(),
            fleet_weight: 1.3,
        }
    }

    /// "FB Web (prod)": Facebook's HHVM frontend, "more than half a
    /// million servers".
    pub fn fbweb_prod() -> WorkloadProfile {
        WorkloadProfile {
            name: "FB Web (prod)",
            kind: ProfileKind::Production,
            anchor: MicroAnchor {
                tmam: Tmam::new(39.0, 9.0, 23.0, 29.0),
                ipc: 1.2,
                mem_bw_gbs: 36.0,
                l1i_mpki: 39.0,
                cpu_util_total: 99.0,
                cpu_util_sys: 11.0,
                freq_ghz: 1.90,
                power: PowerBreakdown {
                    core: 34.0,
                    soc: 28.0,
                    dram: 10.0,
                    other: 21.0,
                },
            },
            icache_kb: 1_600.0,
            data_mb: 6_000.0,
            thread_core_ratio: 100.0,
            rpc_fanout: 100.0,
            instructions_per_request: 1e9,
            usl_sigma: 0.0012,
            usl_kappa: 5.0e-7,
            kernel_kappa: 2.0e-11,
            freq_sensitivity: 0.92,
            smt_yield: 0.40,
            tax: vec![
                slice("(App) HHVM JIT", 30.0, true),
                slice("(App) RPC", 8.0, true),
                slice("(App) MySQL", 6.0, true),
                slice("RPC", 12.0, false),
                slice("Compression", 8.0, false),
                slice("Serialization", 7.0, false),
                slice("Memory", 8.0, false),
                slice("ThreadManager", 5.0, false),
                slice("Hashing", 4.0, false),
                slice("Others", 12.0, false),
            ],
            fleet_weight: 2.0,
        }
    }

    /// "Spark (prod)": the data-warehouse tier.
    pub fn spark_prod() -> WorkloadProfile {
        WorkloadProfile {
            name: "Spark (prod)",
            kind: ProfileKind::Production,
            anchor: MicroAnchor {
                tmam: Tmam::new(24.0, 11.0, 2.0, 64.0),
                ipc: 2.6,
                mem_bw_gbs: 36.0,
                l1i_mpki: 7.0,
                cpu_util_total: 70.0,
                cpu_util_sys: 9.0,
                freq_ghz: 1.80,
                power: PROD_AVG_POWER,
            },
            icache_kb: 160.0,
            data_mb: 100_000.0,
            thread_core_ratio: 1.0,
            rpc_fanout: 10.0,
            instructions_per_request: 1e10,
            usl_sigma: 0.0012,
            usl_kappa: 4.0e-7,
            kernel_kappa: 5.0e-11,
            freq_sensitivity: 0.9,
            smt_yield: 0.25,
            tax: vec![
                slice("(App) Spark", 45.0, true),
                slice("RPC", 6.0, false),
                slice("Compression", 12.0, false),
                slice("Serialization", 14.0, false),
                slice("Memory", 8.0, false),
                slice("IO Preparation", 6.0, false),
                slice("ThreadManager", 4.0, false),
                slice("Others", 5.0, false),
            ],
            fleet_weight: 1.0,
        }
    }

    /// Video transcoding production workloads (three quality settings),
    /// present in Figure 10's power comparison.
    pub fn video_prod(setting: u8) -> WorkloadProfile {
        let (name, core, soc, dram, other) = match setting {
            1 => ("Video1 (prod)", 26.0, 26.0, 12.0, 18.0),
            2 => ("Video2 (prod)", 32.0, 22.0, 10.0, 18.0),
            _ => ("Video3 (prod)", 36.0, 19.0, 8.0, 19.0),
        };
        WorkloadProfile {
            name,
            kind: ProfileKind::Production,
            anchor: MicroAnchor {
                tmam: Tmam::new(12.0, 6.0, 30.0, 52.0),
                ipc: 2.2,
                mem_bw_gbs: 22.0,
                l1i_mpki: 5.0,
                cpu_util_total: 97.0,
                cpu_util_sys: 3.0,
                freq_ghz: 1.95,
                power: PowerBreakdown {
                    core,
                    soc,
                    dram,
                    other,
                },
            },
            icache_kb: 90.0,
            data_mb: 400.0,
            thread_core_ratio: 1.0,
            rpc_fanout: 0.0,
            instructions_per_request: 1e6,
            usl_sigma: 0.0002,
            usl_kappa: 1.0e-8,
            kernel_kappa: 1.0e-12,
            freq_sensitivity: 1.0,
            smt_yield: 0.30,
            tax: Vec::new(),
            fleet_weight: 0.8,
        }
    }

    // ---------------------------------------------------------------
    // DCPerf benchmarks
    // ---------------------------------------------------------------

    /// TaoBench (models Cache (prod)).
    pub fn taobench() -> WorkloadProfile {
        WorkloadProfile {
            name: "TaoBench",
            kind: ProfileKind::DcPerf,
            anchor: MicroAnchor {
                tmam: Tmam::new(33.0, 5.0, 31.0, 31.0),
                ipc: 1.1,
                mem_bw_gbs: 17.0,
                l1i_mpki: 54.0,
                cpu_util_total: 86.0,
                cpu_util_sys: 31.0,
                freq_ghz: 2.00,
                power: DCPERF_AVG_POWER,
            },
            icache_kb: 190.0,
            data_mb: 20_000.0,
            thread_core_ratio: 10.0,
            rpc_fanout: 10.0,
            instructions_per_request: 1e3,
            usl_sigma: 0.0005,
            usl_kappa: 5.0e-7,
            kernel_kappa: 1.7e-10,
            freq_sensitivity: 0.85,
            smt_yield: 0.35,
            tax: vec![
                slice("(App) KVStore logic", 22.0, true),
                slice("RPC", 24.0, false),
                slice("Compression", 4.0, false),
                slice("Serialization", 5.0, false),
                slice("KVStore", 14.0, false),
                slice("ThreadManager", 10.0, false),
                slice("Memory", 10.0, false),
                slice("Benchmark Clients", 6.0, false),
                slice("Hashing", 3.0, false),
                slice("Others", 2.0, false),
            ],
            fleet_weight: 1.0,
        }
    }

    /// FeedSim (models Ranking (prod)).
    pub fn feedsim() -> WorkloadProfile {
        WorkloadProfile {
            name: "FeedSim",
            kind: ProfileKind::DcPerf,
            anchor: MicroAnchor {
                tmam: Tmam::new(33.0, 12.0, 7.0, 49.0),
                ipc: 1.8,
                mem_bw_gbs: 30.0,
                l1i_mpki: 14.0,
                cpu_util_total: 64.0,
                cpu_util_sys: 1.0,
                freq_ghz: 2.01,
                power: PowerBreakdown {
                    core: 38.0,
                    soc: 23.0,
                    dram: 10.0,
                    other: 13.0,
                },
            },
            icache_kb: 280.0,
            data_mb: 7_000.0,
            thread_core_ratio: 10.0,
            rpc_fanout: 10.0,
            instructions_per_request: 1e10,
            usl_sigma: 0.0008,
            usl_kappa: 4.0e-7,
            kernel_kappa: 1.0e-11,
            freq_sensitivity: 0.95,
            smt_yield: 0.30,
            tax: vec![
                slice("(App) Feature Extraction", 24.0, true),
                slice("(App) Ranking", 22.0, true),
                slice("RPC", 16.0, false),
                slice("Compression", 9.0, false),
                slice("Serialization", 8.0, false),
                slice("Memory", 6.0, false),
                slice("ThreadManager", 5.0, false),
                slice("Benchmark Clients", 4.0, false),
                slice("Hashing", 2.0, false),
                slice("Others", 4.0, false),
            ],
            fleet_weight: 1.0,
        }
    }

    /// DjangoBench (models IG Web (prod)).
    pub fn djangobench() -> WorkloadProfile {
        WorkloadProfile {
            name: "DjangoBench",
            kind: ProfileKind::DcPerf,
            anchor: MicroAnchor {
                tmam: Tmam::new(46.0, 10.0, 5.0, 39.0),
                ipc: 1.4,
                mem_bw_gbs: 21.0,
                l1i_mpki: 46.0,
                cpu_util_total: 95.0,
                cpu_util_sys: 3.0,
                freq_ghz: 1.90,
                power: PowerBreakdown {
                    core: 40.0,
                    soc: 21.0,
                    dram: 9.0,
                    other: 13.0,
                },
            },
            icache_kb: 1_100.0,
            data_mb: 3_000.0,
            thread_core_ratio: 100.0,
            rpc_fanout: 100.0,
            instructions_per_request: 1e9,
            usl_sigma: 0.0007,
            usl_kappa: 5.0e-7,
            kernel_kappa: 2.0e-11,
            freq_sensitivity: 0.92,
            smt_yield: 0.40,
            tax: Vec::new(),
            fleet_weight: 1.0,
        }
    }

    /// MediaWiki (models FB Web (prod)).
    pub fn mediawiki() -> WorkloadProfile {
        WorkloadProfile {
            name: "Mediawiki",
            kind: ProfileKind::DcPerf,
            anchor: MicroAnchor {
                tmam: Tmam::new(36.0, 10.0, 18.0, 36.0),
                ipc: 1.4,
                mem_bw_gbs: 29.0,
                l1i_mpki: 31.0,
                cpu_util_total: 95.0,
                cpu_util_sys: 10.0,
                freq_ghz: 1.91,
                power: PowerBreakdown {
                    core: 40.0,
                    soc: 22.0,
                    dram: 10.0,
                    other: 13.0,
                },
            },
            icache_kb: 1_300.0,
            data_mb: 5_000.0,
            thread_core_ratio: 100.0,
            rpc_fanout: 100.0,
            instructions_per_request: 1e9,
            usl_sigma: 0.0007,
            usl_kappa: 5.0e-7,
            kernel_kappa: 2.0e-11,
            freq_sensitivity: 0.92,
            smt_yield: 0.40,
            tax: vec![
                slice("(App) HHVM JIT", 32.0, true),
                slice("(App) MySQL", 8.0, true),
                slice("RPC", 12.0, false),
                slice("Compression", 7.0, false),
                slice("Serialization", 6.0, false),
                slice("Memory", 7.0, false),
                slice("ThreadManager", 5.0, false),
                slice("Benchmark Clients", 5.0, false),
                slice("Hashing", 3.0, false),
                slice("Others", 15.0, false),
            ],
            fleet_weight: 1.0,
        }
    }

    /// SparkBench (models Spark (prod)).
    pub fn sparkbench() -> WorkloadProfile {
        WorkloadProfile {
            name: "SparkBench",
            kind: ProfileKind::DcPerf,
            anchor: MicroAnchor {
                tmam: Tmam::new(21.0, 8.0, 3.0, 68.0),
                ipc: 2.6,
                mem_bw_gbs: 33.0,
                l1i_mpki: 12.0,
                cpu_util_total: 73.0,
                cpu_util_sys: 17.0,
                freq_ghz: 1.80,
                power: DCPERF_AVG_POWER,
            },
            icache_kb: 180.0,
            data_mb: 100_000.0,
            thread_core_ratio: 1.0,
            rpc_fanout: 10.0,
            instructions_per_request: 1e10,
            usl_sigma: 0.0007,
            usl_kappa: 4.0e-7,
            kernel_kappa: 5.0e-11,
            freq_sensitivity: 0.9,
            smt_yield: 0.25,
            tax: vec![
                slice("(App) Spark", 48.0, true),
                slice("RPC", 5.0, false),
                slice("Compression", 11.0, false),
                slice("Serialization", 13.0, false),
                slice("Memory", 8.0, false),
                slice("IO Preparation", 7.0, false),
                slice("ThreadManager", 4.0, false),
                slice("Others", 4.0, false),
            ],
            fleet_weight: 1.0,
        }
    }

    /// VideoTranscodeBench at one of the three quality settings of
    /// Figure 10.
    pub fn videobench(setting: u8) -> WorkloadProfile {
        let (name, core, soc, dram, other) = match setting {
            1 => ("VideoBench1", 31.0, 26.0, 11.0, 13.0),
            2 => ("VideoBench2", 40.0, 22.0, 9.0, 13.0),
            _ => ("VideoBench3", 42.0, 19.0, 8.0, 14.0),
        };
        WorkloadProfile {
            name,
            kind: ProfileKind::DcPerf,
            anchor: MicroAnchor {
                tmam: Tmam::new(11.0, 6.0, 29.0, 54.0),
                ipc: 2.3,
                mem_bw_gbs: 20.0,
                l1i_mpki: 4.0,
                cpu_util_total: 98.0,
                cpu_util_sys: 2.0,
                freq_ghz: 1.95,
                power: PowerBreakdown {
                    core,
                    soc,
                    dram,
                    other,
                },
            },
            icache_kb: 80.0,
            data_mb: 350.0,
            thread_core_ratio: 1.0,
            rpc_fanout: 0.0,
            instructions_per_request: 1e6,
            usl_sigma: 0.0002,
            usl_kappa: 1.0e-8,
            kernel_kappa: 1.0e-12,
            freq_sensitivity: 1.0,
            smt_yield: 0.30,
            tax: Vec::new(),
            fleet_weight: 1.0,
        }
    }

    // ---------------------------------------------------------------
    // SPEC CPU 2017 (the paper's Figure 4–11 subset)
    // ---------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn spec17(
        name: &'static str,
        tmam: Tmam,
        ipc: f64,
        mem_bw: f64,
        l1i_mpki: f64,
        freq: f64,
        power_total_hint: f64,
        data_mb: f64,
    ) -> WorkloadProfile {
        // SPEC's split skews toward core power; scale a generic split to
        // the figure's per-benchmark total.
        let scale = power_total_hint / 78.0;
        WorkloadProfile {
            name,
            kind: ProfileKind::Spec2017,
            anchor: MicroAnchor {
                tmam,
                ipc,
                mem_bw_gbs: mem_bw,
                l1i_mpki,
                cpu_util_total: 100.0,
                cpu_util_sys: 0.5,
                freq_ghz: freq,
                power: PowerBreakdown {
                    core: 34.0 * scale,
                    soc: 20.0 * scale,
                    dram: 7.0 * scale,
                    other: 17.0 * scale,
                },
            },
            icache_kb: 24.0,
            data_mb,
            thread_core_ratio: 1.0,
            rpc_fanout: 0.0,
            instructions_per_request: 1e12,
            usl_sigma: 0.00005,
            usl_kappa: 5.0e-9,
            kernel_kappa: 0.0,
            freq_sensitivity: 1.0,
            smt_yield: 0.28,
            tax: Vec::new(),
            fleet_weight: 1.0,
        }
    }

    /// The SPEC 2017 subset used in Figures 4–11.
    pub fn spec2017_suite() -> Vec<WorkloadProfile> {
        vec![
            spec17(
                "500.perlbench",
                Tmam::new(29.0, 3.0, 19.0, 49.0),
                2.0,
                16.0,
                3.0,
                2.07,
                77.0,
                80.0,
            ),
            spec17(
                "502.gcc",
                Tmam::new(29.0, 9.0, 16.0, 47.0),
                1.6,
                43.0,
                9.0,
                2.08,
                80.0,
                900.0,
            ),
            spec17(
                "505.mcf",
                Tmam::new(13.0, 11.0, 59.0, 17.0),
                0.6,
                68.0,
                2.0,
                2.00,
                82.0,
                3_300.0,
            ),
            spec17(
                "520.omnetpp",
                Tmam::new(15.0, 7.0, 56.0, 22.0),
                0.8,
                50.0,
                4.0,
                2.17,
                80.0,
                1_700.0,
            ),
            spec17(
                "523.xalancbmk",
                Tmam::new(21.0, 2.0, 43.0, 33.0),
                1.5,
                18.0,
                4.0,
                2.16,
                80.0,
                400.0,
            ),
            spec17(
                "525.x264",
                Tmam::new(10.0, 5.0, 25.0, 60.0),
                3.3,
                5.0,
                4.0,
                2.14,
                75.0,
                100.0,
            ),
            spec17(
                "531.deepsjeng",
                Tmam::new(28.0, 11.0, 9.0, 51.0),
                2.1,
                8.0,
                1.0,
                2.13,
                77.0,
                600.0,
            ),
            spec17(
                "541.leela",
                Tmam::new(22.0, 20.0, 10.0, 48.0),
                1.9,
                3.0,
                1.0,
                2.15,
                74.0,
                30.0,
            ),
            spec17(
                "548.exchange2",
                Tmam::new(23.0, 7.0, 3.0, 67.0),
                2.5,
                0.3,
                2.0,
                2.08,
                71.0,
                1.0,
            ),
            spec17(
                "557.xz",
                Tmam::new(14.0, 17.0, 23.0, 45.0),
                1.8,
                21.0,
                2.0,
                2.19,
                80.0,
                1_800.0,
            ),
        ]
    }

    /// The SPEC 2006 subset the paper selected "as better representing
    /// Meta's workloads" — modeled as 2006-era counterparts with smaller
    /// working sets (so less upside from big caches and bandwidth).
    pub fn spec2006_suite() -> Vec<WorkloadProfile> {
        spec2017_suite()
            .into_iter()
            .map(|mut p| {
                p.kind = ProfileKind::Spec2006;
                p.data_mb = (p.data_mb * 0.35).max(1.0);
                // 2006 binaries stress memory less: shift some backend
                // stall into retiring at the anchor.
                let shift = p.anchor.tmam.backend * 0.25;
                p.anchor.tmam = Tmam::new(
                    p.anchor.tmam.frontend,
                    p.anchor.tmam.bad_spec,
                    p.anchor.tmam.backend - shift,
                    p.anchor.tmam.retiring + shift,
                )
                .normalized();
                p.anchor.ipc *= 1.05;
                p
            })
            .collect()
    }

    /// The production suite (Figure 2's "Production" bar), with the video
    /// workloads that only appear in the power study excluded from the
    /// performance score, as in the paper's §4.1 pairing.
    pub fn production_suite() -> Vec<WorkloadProfile> {
        vec![
            cache_prod(),
            ranking_prod(),
            igweb_prod(),
            fbweb_prod(),
            spark_prod(),
        ]
    }

    /// The DCPerf suite used for the Figure 2 score.
    pub fn dcperf_suite() -> Vec<WorkloadProfile> {
        vec![
            taobench(),
            feedsim(),
            djangobench(),
            mediawiki(),
            sparkbench(),
        ]
    }

    /// `(DCPerf benchmark, production counterpart)` pairs, as in
    /// Figures 4–12's column pairing.
    pub fn dcperf_production_pairs() -> Vec<(WorkloadProfile, WorkloadProfile)> {
        vec![
            (taobench(), cache_prod()),
            (feedsim(), ranking_prod()),
            (djangobench(), igweb_prod()),
            (mediawiki(), fbweb_prod()),
            (sparkbench(), spark_prod()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::profiles::*;
    use super::*;

    fn all_profiles() -> Vec<WorkloadProfile> {
        let mut v = production_suite();
        v.extend(dcperf_suite());
        v.extend(spec2017_suite());
        v.extend(spec2006_suite());
        v.push(video_prod(1));
        v.push(video_prod(2));
        v.push(video_prod(3));
        v.push(videobench(1));
        v.push(videobench(2));
        v.push(videobench(3));
        v
    }

    #[test]
    fn tmam_sums_to_100() {
        for p in all_profiles() {
            let t = p.anchor.tmam;
            let sum = t.frontend + t.bad_spec + t.backend + t.retiring;
            assert!((98.0..=102.0).contains(&sum), "{}: {sum}", p.name);
        }
    }

    #[test]
    #[should_panic(expected = "sum to ~100")]
    fn tmam_rejects_bad_split() {
        let _ = Tmam::new(50.0, 50.0, 50.0, 50.0);
    }

    #[test]
    fn tmam_normalized_sums_exactly() {
        let t = Tmam::new(40.0, 10.0, 25.0, 26.0).normalized();
        let sum = t.frontend + t.bad_spec + t.backend + t.retiring;
        assert!((sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn anchors_match_figure6_ipc() {
        assert_eq!(cache_prod().anchor.ipc, 1.2);
        assert_eq!(taobench().anchor.ipc, 1.1);
        assert_eq!(igweb_prod().anchor.ipc, 1.0);
        assert_eq!(djangobench().anchor.ipc, 1.4);
        assert_eq!(spark_prod().anchor.ipc, 2.6);
    }

    #[test]
    fn anchors_match_figure8_mpki() {
        assert_eq!(cache_prod().anchor.l1i_mpki, 56.0);
        assert_eq!(taobench().anchor.l1i_mpki, 54.0);
        assert_eq!(mediawiki().anchor.l1i_mpki, 31.0);
        // SPEC L1-I misses are an order of magnitude lower (1–9).
        for p in spec2017_suite() {
            assert!(p.anchor.l1i_mpki <= 9.0, "{}", p.name);
        }
    }

    #[test]
    fn taobench_under_represents_compression_as_in_figure12() {
        // §4.5: "TaoBench spends significantly less time on compression
        // and serialization compared to the production workload".
        let tao: f64 = taobench()
            .tax
            .iter()
            .filter(|s| s.label == "Compression" || s.label == "Serialization")
            .map(|s| s.percent)
            .sum();
        let cache: f64 = cache_prod()
            .tax
            .iter()
            .filter(|s| s.label == "Compression" || s.label == "Serialization")
            .map(|s| s.percent)
            .sum();
        assert!(tao < cache / 2.0, "tao={tao} cache={cache}");
    }

    #[test]
    fn tax_slices_sum_to_100_where_present() {
        for p in all_profiles() {
            if p.tax.is_empty() {
                continue;
            }
            let sum = p.app_percent() + p.tax_percent();
            assert!((99.0..=101.0).contains(&sum), "{}: {sum}", p.name);
        }
    }

    #[test]
    fn dcperf_tax_is_substantial() {
        // The datacenter tax is 18-82% of cycles; every profiled DCPerf
        // benchmark must model a substantial share.
        for (bench, _) in dcperf_production_pairs() {
            if bench.tax.is_empty() {
                continue;
            }
            let tax = bench.tax_percent();
            assert!((18.0..=82.0).contains(&tax), "{}: {tax}%", bench.name);
        }
    }

    #[test]
    fn spec_profiles_have_trivial_kernel_time() {
        for p in spec2017_suite() {
            assert!(p.anchor.cpu_util_sys <= 1.0, "{}", p.name);
            assert!(p.anchor.cpu_util_total >= 98.0, "{}", p.name);
        }
    }

    #[test]
    fn spec2006_differs_from_2017_as_designed() {
        let s17 = spec2017_suite();
        let s06 = spec2006_suite();
        assert_eq!(s17.len(), s06.len());
        for (a, b) in s17.iter().zip(&s06) {
            assert!(b.data_mb < a.data_mb || a.data_mb <= 1.0, "{}", a.name);
            assert!(b.anchor.tmam.backend <= a.anchor.tmam.backend + 1e-9);
        }
    }

    #[test]
    fn suite_groupings_are_consistent() {
        assert_eq!(production_suite().len(), 5);
        assert_eq!(dcperf_suite().len(), 5);
        assert_eq!(spec2017_suite().len(), 10);
        assert_eq!(dcperf_production_pairs().len(), 5);
        for p in production_suite() {
            assert_eq!(p.kind, ProfileKind::Production);
        }
        for p in dcperf_suite() {
            assert_eq!(p.kind, ProfileKind::DcPerf);
        }
    }

    #[test]
    fn power_totals_match_figure10_averages() {
        let prod_avg: f64 = production_suite()
            .iter()
            .map(|p| p.anchor.power.total())
            .sum::<f64>()
            / 5.0;
        let dcperf_avg: f64 = dcperf_suite()
            .iter()
            .map(|p| p.anchor.power.total())
            .sum::<f64>()
            / 5.0;
        let spec_avg: f64 = spec2017_suite()
            .iter()
            .map(|p| p.anchor.power.total())
            .sum::<f64>()
            / 10.0;
        // Figure 10: prod 87%, DCPerf 84%, SPEC 78%.
        assert!((prod_avg - 87.0).abs() < 4.0, "prod {prod_avg}");
        assert!((dcperf_avg - 84.0).abs() < 4.0, "dcperf {dcperf_avg}");
        assert!((spec_avg - 78.0).abs() < 3.0, "spec {spec_avg}");
        assert!(prod_avg > dcperf_avg && dcperf_avg > spec_avg);
    }
}
