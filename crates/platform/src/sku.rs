//! Server SKU specifications (Tables 3 and 4 of the paper, plus the
//! 384-core prototype of §5.3).
//!
//! The public columns (logical cores, RAM, network, storage, year, and the
//! ARM SKUs' relative L1-I size and server power) are taken verbatim from
//! the paper. Microarchitectural parameters the paper does not publish
//! (cache sizes, sustained frequency, memory bandwidth, pipeline width)
//! are filled with values representative of the server generations in
//! question; they are calibration inputs to the model, not claims about
//! the actual parts.

use serde::{Deserialize, Serialize};

/// Instruction-set family, for the ARM-vs-x86 comparisons of §5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Isa {
    /// x86-64 server parts (SKU1–SKU4).
    X86,
    /// ARM server parts (SKU-A, SKU-B).
    Arm,
}

impl std::fmt::Display for Isa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Isa::X86 => f.write_str("x86"),
            Isa::Arm => f.write_str("ARM"),
        }
    }
}

/// A server SKU: the paper's published columns plus the model's
/// microarchitecture parameters.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SkuSpec {
    /// SKU name as used in the paper ("SKU1", "SKU-A", …).
    pub name: &'static str,
    /// Instruction set family.
    pub isa: Isa,
    /// Logical (SMT) cores — Table 3/4's "Logical cores".
    pub logical_cores: u32,
    /// Physical cores.
    pub physical_cores: u32,
    /// RAM in GB — Table 3/4.
    pub ram_gb: u32,
    /// Network bandwidth in Gbps — Table 3/4.
    pub network_gbps: f64,
    /// Storage description — Table 3.
    pub storage: &'static str,
    /// Year of introduction — Table 3.
    pub year: u32,
    /// L1 instruction cache per core, KiB.
    pub l1i_kb: f64,
    /// L1 data cache per core, KiB.
    pub l1d_kb: f64,
    /// L2 cache per core, KiB.
    pub l2_kb: f64,
    /// Last-level cache, MiB (total).
    pub llc_mb: f64,
    /// Peak memory bandwidth, GB/s.
    pub mem_bw_gbs: f64,
    /// Loaded memory latency, ns.
    pub mem_latency_ns: f64,
    /// All-core sustained frequency under datacenter load, GHz.
    pub sustained_ghz: f64,
    /// Single-core max boost, GHz.
    pub boost_ghz: f64,
    /// Pipeline issue width (TMAM slot width).
    pub issue_width: f64,
    /// Branch-predictor quality factor (1.0 = SKU2 reference; higher is
    /// better, scales bad-speculation down).
    pub branch_quality: f64,
    /// Server design (budgeted) power in watts — Table 4 publishes the
    /// ARM SKUs'; the x86 values are representative.
    pub design_power_w: f64,
    /// Idle server power, watts.
    pub idle_power_w: f64,
}

impl SkuSpec {
    /// SMT ways (logical / physical cores).
    pub fn smt_ways(&self) -> u32 {
        (self.logical_cores / self.physical_cores).max(1)
    }

    /// One row of the Table 3/4 rendering.
    pub fn spec_row(&self) -> String {
        format!(
            "{:<8} {:>4} {:>8} {:>8} {:>6.1} {:<12} {:>5}",
            self.name,
            self.logical_cores,
            self.ram_gb,
            format!("{:.0}W", self.design_power_w),
            self.network_gbps,
            self.storage,
            self.year
        )
    }
}

/// SKU1 (Table 3): 36 logical cores, 64 GB, 12.5 Gbps, SATA, 2018.
pub const SKU1: SkuSpec = SkuSpec {
    name: "SKU1",
    isa: Isa::X86,
    logical_cores: 36,
    physical_cores: 18,
    ram_gb: 64,
    network_gbps: 12.5,
    storage: "256GB SATA",
    year: 2018,
    l1i_kb: 32.0,
    l1d_kb: 32.0,
    l2_kb: 1024.0,
    llc_mb: 24.75,
    mem_bw_gbs: 76.0,
    mem_latency_ns: 88.0,
    sustained_ghz: 2.65,
    boost_ghz: 3.7,
    issue_width: 4.0,
    branch_quality: 0.97,
    design_power_w: 140.0,
    idle_power_w: 45.0,
};

/// SKU2 (Table 3): 52 logical cores, 2021 — the calibration reference
/// (the paper's Figure 4–12 data were measured on it).
pub const SKU2: SkuSpec = SkuSpec {
    name: "SKU2",
    isa: Isa::X86,
    logical_cores: 52,
    physical_cores: 26,
    ram_gb: 64,
    network_gbps: 25.0,
    storage: "512GB NVMe",
    year: 2021,
    l1i_kb: 32.0,
    l1d_kb: 48.0,
    l2_kb: 1280.0,
    llc_mb: 39.0,
    mem_bw_gbs: 97.0,
    mem_latency_ns: 85.0,
    sustained_ghz: 2.1,
    boost_ghz: 3.4,
    issue_width: 4.0,
    branch_quality: 1.0,
    design_power_w: 240.0,
    idle_power_w: 70.0,
};

/// SKU3 (Table 3): 72 logical cores, 2022.
pub const SKU3: SkuSpec = SkuSpec {
    name: "SKU3",
    isa: Isa::X86,
    logical_cores: 72,
    physical_cores: 36,
    ram_gb: 64,
    network_gbps: 25.0,
    storage: "512GB NVMe",
    year: 2022,
    l1i_kb: 32.0,
    l1d_kb: 48.0,
    l2_kb: 1280.0,
    llc_mb: 54.0,
    mem_bw_gbs: 130.0,
    mem_latency_ns: 84.0,
    sustained_ghz: 2.15,
    boost_ghz: 3.5,
    issue_width: 4.0,
    branch_quality: 1.02,
    design_power_w: 300.0,
    idle_power_w: 85.0,
};

/// SKU4 (Table 3): 176 logical cores, 2023 — "Meta's latest server SKU"
/// at evaluation time.
pub const SKU4: SkuSpec = SkuSpec {
    name: "SKU4",
    isa: Isa::X86,
    logical_cores: 176,
    physical_cores: 88,
    ram_gb: 256,
    network_gbps: 50.0,
    storage: "1TB NVMe",
    year: 2023,
    l1i_kb: 32.0,
    l1d_kb: 32.0,
    l2_kb: 1024.0,
    llc_mb: 256.0,
    mem_bw_gbs: 430.0,
    mem_latency_ns: 95.0,
    sustained_ghz: 2.33,
    boost_ghz: 3.7,
    issue_width: 4.6,
    branch_quality: 1.04,
    design_power_w: 460.0,
    idle_power_w: 130.0,
};

/// SKU-A (Table 4): ARM, 72 cores, large L1-I (4× SKU-B's), 175 W.
pub const SKU_A: SkuSpec = SkuSpec {
    name: "SKU-A",
    isa: Isa::Arm,
    logical_cores: 72,
    physical_cores: 72,
    ram_gb: 256,
    network_gbps: 50.0,
    storage: "1TB NVMe",
    year: 2023,
    l1i_kb: 64.0,
    l1d_kb: 64.0,
    l2_kb: 1024.0,
    llc_mb: 96.0,
    mem_bw_gbs: 300.0,
    mem_latency_ns: 98.0,
    sustained_ghz: 2.2,
    boost_ghz: 2.5,
    issue_width: 4.0,
    branch_quality: 1.02,
    design_power_w: 175.0,
    idle_power_w: 55.0,
};

/// SKU-B (Table 4): ARM, 160 cores, small L1-I (1× baseline), 275 W.
pub const SKU_B: SkuSpec = SkuSpec {
    name: "SKU-B",
    isa: Isa::Arm,
    logical_cores: 160,
    physical_cores: 160,
    ram_gb: 256,
    network_gbps: 50.0,
    storage: "1TB NVMe",
    year: 2023,
    l1i_kb: 16.0,
    l1d_kb: 32.0,
    l2_kb: 512.0,
    llc_mb: 48.0,
    mem_bw_gbs: 220.0,
    mem_latency_ns: 115.0,
    sustained_ghz: 1.7,
    boost_ghz: 1.9,
    issue_width: 2.6,
    branch_quality: 0.92,
    design_power_w: 275.0,
    idle_power_w: 70.0,
};

/// The 384-logical-core prototype SKU of §5.3's kernel-scalability study.
pub const SKU_384C: SkuSpec = SkuSpec {
    name: "SKU-384",
    isa: Isa::X86,
    logical_cores: 384,
    physical_cores: 192,
    ram_gb: 512,
    network_gbps: 100.0,
    storage: "2TB NVMe",
    year: 2024,
    l1i_kb: 32.0,
    l1d_kb: 48.0,
    l2_kb: 1024.0,
    llc_mb: 384.0,
    mem_bw_gbs: 700.0,
    mem_latency_ns: 95.0,
    sustained_ghz: 2.66,
    boost_ghz: 3.8,
    issue_width: 5.6,
    branch_quality: 1.08,
    design_power_w: 500.0,
    idle_power_w: 140.0,
};

/// The x86 production SKUs of Table 3, in order.
pub const X86_SKUS: [&SkuSpec; 4] = [&SKU1, &SKU2, &SKU3, &SKU4];

/// The ARM candidate SKUs of Table 4.
pub const ARM_SKUS: [&SkuSpec; 2] = [&SKU_A, &SKU_B];

/// Renders Table 3 (x86 production SKUs).
pub fn render_table3() -> String {
    let mut out = String::from(
        "Table 3: x86-based production server SKUs\nSKU      cores   RAM(GB)    power   Gbps storage          year\n",
    );
    for sku in X86_SKUS {
        out.push_str(&sku.spec_row());
        out.push('\n');
    }
    out
}

/// Renders Table 4 (ARM candidate SKUs), including the published
/// normalized L1-I ratio.
pub fn render_table4() -> String {
    let mut out = String::from(
        "Table 4: ARM-based new server SKUs\nSKU      cores   RAM(GB)    power   Gbps storage          year\n",
    );
    for sku in ARM_SKUS {
        out.push_str(&sku.spec_row());
        out.push('\n');
    }
    out.push_str(&format!(
        "L1-I ratio (SKU-A : SKU-B) = {:.0}x : 1x\n",
        SKU_A.l1i_kb / SKU_B.l1i_kb
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_columns_match_paper() {
        assert_eq!(SKU1.logical_cores, 36);
        assert_eq!(SKU2.logical_cores, 52);
        assert_eq!(SKU3.logical_cores, 72);
        assert_eq!(SKU4.logical_cores, 176);
        assert_eq!(SKU1.ram_gb, 64);
        assert_eq!(SKU4.ram_gb, 256);
        assert_eq!(SKU1.network_gbps, 12.5);
        assert_eq!(SKU4.network_gbps, 50.0);
        assert_eq!(SKU1.year, 2018);
        assert_eq!(SKU4.year, 2023);
    }

    #[test]
    fn table4_columns_match_paper() {
        assert_eq!(SKU_A.logical_cores, 72);
        assert_eq!(SKU_B.logical_cores, 160);
        assert_eq!(SKU_A.design_power_w, 175.0);
        assert_eq!(SKU_B.design_power_w, 275.0);
        // "L1-I cache size (normalized): SKU-A 4×, SKU-B 1×".
        assert_eq!(SKU_A.l1i_kb / SKU_B.l1i_kb, 4.0);
    }

    #[test]
    fn smt_ways() {
        assert_eq!(SKU1.smt_ways(), 2);
        assert_eq!(SKU_A.smt_ways(), 1);
    }

    #[test]
    fn tables_render_all_rows() {
        let t3 = render_table3();
        for name in ["SKU1", "SKU2", "SKU3", "SKU4"] {
            assert!(t3.contains(name));
        }
        let t4 = render_table4();
        assert!(t4.contains("SKU-A") && t4.contains("SKU-B"));
        assert!(t4.contains("4x : 1x"));
    }

    #[test]
    fn sku_serializes_to_json() {
        let json = serde_json::to_string(&SKU4).unwrap();
        assert!(json.contains("\"SKU4\""));
        assert!(json.contains("176"));
    }
}
