//! SKU specifications, calibrated workload profiles, and the analytical
//! microarchitecture model behind DCPerf-RS's cross-SKU projections.
//!
//! The paper's evaluation (§4) compares DCPerf against Meta production
//! workloads and SPEC CPU across four x86 server generations (Table 3),
//! two ARM candidates (Table 4), and a 384-core prototype (§5.3). Those
//! machines are not available here, so this crate substitutes a
//! *calibrated analytical model*:
//!
//! * Every workload carries a [`MicroAnchor`] — its measured
//!   microarchitecture profile on the reference SKU (SKU2, "the most
//!   widely used SKU in Meta's fleet as of 2024"), taken from the paper's
//!   own Figures 4–12.
//! * [`Model`] projects that anchor onto any other [`SkuSpec`] through
//!   first-principles transfer functions: an instruction-cache capacity
//!   miss curve, TMAM stall re-composition, bandwidth-saturation backend
//!   pressure, a Universal Scalability Law core-scaling term (with the
//!   kernel-version contention coefficient of §5.3), an all-core
//!   frequency model, and a component power model.
//! * [`projection`] aggregates per-workload projections into the
//!   suite-level scores of Figures 2, 3, 14, 15, and 16, and
//!   [`cloudsuite`] reproduces the measured pathologies of Figure 13.
//!
//! The model is calibrated once against SKU2 and then *evaluated* on the
//! other SKUs; EXPERIMENTS.md records projected-versus-paper values for
//! every figure.
//!
//! # Examples
//!
//! ```
//! use dcperf_platform::{profiles, sku, Model};
//!
//! let model = Model::new();
//! let feedsim = profiles::feedsim();
//! let on_sku4 = model.evaluate(&feedsim, &sku::SKU4, &Default::default());
//! let on_sku1 = model.evaluate(&feedsim, &sku::SKU1, &Default::default());
//! assert!(on_sku4.throughput > on_sku1.throughput);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cloudsuite;
pub mod model;
pub mod profile;
pub mod projection;
pub mod sku;
pub mod vendor;

pub use model::{Model, OsConfig, PerfEstimate};
pub use profile::{
    profiles, MicroAnchor, PowerBreakdown, ProfileKind, TaxSlice, Tmam, WorkloadProfile,
};
pub use sku::{Isa, SkuSpec};
