//! Suite-level projections: the scores and comparisons of Figures 2, 3,
//! 14, and 16.

use crate::model::{KernelVersion, Model, OsConfig};
use crate::profile::{profiles, ProfileKind, WorkloadProfile};
use crate::sku::{self, SkuSpec};
use dcperf_util::{geometric_mean, weighted_geometric_mean};

/// A suite's normalized score on one SKU (SKU1 = 1.0).
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteScore {
    /// Suite label ("Production", "DCPerf", …).
    pub suite: &'static str,
    /// SKU name.
    pub sku: &'static str,
    /// Score relative to SKU1.
    pub score: f64,
}

/// Computes a suite score on `sku`: the geometric mean across workloads
/// of per-workload throughput normalized to SKU1. Production workloads
/// are weighted by fleet power share, as in §4.1.
pub fn suite_score(model: &Model, suite: &[WorkloadProfile], sku: &SkuSpec, os: &OsConfig) -> f64 {
    let ratios: Vec<f64> = suite
        .iter()
        .map(|p| {
            model.evaluate(p, sku, os).throughput / model.evaluate(p, &sku::SKU1, os).throughput
        })
        .collect();
    let weighted = suite
        .iter()
        .any(|p| p.kind == ProfileKind::Production && p.fleet_weight != 1.0);
    if weighted {
        let weights: Vec<f64> = suite.iter().map(|p| p.fleet_weight).collect();
        weighted_geometric_mean(&ratios, &weights).unwrap_or(0.0)
    } else {
        geometric_mean(&ratios).unwrap_or(0.0)
    }
}

/// Figure 2: per-SKU scores for Production, DCPerf, SPEC 2006, and
/// SPEC 2017, each normalized to SKU1.
pub fn figure2(model: &Model) -> Vec<SuiteScore> {
    let os = OsConfig::default();
    let suites: [(&'static str, Vec<WorkloadProfile>); 4] = [
        ("Production", profiles::production_suite()),
        ("DCPerf", profiles::dcperf_suite()),
        ("SPEC 2006", profiles::spec2006_suite()),
        ("SPEC 2017", profiles::spec2017_suite()),
    ];
    let mut out = Vec::new();
    for (label, suite) in &suites {
        for s in sku::X86_SKUS {
            out.push(SuiteScore {
                suite: label,
                sku: s.name,
                score: suite_score(model, suite, s, &os),
            });
        }
    }
    out
}

/// Figure 3: relative projection error of each benchmark suite versus the
/// production measurement, per SKU, in percent.
pub fn figure3(model: &Model) -> Vec<SuiteScore> {
    let fig2 = figure2(model);
    let prod: Vec<f64> = fig2
        .iter()
        .filter(|s| s.suite == "Production")
        .map(|s| s.score)
        .collect();
    let mut out = Vec::new();
    for suite in ["DCPerf", "SPEC 2006", "SPEC 2017"] {
        for (i, s) in fig2.iter().filter(|s| s.suite == suite).enumerate() {
            out.push(SuiteScore {
                suite,
                sku: s.sku,
                score: (s.score / prod[i] - 1.0) * 100.0,
            });
        }
    }
    out
}

/// One Figure 14 row: a benchmark's Perf/Watt on a SKU, normalized to its
/// Perf/Watt on SKU1.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfPerWatt {
    /// Benchmark (or suite geomean) label.
    pub benchmark: String,
    /// SKU name.
    pub sku: &'static str,
    /// Perf/Watt relative to SKU1.
    pub value: f64,
}

/// Figure 14: Perf/Watt of SKU4, SKU-A, and SKU-B for each DCPerf
/// benchmark, the DCPerf geomean, and the SPEC 2017 geomean — all
/// normalized to SKU1.
pub fn figure14(model: &Model) -> Vec<PerfPerWatt> {
    let os = OsConfig::default();
    let skus = [&sku::SKU4, &sku::SKU_A, &sku::SKU_B];
    let mut out = Vec::new();
    let dcperf = profiles::dcperf_suite();
    for s in skus {
        let mut ratios = Vec::new();
        for p in &dcperf {
            let base = model.evaluate(p, &sku::SKU1, &os).perf_per_watt;
            let here = model.evaluate(p, s, &os).perf_per_watt;
            ratios.push(here / base);
            out.push(PerfPerWatt {
                benchmark: p.name.to_owned(),
                sku: s.name,
                value: here / base,
            });
        }
        out.push(PerfPerWatt {
            benchmark: "DCPerf".to_owned(),
            sku: s.name,
            value: geometric_mean(&ratios).unwrap_or(0.0),
        });
        let spec_ratios: Vec<f64> = profiles::spec2017_suite()
            .iter()
            .map(|p| {
                model.evaluate(p, s, &os).perf_per_watt
                    / model.evaluate(p, &sku::SKU1, &os).perf_per_watt
            })
            .collect();
        out.push(PerfPerWatt {
            benchmark: "SPEC2017".to_owned(),
            sku: s.name,
            value: geometric_mean(&spec_ratios).unwrap_or(0.0),
        });
    }
    out
}

/// One Figure 16 cell: TaoBench's relative performance.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelScalingCell {
    /// SKU label ("176-core SKU", "384-core SKU").
    pub sku: &'static str,
    /// Kernel label.
    pub kernel: &'static str,
    /// Performance relative to (176-core, kernel 6.4) = 100.
    pub relative_percent: f64,
}

/// Figure 16: TaoBench across kernels 6.4/6.9 and the 176-/384-core SKUs,
/// normalized to the 176-core kernel-6.4 cell.
pub fn figure16(model: &Model) -> Vec<KernelScalingCell> {
    let tao = profiles::taobench();
    let cells = [
        (
            &sku::SKU4,
            KernelVersion::V6_4,
            "176-core SKU",
            "Kernel 6.4",
        ),
        (
            &sku::SKU_384C,
            KernelVersion::V6_4,
            "384-core SKU",
            "Kernel 6.4",
        ),
        (
            &sku::SKU4,
            KernelVersion::V6_9,
            "176-core SKU",
            "Kernel 6.9",
        ),
        (
            &sku::SKU_384C,
            KernelVersion::V6_9,
            "384-core SKU",
            "Kernel 6.9",
        ),
    ];
    let base = model
        .evaluate(
            &tao,
            &sku::SKU4,
            &OsConfig {
                kernel: KernelVersion::V6_4,
            },
        )
        .throughput;
    cells
        .iter()
        .map(|(s, k, sku_label, kernel_label)| KernelScalingCell {
            sku: sku_label,
            kernel: kernel_label,
            relative_percent: model.evaluate(&tao, s, &OsConfig { kernel: *k }).throughput / base
                * 100.0,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_normalizes_to_sku1() {
        let fig = figure2(&Model::new());
        for s in fig.iter().filter(|s| s.sku == "SKU1") {
            assert!((s.score - 1.0).abs() < 1e-9, "{}: {}", s.suite, s.score);
        }
        assert_eq!(fig.len(), 16);
    }

    #[test]
    fn figure3_dcperf_beats_spec_on_sku4() {
        // The headline claim: DCPerf within ~3.3%, SPEC 20-28% high.
        let fig = figure3(&Model::new());
        let err = |suite: &str| {
            fig.iter()
                .find(|s| s.suite == suite && s.sku == "SKU4")
                .unwrap()
                .score
        };
        let dcperf = err("DCPerf").abs();
        let spec06 = err("SPEC 2006");
        let spec17 = err("SPEC 2017");
        assert!(dcperf < 8.0, "dcperf error {dcperf}%");
        assert!(spec06 > 10.0, "spec06 error {spec06}%");
        assert!(spec17 > spec06, "spec17 {spec17} vs spec06 {spec06}");
        assert!(dcperf < spec06 && dcperf < spec17);
    }

    #[test]
    fn figure14_sku_a_wins_sku_b_loses() {
        // §5.1: SKU-A outperforms SKU4 on Perf/Watt; SKU-B underperforms.
        let fig = figure14(&Model::new());
        let suite = |sku: &str| {
            fig.iter()
                .find(|r| r.benchmark == "DCPerf" && r.sku == sku)
                .unwrap()
                .value
        };
        assert!(suite("SKU-A") > suite("SKU4"), "SKU-A should win");
        assert!(suite("SKU-B") < suite("SKU4"), "SKU-B should lose");
    }

    #[test]
    fn figure14_spec_would_mislead() {
        // §5.1: SPEC rates SKU-B comparable to SKU-A — using it would have
        // picked the wrong ARM part.
        let fig = figure14(&Model::new());
        let spec = |sku: &str| {
            fig.iter()
                .find(|r| r.benchmark == "SPEC2017" && r.sku == sku)
                .unwrap()
                .value
        };
        let dc = |sku: &str| {
            fig.iter()
                .find(|r| r.benchmark == "DCPerf" && r.sku == sku)
                .unwrap()
                .value
        };
        let spec_gap = spec("SKU-A") / spec("SKU-B");
        let dcperf_gap = dc("SKU-A") / dc("SKU-B");
        // Paper: DCPerf gap 2.3/0.8 = 2.9x vs SPEC 1.8/1.6 = 1.1x. Our
        // model ties SPEC to the same narrow-core IPC ceiling that sinks
        // SKU-B for datacenter work, so SPEC's gap is larger here than in
        // the paper (see EXPERIMENTS.md); the ordering still holds.
        assert!(
            dcperf_gap > spec_gap * 1.1,
            "DCPerf separates the SKUs ({dcperf_gap:.2}x) more than SPEC ({spec_gap:.2}x)"
        );
    }

    #[test]
    fn figure16_shape() {
        let fig = figure16(&Model::new());
        let cell = |sku: &str, kernel: &str| {
            fig.iter()
                .find(|c| c.sku == sku && c.kernel == kernel)
                .unwrap()
                .relative_percent
        };
        let base = cell("176-core SKU", "Kernel 6.4");
        assert!((base - 100.0).abs() < 1e-9);
        // Kernel upgrade is ~3% at 176 cores...
        let k69_176 = cell("176-core SKU", "Kernel 6.9");
        assert!(k69_176 > 100.0 && k69_176 < 112.0, "{k69_176}");
        // ...but transformative at 384 cores.
        let k64_384 = cell("384-core SKU", "Kernel 6.4");
        let k69_384 = cell("384-core SKU", "Kernel 6.9");
        assert!(k64_384 > 120.0 && k64_384 < 205.0, "{k64_384}");
        assert!(k69_384 / k64_384 > 1.3, "gain {}", k69_384 / k64_384);
        // The paper's sanity threshold: with 6.9 the 384-core SKU exceeds
        // the naive core-ratio expectation of 384/176 = 2.18x.
        assert!(k69_384 / k69_176 > 2.18, "{}", k69_384 / k69_176);
    }
}
