//! The datacenter-tax microbenchmark harness (§3.2's "Microbenchmarks
//! for Datacenter Taxes").
//!
//! Runs every kernel in the [`dcperf_tax::Registry`] — compression,
//! hashing, crypto, serialization, memory, and concurrency — and reports
//! per-kernel ops/sec plus a geometric-mean score, the folly_bench-style
//! early-warning signal: "if a server SKU performs poorly on them, it is
//! likely to exhibit subpar performance for many applications".

use dcperf_core::{Benchmark, BenchmarkReport, Error, ReportBuilder, RunContext, WorkloadCategory};
use dcperf_tax::Registry;
use dcperf_util::geometric_mean;
use std::time::Instant;

/// Tunable parameters.
#[derive(Debug, Clone)]
pub struct TaxMicroConfig {
    /// Iterations per kernel at smoke scale (multiplied by the run
    /// scale).
    pub base_iters: u64,
}

impl Default for TaxMicroConfig {
    fn default() -> Self {
        Self { base_iters: 8 }
    }
}

/// The tax microbenchmark. See the [module docs](self).
#[derive(Debug, Default)]
pub struct TaxMicroBench {
    config: TaxMicroConfig,
}

impl TaxMicroBench {
    /// Creates the benchmark with an explicit configuration.
    pub fn with_config(config: TaxMicroConfig) -> Self {
        Self { config }
    }
}

impl Benchmark for TaxMicroBench {
    fn name(&self) -> &str {
        "tax_micro"
    }

    fn category(&self) -> WorkloadCategory {
        WorkloadCategory::Microbenchmark
    }

    fn description(&self) -> &str {
        "datacenter-tax kernels: compression, hashing, crypto, serialization, memory, threads"
    }

    fn score_metric(&self) -> &str {
        "ops_per_second"
    }

    fn run(&self, ctx: &mut RunContext) -> Result<BenchmarkReport, Error> {
        let iters = self.config.base_iters * ctx.config().scale.factor();
        let registry = Registry::with_builtin();
        let mut report = ReportBuilder::new(self.name());
        report.param("iterations_per_kernel", iters);
        report.param("kernel_count", registry.len() as u64);

        let mut rates = Vec::with_capacity(registry.len());
        for bench in registry.iter() {
            let started = Instant::now();
            let ops = bench.run(iters);
            let secs = started.elapsed().as_secs_f64().max(1e-9);
            let rate = ops as f64 / secs;
            let key = format!("kernel/{}", bench.name());
            report.metric(&key, rate);
            rates.push(rate);
        }
        let score = geometric_mean(&rates).ok_or_else(|| Error::Benchmark {
            name: self.name().to_owned(),
            message: "no kernels produced a positive rate".into(),
        })?;
        report.metric("ops_per_second", score);
        Ok(report.finish(ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcperf_core::RunConfig;

    #[test]
    fn runs_every_kernel_and_scores() {
        let bench = TaxMicroBench::with_config(TaxMicroConfig { base_iters: 2 });
        let mut ctx = RunContext::new(RunConfig::smoke_test().with_threads(2), "tax_micro");
        let report = bench.run(&mut ctx).expect("tax micro runs");
        assert!(report.metric_f64("ops_per_second").unwrap() > 0.0);
        // Every registered kernel appears in the report.
        let kernel_metrics = report
            .metrics
            .keys()
            .filter(|k| k.starts_with("kernel/"))
            .count();
        assert_eq!(kernel_metrics, Registry::with_builtin().len());
    }
}
