//! SLO-under-chaos benchmark scenarios.
//!
//! DCPerf's methodology reports the peak throughput a service sustains
//! *while meeting its SLO* (§3.2). Production services must hold that SLO
//! through partial failure: slow database lookups, flaky dependencies,
//! and overload bursts. The scenarios here run the TaoBench and
//! DjangoBench stacks under deterministic
//! [`FaultPlan`](dcperf_resilience::FaultPlan) injection, with the
//! resilience layer (deadlines, retries with budgets, circuit breaking)
//! active, and report SLO attainment plus shed/retried/deadline-exceeded
//! counts in one merged [`TelemetrySnapshot`].
//!
//! Everything is seeded: the fault schedule, the retry jitter, and the
//! load generator all derive from the scenario seed, so a chaos run is
//! reproducible bit-for-bit in its fault decisions.
//!
//! Only compiled with the `fault-injection` feature (`cargo chaos` in
//! this repository's cargo aliases).

use crate::django::DjangoApp;
use dcperf_core::SloSpec;
use dcperf_kvstore::{BackingStore, BackingStoreConfig, Cache, CacheConfig};
use dcperf_loadgen::{ClosedLoop, EndpointMix, LoadReport, OpenLoop, Service, ServiceError};
use dcperf_resilience::{
    BreakerConfig, CircuitBreaker, FaultOutcome, FaultPlan, LatencyFault, RetryPolicy,
};
use dcperf_rpc::{
    InProcClient, InProcServer, Lane, PoolConfig, Request, ResilientClient, Response, RpcError,
};
use dcperf_telemetry::{metrics, Telemetry, TelemetrySnapshot};
use dcperf_util::{SplitMix64, Zipf};
use std::sync::Arc;
use std::time::Duration;

/// A [`Service`] wrapper injecting faults *in front of* any inner
/// service: injected latency is paid on the calling worker, injected
/// errors fail the call, injected overloads surface as rejections. This
/// is the client-side injection point for services that are not
/// RPC-backed (DjangoBench's in-process app).
pub struct FaultyService<S> {
    inner: S,
    plan: Arc<FaultPlan>,
}

impl<S> FaultyService<S> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: S, plan: Arc<FaultPlan>) -> Self {
        Self { inner, plan }
    }

    /// The shared fault plan (for reading injection counters).
    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }
}

impl<S: Service> Service for FaultyService<S> {
    fn call(&self, endpoint: usize, seq: u64) -> Result<usize, ServiceError> {
        match self.plan.apply() {
            FaultOutcome::Pass => self.inner.call(endpoint, seq),
            FaultOutcome::Error => Err(ServiceError::new("injected fault")),
            FaultOutcome::Overload => Err(ServiceError::rejected("injected overload")),
        }
    }
}

/// Configuration of a TaoBench chaos run.
#[derive(Debug, Clone)]
pub struct TaoChaosConfig {
    /// Seed for fault schedules, retry jitter, and key generation.
    pub seed: u64,
    /// Measurement duration.
    pub duration: Duration,
    /// Closed-loop client workers.
    pub client_workers: usize,
    /// Distinct keys in the working set.
    pub key_space: u64,
    /// `(probability, extra latency)` injected on backing-store lookups —
    /// the paper scenario is 50 ms on 10% of lookups.
    pub store_latency_fault: Option<(f64, Duration)>,
    /// `(probability, extra latency)` injected on RPC dispatch.
    pub rpc_latency_fault: Option<(f64, Duration)>,
    /// Error rate injected on RPC dispatch (for example `0.01`).
    pub rpc_error_rate: f64,
    /// `(period, len)` overload burst on RPC dispatch: the first `len`
    /// of every `period` requests are shed as overloaded, which is what
    /// trips the circuit breaker.
    pub overload_burst: Option<(u64, u64)>,
    /// Per-request deadline budget carried in the request frame.
    pub request_deadline: Option<Duration>,
    /// Client retry policy ([`RetryPolicy::no_retries`] to disable).
    pub retry_policy: RetryPolicy,
    /// Circuit-breaker tuning; `None` keeps the client's default breaker.
    pub breaker_config: Option<BreakerConfig>,
    /// `Some(rate)` drives the stack open-loop at a fixed offered load
    /// (the goodput-vs-offered-load axis); `None` runs closed-loop.
    pub offered_rps: Option<f64>,
}

impl Default for TaoChaosConfig {
    fn default() -> Self {
        Self {
            seed: 0xDC,
            duration: Duration::from_millis(300),
            client_workers: 8,
            key_space: 20_000,
            store_latency_fault: Some((0.10, Duration::from_millis(50))),
            rpc_latency_fault: None,
            rpc_error_rate: 0.01,
            overload_burst: None,
            request_deadline: Some(Duration::from_millis(25)),
            retry_policy: RetryPolicy::new(3, Duration::from_millis(1))
                .with_max_backoff(Duration::from_millis(8)),
            breaker_config: None,
            offered_rps: None,
        }
    }
}

impl TaoChaosConfig {
    /// A fault-free control with identical load parameters — the baseline
    /// an SLO-under-chaos result is compared against.
    #[must_use]
    pub fn fault_free(mut self) -> Self {
        self.store_latency_fault = None;
        self.rpc_latency_fault = None;
        self.rpc_error_rate = 0.0;
        self.overload_burst = None;
        self
    }

    /// Disables client retries (builder style), for measuring what the
    /// retry layer buys under the same fault plan.
    #[must_use]
    pub fn without_retries(mut self) -> Self {
        self.retry_policy = RetryPolicy::no_retries();
        self
    }
}

/// The result of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// The load report, with failures split by outcome class.
    pub load: LoadReport,
    /// Whether the run met the scenario SLO.
    pub slo_attained: bool,
    /// Merged telemetry: the server registry (`rpc.*`, `rpc.pool.*`,
    /// `rpc.breaker.*`, `rpc.resilient.*`), the load-generator counters
    /// (`loadgen.*`), the cache tier (`kvstore.cache.*`, including TTL
    /// expirations and single-flight fill/wait counts), and the fault
    /// plans' injection counters (`chaos.*`).
    pub snapshot: TelemetrySnapshot,
}

impl ChaosOutcome {
    /// Successful completions per second.
    pub fn goodput_rps(&self) -> f64 {
        self.load.goodput_rps()
    }
}

/// The client side of the chaos TaoBench stack: a [`ResilientClient`]
/// over the in-process RPC server, with TaoBench's Zipf key generation.
struct ChaosTaoService {
    client: ResilientClient<InProcClient>,
    zipf: Zipf,
    key_space: u64,
    seed: u64,
    store: Arc<BackingStore>,
}

impl ChaosTaoService {
    fn key_for(&self, seq: u64) -> u64 {
        let mut rng = SplitMix64::new(self.seed ^ seq.wrapping_mul(0x2545_F491_4F6C_DD1D));
        let rank = self.zipf.sample(&mut rng);
        SplitMix64::mix(rank) % self.key_space.max(1)
    }
}

impl Service for ChaosTaoService {
    fn call(&self, endpoint: usize, seq: u64) -> Result<usize, ServiceError> {
        let key = self.key_for(seq).to_le_bytes().to_vec();
        let result = if endpoint == 0 {
            self.client.call("get", key)
        } else {
            let mut body = key.clone();
            body.extend_from_slice(&self.store.synthesize_for_key(&key));
            self.client.call("set", body)
        };
        match result {
            Ok(resp) => Ok(resp.body.len()),
            Err(RpcError::DeadlineExceeded | RpcError::Timeout) => {
                Err(ServiceError::deadline_exceeded("request budget spent"))
            }
            Err(RpcError::CircuitOpen) => Err(ServiceError::rejected("circuit open")),
            Err(e) => Err(ServiceError::new(e.to_string())),
        }
    }
}

/// Folds a fault plan's injection counters into `snapshot` under the
/// given `chaos.*` namespace prefix (a `telemetry::metrics` constant).
fn merge_plan_counters(snapshot: &mut TelemetrySnapshot, prefix: &str, plan: &FaultPlan) {
    let mut extra = TelemetrySnapshot::new();
    for (name, value) in [
        (metrics::suffix::OPERATIONS, plan.operations()),
        (
            metrics::suffix::INJECTED_LATENCY_OPS,
            plan.injected_latency_ops(),
        ),
        (
            metrics::suffix::INJECTED_LATENCY_NS,
            plan.injected_latency_ns(),
        ),
        (metrics::suffix::INJECTED_ERRORS, plan.injected_errors()),
        (
            metrics::suffix::INJECTED_OVERLOADS,
            plan.injected_overloads(),
        ),
    ] {
        extra.counters.insert(metrics::scoped(prefix, name), value);
    }
    snapshot.merge(&extra);
}

/// Runs the TaoBench stack (cache + fast/slow pools + backing store)
/// under the configured fault plan and judges the result against `slo`.
///
/// The full resilience layer is active: per-request deadlines shed
/// expired work server-side, the client retries transient failures under
/// a retry budget, and a circuit breaker rejects calls while the backend
/// is shedding.
pub fn run_tao_chaos(config: &TaoChaosConfig, slo: &SloSpec) -> ChaosOutcome {
    // Backing tier, with the store-side fault plan attached.
    let store_plan = Arc::new(match config.store_latency_fault {
        Some((probability, extra)) => FaultPlan::new(config.seed ^ 0x5707_ECAF)
            .with_latency(probability, LatencyFault::Fixed(extra)),
        None => FaultPlan::new(config.seed ^ 0x5707_ECAF),
    });
    let store = Arc::new(
        BackingStore::new(
            BackingStoreConfig {
                lookup_latency: Duration::from_micros(150),
                ..BackingStoreConfig::tao_like()
            },
            config.seed,
        )
        .with_fault_plan(Arc::clone(&store_plan)),
    );

    // The cache records into its own registry, merged into the outcome
    // snapshot below, so chaos runs surface TTL churn and single-flight
    // coalescing alongside the RPC and injection counters. The TTL keeps
    // entries churning within one run, memcached-style.
    let cache_registry = Telemetry::new();
    let cache = Arc::new(Cache::with_telemetry(
        CacheConfig::with_capacity_bytes(((config.key_space as usize) * 450) / 3)
            .with_shards(16)
            .with_default_ttl_ms(100),
        &cache_registry,
    ));

    // Server: the TaoBench fast/slow architecture.
    let handler_cache = Arc::clone(&cache);
    let handler_store = Arc::clone(&store);
    let classify_cache = Arc::clone(&cache);
    let server = InProcServer::start_with_classifier(
        move |req: &Request| match req.method.as_str() {
            "get" => match handler_cache.get_or_load(&req.body, |key| handler_store.lookup(key)) {
                Some(value) => Response::ok(value.to_vec()),
                None => Response::error("object not found"),
            },
            "set" => {
                if req.body.len() < 8 {
                    return Response::error("malformed set");
                }
                let (key, value) = req.body.split_at(8);
                handler_cache.set(key, value.to_vec());
                Response::ok(Vec::new())
            }
            other => Response::error(&format!("unknown method {other}")),
        },
        move |req: &Request| {
            // A stat-less `contains` peek: classification must not skew
            // the hit/miss counters the snapshot reports.
            if req.method == "get" && classify_cache.contains(&req.body) {
                Lane::Fast
            } else {
                Lane::Slow
            }
        },
        PoolConfig::fast_slow(2, 2).with_queue_depth(4096),
    );

    // RPC-dispatch fault plan (errors, latency, overload bursts).
    let mut rpc_plan =
        FaultPlan::new(config.seed ^ 0xD15_7A7C).with_error_rate(config.rpc_error_rate);
    if let Some((probability, extra)) = config.rpc_latency_fault {
        rpc_plan = rpc_plan.with_latency(probability, LatencyFault::Fixed(extra));
    }
    if let Some((period, len)) = config.overload_burst {
        rpc_plan = rpc_plan.with_overload_burst(period, len);
    }
    let rpc_plan = Arc::new(rpc_plan);
    server.install_fault_plan(Some(Arc::clone(&rpc_plan)));

    // Resilient client, recording into the server's registry so one
    // snapshot covers the whole stack.
    let inproc = server.client();
    let registry: Telemetry = inproc.telemetry().clone();
    let mut resilient = ResilientClient::new(server.client(), config.retry_policy, &registry)
        .with_seed(config.seed ^ 0x5EED);
    if let Some(budget) = config.request_deadline {
        resilient = resilient.with_attempt_deadline(budget);
    }
    if let Some(breaker) = config.breaker_config {
        resilient = resilient.with_breaker(Arc::new(CircuitBreaker::with_telemetry(
            breaker,
            &registry,
            metrics::PREFIX_RPC_BREAKER,
        )));
    }
    let service = ChaosTaoService {
        client: resilient,
        zipf: Zipf::new(config.key_space, 0.99).expect("key space is positive"),
        key_space: config.key_space,
        seed: config.seed,
        store: Arc::clone(&store),
    };

    let mix = EndpointMix::new(&["get", "set"], &[0.95, 0.05]).expect("static mix is valid");
    let load = match config.offered_rps {
        Some(rate) => OpenLoop::new(mix, rate)
            .workers(config.client_workers)
            .duration(config.duration)
            .telemetry(&registry)
            .run(&service, config.seed),
        None => ClosedLoop::new(mix)
            .workers(config.client_workers)
            .duration(config.duration)
            .telemetry(&registry)
            .run(&service, config.seed),
    };

    let slo_attained = slo.evaluate(&load.latency_ns, load.error_rate()).is_met();
    let mut snapshot = registry.snapshot();
    snapshot.merge(&cache_registry.snapshot());
    merge_plan_counters(&mut snapshot, metrics::PREFIX_CHAOS_STORE, &store_plan);
    merge_plan_counters(&mut snapshot, metrics::PREFIX_CHAOS_RPC, &rpc_plan);
    server.shutdown();
    ChaosOutcome {
        load,
        slo_attained,
        snapshot,
    }
}

/// Configuration of a DjangoBench chaos run.
#[derive(Debug, Clone)]
pub struct DjangoChaosConfig {
    /// Seed for fault schedules and load generation.
    pub seed: u64,
    /// Measurement duration.
    pub duration: Duration,
    /// Closed-loop client workers (also the app's worker count).
    pub workers: usize,
    /// Users per app worker.
    pub users_per_worker: u64,
    /// Error rate injected in front of the app.
    pub error_rate: f64,
    /// `(probability, extra latency)` injected in front of the app.
    pub latency_fault: Option<(f64, Duration)>,
    /// `(period, len)` overload burst in front of the app.
    pub overload_burst: Option<(u64, u64)>,
}

impl Default for DjangoChaosConfig {
    fn default() -> Self {
        Self {
            seed: 0xD7A,
            duration: Duration::from_millis(250),
            workers: 4,
            users_per_worker: 300,
            error_rate: 0.02,
            latency_fault: Some((0.05, Duration::from_millis(10))),
            overload_burst: None,
        }
    }
}

/// Runs the DjangoBench app behind a [`FaultyService`] wrapper and
/// judges the result against `slo`. The Django stack is in-process (no
/// RPC hop), so injection happens client-side in front of the app.
///
/// # Errors
///
/// Returns a configuration error if the app cannot be built.
pub fn run_django_chaos(
    config: &DjangoChaosConfig,
    slo: &SloSpec,
) -> Result<ChaosOutcome, dcperf_core::Error> {
    let app = DjangoApp::build(
        &crate::django::DjangoBenchConfig::default(),
        config.workers,
        config.users_per_worker,
        config.seed,
    )?;
    let mut plan = FaultPlan::new(config.seed ^ 0xD7A0).with_error_rate(config.error_rate);
    if let Some((probability, extra)) = config.latency_fault {
        plan = plan.with_latency(probability, LatencyFault::Fixed(extra));
    }
    if let Some((period, len)) = config.overload_burst {
        plan = plan.with_overload_burst(period, len);
    }
    let service = FaultyService::new(app, Arc::new(plan));

    let registry = Telemetry::new();
    let load = ClosedLoop::new(DjangoApp::endpoint_mix()?)
        .workers(config.workers)
        .duration(config.duration)
        .telemetry(&registry)
        .run(&service, config.seed);

    let slo_attained = slo.evaluate(&load.latency_ns, load.error_rate()).is_met();
    let mut snapshot = registry.snapshot();
    merge_plan_counters(&mut snapshot, metrics::PREFIX_CHAOS_DJANGO, service.plan());
    Ok(ChaosOutcome {
        load,
        slo_attained,
        snapshot,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tight_slo() -> SloSpec {
        SloSpec::p95_under_ms(5.0).with_max_error_rate(0.01)
    }

    fn quick(config: TaoChaosConfig) -> TaoChaosConfig {
        TaoChaosConfig {
            duration: Duration::from_millis(250),
            key_space: 5_000,
            ..config
        }
    }

    #[test]
    fn faulted_run_completes_and_degrades_goodput() {
        let slo = tight_slo();
        let baseline = run_tao_chaos(&quick(TaoChaosConfig::default()).fault_free(), &slo);
        let faulted = run_tao_chaos(&quick(TaoChaosConfig::default()), &slo);

        // Both runs complete without panicking and do real work.
        assert!(baseline.load.completed > 1_000);
        assert!(faulted.load.completed > 100);
        // 50ms stalls on 10% of backing lookups plus 1% injected errors
        // must strictly degrade goodput (the margin is enormous: the
        // baseline is orders of magnitude faster).
        assert!(
            faulted.goodput_rps() < baseline.goodput_rps(),
            "faulted {} !< baseline {}",
            faulted.goodput_rps(),
            baseline.goodput_rps()
        );
        // The fault-free control meets the SLO the faulted run cannot.
        assert!(baseline.slo_attained, "baseline must meet the SLO");
        assert!(!faulted.slo_attained, "faults must break the SLO");
        // Injection counters surface in the merged snapshot.
        assert!(faulted.snapshot.counter("chaos.store.injected_latency_ops") > Some(0));
        assert!(faulted.snapshot.counter("chaos.rpc.injected_errors") > Some(0));
    }

    #[test]
    fn deadline_pressure_surfaces_in_counters() {
        // 40% of RPC dispatches stall 20 ms against a 5 ms budget: the
        // server re-checks the deadline after the injected stall and
        // sheds, the client sees `DeadlineExceeded` (retryable), and
        // calls that exhaust both attempts (16% of them) land in the
        // loadgen `deadline_exceeded` outcome class. The breaker is made
        // maximally lenient so this run isolates the deadline machinery.
        let config = quick(TaoChaosConfig {
            store_latency_fault: None,
            rpc_error_rate: 0.0,
            rpc_latency_fault: Some((0.4, Duration::from_millis(20))),
            request_deadline: Some(Duration::from_millis(5)),
            retry_policy: RetryPolicy::new(2, Duration::from_micros(500))
                .with_max_backoff(Duration::from_millis(2)),
            breaker_config: Some(BreakerConfig::default().with_failure_ratio(1.0)),
            ..TaoChaosConfig::default()
        });
        let outcome = run_tao_chaos(&config, &tight_slo());
        let snap = &outcome.snapshot;

        let deadline_exceeded = snap.counter("rpc.deadline_exceeded").unwrap_or(0);
        let retries = snap.counter("rpc.resilient.retries").unwrap_or(0);
        assert!(
            deadline_exceeded > 0,
            "deadline_exceeded={deadline_exceeded}"
        );
        assert!(
            retries > 0,
            "deadline errors are retryable; retries={retries}"
        );
        assert!(
            outcome.load.deadline_exceeded > 0,
            "no calls exhausted their deadline budget"
        );
        assert!(
            snap.counter("rpc.deadline_shed").unwrap_or(0) > 0,
            "server never shed expired work"
        );
    }

    #[test]
    fn overload_trips_breaker_and_rejections_are_classed() {
        // 70% of dispatches shed as overloaded: well past the breaker's
        // 50% trip ratio, so it opens, rejections flow back as
        // `CircuitOpen`, and the loadgen reports them in the `rejected`
        // outcome class (not as generic errors).
        let config = quick(TaoChaosConfig {
            store_latency_fault: None,
            rpc_error_rate: 0.0,
            request_deadline: None,
            overload_burst: Some((20, 14)),
            ..TaoChaosConfig::default()
        });
        let outcome = run_tao_chaos(&config, &tight_slo());
        let snap = &outcome.snapshot;

        let breaker_open = snap.counter("rpc.breaker.open_transitions").unwrap_or(0);
        assert!(breaker_open > 0, "breaker_open={breaker_open}");
        assert!(
            snap.counter("rpc.breaker.rejected").unwrap_or(0) > 0,
            "open breaker never rejected a call"
        );
        assert!(outcome.load.rejected > 0, "no rejected outcomes recorded");
        assert!(
            snap.counter("chaos.rpc.injected_overloads").unwrap_or(0) > 0,
            "overload injections missing from the merged snapshot"
        );
        assert!(!outcome.slo_attained, "70% shed cannot meet the SLO");
    }

    #[test]
    fn retries_improve_open_loop_goodput_under_shed_faults() {
        // Open loop at a fixed offered load with ample capacity headroom,
        // while 20% of dispatches are shed as overloaded (retryable, and
        // below the breaker's trip ratio). Without retries every shed
        // arrival is lost goodput; with retries the spare capacity
        // absorbs the re-attempts, so goodput tracks the offered load.
        // (In a *closed* loop retries cannot raise goodput — they only
        // relabel attempts — which is why this scenario is open-loop.)
        let base = TaoChaosConfig {
            store_latency_fault: None,
            rpc_error_rate: 0.0,
            request_deadline: None,
            overload_burst: Some((5, 1)),
            offered_rps: Some(2_000.0),
            retry_policy: RetryPolicy::new(4, Duration::from_micros(200))
                .with_max_backoff(Duration::from_millis(1)),
            ..TaoChaosConfig::default()
        };
        let with_retries = run_tao_chaos(&quick(base.clone()), &tight_slo());
        let without_retries = run_tao_chaos(&quick(base).without_retries(), &tight_slo());

        let with_rate = with_retries.load.error_rate();
        let without_rate = without_retries.load.error_rate();
        assert!(
            with_rate < without_rate / 4.0,
            "retries did not cut the error rate: {with_rate} vs {without_rate}"
        );
        assert!(with_retries.snapshot.counter("rpc.resilient.retries") > Some(0));
        // Retries recover ~20% of arrivals the no-retries client loses.
        assert!(
            with_retries.goodput_rps() > without_retries.goodput_rps() * 1.1,
            "retries goodput {} !> no-retries {}",
            with_retries.goodput_rps(),
            without_retries.goodput_rps()
        );
    }

    #[test]
    fn store_stall_coalesces_fills_instead_of_stampeding() {
        // Every backing lookup stalls 5 ms over a small, hot Zipf key
        // space: misses pile up on the same keys, and the cache's
        // single-flight table must park the latecomers behind the one
        // in-flight load rather than letting the stall multiply into N
        // concurrent backing-store lookups per key.
        let mut config = quick(TaoChaosConfig {
            store_latency_fault: Some((1.0, Duration::from_millis(5))),
            rpc_error_rate: 0.0,
            request_deadline: None,
            ..TaoChaosConfig::default()
        });
        config.key_space = 200;
        let outcome = run_tao_chaos(&config, &tight_slo());
        let snap = &outcome.snapshot;

        let misses = snap.counter("kvstore.cache.misses").unwrap_or(0);
        let fills = snap
            .counter("kvstore.cache.singleflight_fills")
            .unwrap_or(0);
        let waits = snap
            .counter("kvstore.cache.singleflight_waits")
            .unwrap_or(0);
        assert!(misses > 0 && fills > 0, "misses={misses} fills={fills}");
        assert!(
            waits > 0,
            "no concurrent miss ever coalesced (fills={fills} misses={misses})"
        );
        assert!(fills <= misses, "a fill implies a miss");
        // The 100 ms cache TTL churns entries within the run, and the
        // merged snapshot must see that churn.
        assert!(
            snap.counter("kvstore.cache.expirations").unwrap_or(0) > 0,
            "TTL churn invisible in the chaos snapshot"
        );
    }

    #[test]
    fn django_chaos_runs_and_counts_injections() {
        let slo = SloSpec::p95_under_ms(50.0).with_max_error_rate(0.001);
        let outcome = run_django_chaos(&DjangoChaosConfig::default(), &slo).expect("app builds");
        assert!(outcome.load.completed > 500);
        assert!(outcome.load.errors > 0, "injected errors never surfaced");
        assert!(
            !outcome.slo_attained,
            "2% injected errors must break the SLO"
        );
        assert!(outcome.snapshot.counter("chaos.django.injected_errors") > Some(0));
        assert_eq!(
            outcome.snapshot.counter("loadgen.errors"),
            Some(outcome.load.errors)
        );
    }

    #[test]
    fn chaos_fault_schedule_is_reproducible() {
        // Same seed → identical injection decisions (counter-for-counter),
        // even though thread timing differs between runs.
        let config = quick(TaoChaosConfig {
            duration: Duration::from_millis(120),
            ..TaoChaosConfig::default()
        });
        let a = run_tao_chaos(&config, &tight_slo());
        let b = run_tao_chaos(&config, &tight_slo());
        // Operation counts differ (wall-clock cutoff), but the decision
        // for any given operation index is pure; spot-check via the plan
        // replay instead of end counters.
        let plan_a = FaultPlan::new(config.seed ^ 0x5707_ECAF)
            .with_latency(0.10, LatencyFault::Fixed(Duration::from_millis(50)));
        let plan_b = FaultPlan::new(config.seed ^ 0x5707_ECAF)
            .with_latency(0.10, LatencyFault::Fixed(Duration::from_millis(50)));
        for op in 0..2_000 {
            assert_eq!(plan_a.decide(op), plan_b.decide(op));
        }
        // And both runs did comparable work without panicking.
        assert!(a.load.completed > 0 && b.load.completed > 0);
    }
}
