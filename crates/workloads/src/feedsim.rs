//! FeedSim: the newsfeed-ranking benchmark.
//!
//! "FeedSim models newsfeed ranking … It simulates key application logic,
//! including feature extraction, ranking, backend I/O, and response
//! composition … along with a set of libraries representing the datacenter
//! tax, such as Thrift, Fizz, Snappy, and Wangle. The client generates
//! load to determine the maximum request rate FeedSim can handle while
//! maintaining the 95th percentile latency within the SLO of 500ms."
//! (§3.2)
//!
//! Request anatomy here, matching that structure:
//!
//! 1. **Backend I/O**: candidate story ids fan out over
//!    [`dcperf_rpc`] to leaf shards, which return serialized story
//!    payloads (the Thrift tax).
//! 2. **Feature extraction**: payloads are decoded and hashed into dense
//!    feature vectors.
//! 3. **Ranking**: dot products against a model weight vector, sigmoid
//!    scoring, and top-K selection.
//! 4. **Response composition**: the winners are re-serialized,
//!    compressed (Snappy-tax), and encrypted + MACed (Fizz/TLS-tax).
//!
//! Measurement follows the paper's methodology exactly: an open-loop
//! Poisson load searched for the peak RPS whose P95 stays within the SLO.

use dcperf_core::{Benchmark, BenchmarkReport, Error, ReportBuilder, RunContext, WorkloadCategory};
use dcperf_loadgen::{find_peak_load, EndpointMix, OpenLoop, Service, ServiceError};
use dcperf_rpc::{InProcClient, InProcServer, PoolConfig, Request, Response, Value};
use dcperf_tax::{compress, crypto};
use dcperf_util::{Rng, SplitMix64, Zipf};
use std::sync::Arc;
use std::time::Duration;

/// Number of leaf shards the aggregator fans out to (the paper's
/// N(10) RPC fan-out for ranking).
const LEAF_SHARDS: usize = 8;
/// Feature-vector dimensionality.
const FEATURES: usize = 128;

/// Tunable parameters.
#[derive(Debug, Clone)]
pub struct FeedSimConfig {
    /// Stories per leaf shard (scaled by run scale).
    pub base_stories_per_leaf: u64,
    /// Candidates fetched per request.
    pub candidates: usize,
    /// Stories returned to the client.
    pub top_k: usize,
    /// The latency SLO: maximum P95 in milliseconds.
    pub slo_p95_ms: f64,
    /// Duration of each load-search trial.
    pub trial_duration: Duration,
    /// Starting offered load for the peak search.
    pub start_rps: f64,
    /// Upper bound on offered load.
    pub max_rps: f64,
    /// Queued arrivals each open-loop worker drains into one pipelined
    /// burst; 1 is the classic one-request-per-turn mode.
    pub pipeline_depth: usize,
}

impl Default for FeedSimConfig {
    fn default() -> Self {
        Self {
            base_stories_per_leaf: 2_000,
            candidates: 96,
            top_k: 24,
            slo_p95_ms: 500.0,
            trial_duration: Duration::from_millis(350),
            start_rps: 40.0,
            max_rps: 200_000.0,
            pipeline_depth: 1,
        }
    }
}

/// The FeedSim benchmark. See the [module docs](self).
#[derive(Debug, Default)]
pub struct FeedSim {
    config: FeedSimConfig,
}

impl FeedSim {
    /// Creates the benchmark with an explicit configuration.
    pub fn with_config(config: FeedSimConfig) -> Self {
        Self { config }
    }
}

/// Builds one serialized story: id, author, text, and a binary feature
/// seed block.
fn build_story(story_id: u64, seed: u64) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed ^ story_id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let text_len = (rng.next_u64() % 400 + 80) as usize;
    let mut text = String::with_capacity(text_len);
    while text.len() < text_len {
        let word_len = rng.next_u64() % 8 + 2;
        for _ in 0..word_len {
            text.push((b'a' + (rng.next_u64() % 26) as u8) as char);
        }
        text.push(' ');
    }
    let mut feature_block = vec![0u8; 64];
    rng.fill_bytes(&mut feature_block);
    Value::Struct(vec![
        (1, Value::I64(story_id as i64)),
        (2, Value::I64((rng.next_u64() % 1_000_000) as i64)),
        (3, Value::Str(text)),
        (4, Value::Bin(feature_block)),
    ])
    .encode()
}

/// Decodes a story payload into a dense feature vector (the feature
/// extraction phase: parsing plus hashing).
fn extract_features(payload: &[u8]) -> Option<[f32; FEATURES]> {
    let story = Value::decode(payload).ok()?;
    let id = story.field(1)?.as_i64()?;
    let author = story.field(2)?.as_i64()?;
    let text = story.field(3)?.as_str()?;
    let block = story.field(4)?.as_bin()?;
    let mut features = [0f32; FEATURES];
    // Token-hash text features.
    for token in text.split(' ') {
        if token.is_empty() {
            continue;
        }
        let h = dcperf_tax::hash::dcx64(token.as_bytes(), 0x5EED);
        let idx = (h % FEATURES as u64) as usize;
        features[idx] += 1.0;
    }
    // Dense features from the binary block and ids.
    for (i, chunk) in block.chunks(8).enumerate() {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        let v = u64::from_le_bytes(word);
        features[(i * 7 + 3) % FEATURES] += (v % 1000) as f32 / 1000.0;
    }
    features[0] += (id % 97) as f32 / 97.0;
    features[1] += (author % 89) as f32 / 89.0;
    Some(features)
}

/// The ranking model: a fixed weight vector.
fn model_weights(seed: u64) -> [f32; FEATURES] {
    let mut rng = SplitMix64::new(seed ^ 0x00DE_7EC7);
    let mut w = [0f32; FEATURES];
    for slot in &mut w {
        *slot = (rng.next_f64() as f32 - 0.5) * 2.0;
    }
    w
}

struct Aggregator {
    leaves: Vec<InProcClient>,
    stories_per_leaf: u64,
    zipf: Zipf,
    weights: [f32; FEATURES],
    candidates: usize,
    top_k: usize,
    seed: u64,
    crypt_key: [u8; 32],
}

impl Aggregator {
    fn serve(&self, seq: u64) -> Result<usize, ServiceError> {
        let mut rng = SplitMix64::new(self.seed ^ seq.wrapping_mul(0xD1B5_4A32_D192_ED03));

        // 1. Candidate selection: Zipf-popular stories, sharded by id.
        let mut per_leaf: Vec<Vec<u8>> = vec![Vec::new(); self.leaves.len()];
        for _ in 0..self.candidates {
            let story = self.zipf.sample(&mut rng) % self.stories_per_leaf;
            let leaf = (SplitMix64::mix(story) % self.leaves.len() as u64) as usize;
            per_leaf[leaf].extend_from_slice(&story.to_le_bytes());
        }

        // 2. Backend I/O: parallel fan-out to the leaf shards.
        let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(self.candidates);
        std::thread::scope(|scope| -> Result<(), ServiceError> {
            let mut joins = Vec::new();
            for (leaf, ids) in per_leaf.iter().enumerate() {
                if ids.is_empty() {
                    continue;
                }
                let client = self.leaves[leaf].clone();
                let body = ids.clone();
                joins.push(scope.spawn(move || client.call("fetch", body)));
            }
            for join in joins {
                let resp = join
                    .join()
                    .map_err(|_| ServiceError::new("leaf thread panicked"))?
                    .map_err(|e| ServiceError::new(e.to_string()))?;
                // Leaf responses are length-prefixed story payloads.
                let mut rest = resp.body.as_slice();
                while rest.len() >= 4 {
                    let len = u32::from_le_bytes(rest[..4].try_into().expect("4")) as usize;
                    rest = &rest[4..];
                    if len > rest.len() {
                        return Err(ServiceError::new("truncated leaf response"));
                    }
                    payloads.push(rest[..len].to_vec());
                    rest = &rest[len..];
                }
            }
            Ok(())
        })?;

        // 3. Feature extraction + ranking.
        let mut scored: Vec<(f32, &Vec<u8>)> = Vec::with_capacity(payloads.len());
        for payload in &payloads {
            let features =
                extract_features(payload).ok_or_else(|| ServiceError::new("undecodable story"))?;
            let mut dot = 0f32;
            for (f, w) in features.iter().zip(self.weights.iter()) {
                dot += f * w;
            }
            let score = 1.0 / (1.0 + (-dot).exp()); // sigmoid
            scored.push((score, payload));
        }
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(self.top_k);

        // 4. Response composition: serialize, compress, encrypt, MAC.
        let response = Value::List(
            scored
                .iter()
                .map(|(score, payload)| {
                    Value::Struct(vec![
                        (1, Value::F64(*score as f64)),
                        (2, Value::Bin((*payload).clone())),
                    ])
                })
                .collect(),
        )
        .encode();
        let mut packed = compress::lz_compress(&response);
        let nonce = [0u8; 12];
        crypto::ChaCha20::new(&self.crypt_key, &nonce, seq as u32).apply(&mut packed);
        let mac = crypto::hmac_sha256(&self.crypt_key, &packed);
        packed.extend_from_slice(&mac);
        Ok(packed.len())
    }
}

impl Service for Aggregator {
    fn call(&self, _endpoint: usize, seq: u64) -> Result<usize, ServiceError> {
        self.serve(seq)
    }
}

impl Benchmark for FeedSim {
    fn name(&self) -> &str {
        "feedsim"
    }

    fn category(&self) -> WorkloadCategory {
        WorkloadCategory::Ranking
    }

    fn description(&self) -> &str {
        "newsfeed ranking under a P95 latency SLO (OLDISim-style peak search)"
    }

    fn score_metric(&self) -> &str {
        "requests_per_second"
    }

    fn run(&self, ctx: &mut RunContext) -> Result<BenchmarkReport, Error> {
        let scale = ctx.config().scale.factor();
        let threads = ctx.config().effective_threads();
        let seed = ctx.seed();
        let stories_per_leaf = self.config.base_stories_per_leaf * scale.min(16);

        // Leaf shards: each owns its stories and serves "fetch".
        let mut leaf_servers = Vec::with_capacity(LEAF_SHARDS);
        let mut leaves = Vec::with_capacity(LEAF_SHARDS);
        for shard in 0..LEAF_SHARDS {
            let shard_seed = seed ^ (shard as u64) << 48;
            let server = InProcServer::start(
                move |req: &Request| {
                    let mut out = Vec::with_capacity(req.body.len() * 64);
                    for id_bytes in req.body.chunks_exact(8) {
                        let id = u64::from_le_bytes(id_bytes.try_into().expect("8"));
                        let story = build_story(id, shard_seed);
                        out.extend_from_slice(&(story.len() as u32).to_le_bytes());
                        out.extend_from_slice(&story);
                    }
                    Response::ok(out)
                },
                PoolConfig::single_lane((threads / LEAF_SHARDS).max(1)),
            );
            leaves.push(server.client());
            leaf_servers.push(server);
        }

        let aggregator = Arc::new(Aggregator {
            leaves,
            stories_per_leaf,
            zipf: Zipf::new(stories_per_leaf, 0.9).map_err(|e| Error::Config(e.to_string()))?,
            weights: model_weights(seed),
            candidates: self.config.candidates,
            top_k: self.config.top_k,
            seed,
            crypt_key: [0x42; 32],
        });

        let mix = EndpointMix::uniform(&["rank"]).map_err(|e| Error::Config(e.to_string()))?;
        let slo = self.config.slo_p95_ms;
        let trial_duration = self.config.trial_duration;
        let agg = Arc::clone(&aggregator);
        let mut trial_seed = seed;
        let pipeline_depth = self.config.pipeline_depth;
        let search = find_peak_load(
            self.config.start_rps,
            self.config.max_rps,
            6,
            move |rate| {
                trial_seed = trial_seed.wrapping_add(0x9E37);
                OpenLoop::new(mix.clone(), rate)
                    .workers(threads)
                    .pipeline_depth(pipeline_depth)
                    .duration(trial_duration)
                    .queue_depth(4096)
                    .run(agg.as_ref(), trial_seed)
            },
            |report| report.p95_ms() <= slo && report.error_rate() < 0.01,
        );

        let mut report = ReportBuilder::new(self.name());
        report.param("stories_per_leaf", stories_per_leaf);
        report.param("leaf_shards", LEAF_SHARDS as u64);
        report.param("candidates", self.config.candidates as u64);
        report.param("slo_p95_ms", slo);
        report.param("pipeline_depth", self.config.pipeline_depth as u64);
        report.param("search_trials", search.trials.len() as u64);

        let (peak, best) = match (search.peak_rps, search.best_report) {
            (Some(p), Some(b)) => (p, b),
            _ => {
                for server in leaf_servers {
                    server.shutdown();
                }
                return Err(Error::SloUnattainable {
                    name: self.name().to_owned(),
                    slo: format!("p95 <= {slo}ms at >= {} rps", self.config.start_rps),
                });
            }
        };
        report.metric("requests_per_second", best.throughput_rps());
        report.metric("offered_peak_rps", peak);
        report.metric("slo_met", "true");
        report.latency_ms("request", &best.latency_ns);
        report.metric("response_mb", best.response_bytes as f64 / 1e6);
        for server in leaf_servers {
            server.shutdown();
        }
        Ok(report.finish(ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcperf_core::RunConfig;

    fn smoke() -> FeedSimConfig {
        FeedSimConfig {
            base_stories_per_leaf: 400,
            candidates: 32,
            top_k: 8,
            trial_duration: Duration::from_millis(120),
            start_rps: 30.0,
            max_rps: 50_000.0,
            ..FeedSimConfig::default()
        }
    }

    #[test]
    fn stories_are_deterministic_and_decodable() {
        let a = build_story(42, 7);
        let b = build_story(42, 7);
        assert_eq!(a, b);
        assert_ne!(build_story(43, 7), a);
        let features = extract_features(&a).expect("story decodes");
        assert!(features.iter().any(|&f| f != 0.0));
    }

    #[test]
    fn feature_extraction_rejects_garbage() {
        assert!(extract_features(&[1, 2, 3]).is_none());
    }

    #[test]
    fn smoke_run_finds_a_peak_under_slo() {
        let bench = FeedSim::with_config(smoke());
        let mut ctx = RunContext::new(RunConfig::smoke_test().with_threads(4), "feedsim");
        let report = bench.run(&mut ctx).expect("feedsim finds a peak");
        let rps = report.metric_f64("requests_per_second").unwrap();
        assert!(rps > 10.0, "rps={rps}");
        let p95 = report.metric_f64("request_p95_ms").unwrap();
        assert!(p95 <= 500.0, "p95={p95}");
    }

    #[test]
    fn impossible_slo_is_reported() {
        let bench = FeedSim::with_config(FeedSimConfig {
            slo_p95_ms: 0.0001,
            start_rps: 1_000.0,
            ..smoke()
        });
        let mut ctx = RunContext::new(RunConfig::smoke_test().with_threads(2), "feedsim");
        match bench.run(&mut ctx) {
            Err(Error::SloUnattainable { .. }) => {}
            other => panic!("expected SloUnattainable, got {other:?}"),
        }
    }

    #[test]
    fn ranking_orders_by_score() {
        // The aggregator must return at most top_k stories and the
        // response must be decryptable with the same key stream.
        let weights = model_weights(5);
        assert!(weights.iter().any(|&w| w > 0.0));
        assert!(weights.iter().any(|&w| w < 0.0));
    }
}
