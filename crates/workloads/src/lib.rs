//! The DCPerf-RS benchmark implementations.
//!
//! One module per benchmark of §3.2, each a *runnable* client-server
//! workload built on the workspace substrates and registered with the
//! [`dcperf_core`] framework:
//!
//! * [`taobench`] — TAO-style read-through caching with fast/slow thread
//!   pools and a memtier-style client.
//! * [`feedsim`] — newsfeed ranking: candidate fan-out, feature
//!   extraction, ranking, and response composition under a P95 SLO.
//! * [`django`] — Instagram-style web serving with a share-nothing
//!   worker-per-core model over a wide-row store.
//! * [`mediawiki`] — Facebook-style web serving: wiki-markup template
//!   rendering over a page cache and a relational-ish page store.
//! * [`spark`] — a three-stage data-warehouse query over a from-scratch
//!   columnar engine with spill-to-disk shuffles.
//! * [`video`] — parallel transcode: bilinear resize ladder plus an 8×8
//!   block-transform encoder.
//! * [`taxbench`] — the datacenter-tax microbenchmarks.
//! * [`cloudsuite`] — runnable minis reproducing the Figure 13
//!   scalability pathologies of CloudSuite.
//! * [`kernelsim`] — the §5.3 kernel-counter contention demonstration.
//! * `chaos` (feature `fault-injection`) — SLO-under-chaos scenarios:
//!   TaoBench and DjangoBench under deterministic fault plans with the
//!   resilience layer (deadlines, retries, circuit breaking) active.
//!
//! [`register_all`] wires every benchmark plus the baseline table into a
//! [`Suite`], after which `suite.run_all(&config)` produces scored JSON
//! reports exactly like the upstream `benchpress` CLI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
#[cfg(feature = "fault-injection")]
pub mod chaos;
pub mod cloudsuite;
pub mod django;
pub mod feedsim;
pub mod kernelsim;
pub mod mediawiki;
pub mod spark;
pub mod specproxy;
pub mod store;
pub mod taobench;
pub mod taxbench;
pub mod video;
pub mod wiki;

use dcperf_core::Suite;

/// Registers the full DCPerf-RS benchmark suite plus reference baselines.
///
/// The baselines play the role of the paper's SKU1 calibration machine:
/// scores of 1.0 mean "performs like the reference run recorded in this
/// repository" (an 8-core CI container at smoke-test scale).
pub fn register_all(suite: &mut Suite) {
    suite.register(Box::new(taobench::TaoBench::default()));
    suite.register(Box::new(feedsim::FeedSim::default()));
    suite.register(Box::new(django::DjangoBench::default()));
    suite.register(Box::new(mediawiki::MediaWikiBench::default()));
    suite.register(Box::new(spark::SparkBench::default()));
    suite.register(Box::new(video::VideoTranscodeBench::default()));
    suite.register(Box::new(taxbench::TaxMicroBench::default()));
    for (name, metric, value) in default_baselines() {
        suite.set_baseline(name, metric, value);
    }
}

/// The reference-machine baseline values used for score normalization.
pub fn default_baselines() -> Vec<(&'static str, &'static str, f64)> {
    vec![
        ("taobench", "requests_per_second", 60_000.0),
        ("feedsim", "requests_per_second", 120.0),
        ("django_bench", "requests_per_second", 1_500.0),
        ("mediawiki", "requests_per_second", 1_000.0),
        ("spark_bench", "rows_per_second", 400_000.0),
        ("video_transcode_bench", "megapixels_per_second", 60.0),
        ("tax_micro", "ops_per_second", 3_000.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_all_registers_the_full_suite() {
        let mut suite = Suite::new();
        register_all(&mut suite);
        let names = suite.benchmark_names();
        for expected in [
            "taobench",
            "feedsim",
            "django_bench",
            "mediawiki",
            "spark_bench",
            "video_transcode_bench",
            "tax_micro",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn baselines_cover_every_registered_benchmark() {
        let mut suite = Suite::new();
        register_all(&mut suite);
        let baselined: Vec<&str> = default_baselines().iter().map(|(n, _, _)| *n).collect();
        for name in suite.benchmark_names() {
            assert!(baselined.contains(&name), "no baseline for {name}");
        }
    }
}
