//! Architecture ablations: measure the design choices the paper calls
//! out as essential to fidelity (§2.2, §6).
//!
//! * [`compare_cache_architectures`] — **read-through vs look-aside**
//!   caching. "While many caching benchmarks implement a look-aside
//!   cache, DCPerf uses a read-through cache because our production
//!   systems employ it." A look-aside client pays two RPC round trips
//!   plus a client-side fill on every miss; read-through pays one.
//! * [`compare_pool_architectures`] — **fast/slow split pools vs a single
//!   pool**. "TAO utilizes separate thread pools for fast and slow
//!   paths." With one shared pool, slow (DB-latency) misses queue ahead
//!   of cache hits and inflate the hit-path tail latency; the split pool
//!   isolates them.
//!
//! Both return paired measurements so examples and tests can quantify
//! the architectural difference on the running host.

use dcperf_kvstore::{BackingStore, BackingStoreConfig, Cache, CacheConfig};
use dcperf_rpc::{InProcClient, InProcServer, Lane, PoolConfig, Request, Response};
use dcperf_util::{Rng, SplitMix64, Xoshiro256pp, Zipf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Result of one cache-architecture measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheArchResult {
    /// Architecture label.
    pub architecture: &'static str,
    /// Requests completed.
    pub requests: u64,
    /// Achieved requests per second.
    pub rps: f64,
    /// RPC calls issued per application request (the protocol overhead).
    pub rpc_calls_per_request: f64,
    /// Cache hit rate observed.
    pub hit_rate: f64,
}

fn cache_server(cache: Arc<Cache>, store: Arc<BackingStore>, workers: usize) -> InProcServer {
    InProcServer::start(
        move |req: &Request| match req.method.as_str() {
            // Read-through GET: the server fills on miss.
            "get_rt" => match cache.get_or_load(&req.body, |k| store.lookup(k)) {
                Some(v) => Response::ok(v.to_vec()),
                None => Response::error("missing"),
            },
            // Look-aside GET: cache only; miss is the client's problem.
            "get_la" => match cache.get(&req.body) {
                Some(v) => Response::ok(v.to_vec()),
                None => Response::error("miss"),
            },
            // Look-aside backend read (a separate "database" service in
            // real deployments; same process here, same RPC cost).
            "db_get" => match store.lookup(&req.body) {
                Some(v) => Response::ok(v),
                None => Response::error("missing"),
            },
            "set" => {
                if req.body.len() < 8 {
                    return Response::error("malformed");
                }
                let (k, v) = req.body.split_at(8);
                cache.set(k, v.to_vec());
                Response::ok(Vec::new())
            }
            other => Response::error(&format!("unknown {other}")),
        },
        PoolConfig::single_lane(workers).with_queue_depth(8192),
    )
}

fn drive_cache_arch(
    client: &InProcClient,
    read_through: bool,
    key_space: u64,
    duration: Duration,
    threads: usize,
    seed: u64,
) -> (u64, u64) {
    use std::sync::atomic::{AtomicU64, Ordering};
    let requests = AtomicU64::new(0);
    let rpc_calls = AtomicU64::new(0);
    let zipf = Zipf::new(key_space, 0.99).expect("valid zipf");
    let started = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let client = client.clone();
            let zipf = &zipf;
            let requests = &requests;
            let rpc_calls = &rpc_calls;
            scope.spawn(move || {
                let mut rng = Xoshiro256pp::seed_from_u64(seed ^ (t as u64) << 32);
                while started.elapsed() < duration {
                    let key = (SplitMix64::mix(zipf.sample(&mut rng)) % key_space).to_le_bytes();
                    if read_through {
                        let _ = client.call("get_rt", key.to_vec());
                        rpc_calls.fetch_add(1, Ordering::Relaxed);
                    } else {
                        // Look-aside: GET; on miss, read the DB and SET.
                        rpc_calls.fetch_add(1, Ordering::Relaxed);
                        if client.call("get_la", key.to_vec()).is_err() {
                            rpc_calls.fetch_add(2, Ordering::Relaxed);
                            if let Ok(resp) = client.call("db_get", key.to_vec()) {
                                let mut body = key.to_vec();
                                body.extend_from_slice(&resp.body);
                                let _ = client.call("set", body);
                            }
                        }
                    }
                    requests.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    (
        requests.load(std::sync::atomic::Ordering::Relaxed),
        rpc_calls.load(std::sync::atomic::Ordering::Relaxed),
    )
}

/// Measures read-through vs look-aside caching under identical load.
pub fn compare_cache_architectures(
    key_space: u64,
    duration: Duration,
    threads: usize,
    seed: u64,
) -> Vec<CacheArchResult> {
    let mut out = Vec::new();
    for (label, read_through) in [("read-through", true), ("look-aside", false)] {
        let cache = Arc::new(Cache::new(
            CacheConfig::with_capacity_bytes((key_space as usize) * 160).with_shards(8),
        ));
        let store = Arc::new(BackingStore::new(
            BackingStoreConfig {
                lookup_latency: Duration::from_micros(100),
                ..BackingStoreConfig::tao_like()
            },
            seed,
        ));
        let server = cache_server(Arc::clone(&cache), store, threads.max(2));
        let client = server.client();
        let started = Instant::now();
        let (requests, rpc_calls) =
            drive_cache_arch(&client, read_through, key_space, duration, threads, seed);
        let secs = started.elapsed().as_secs_f64();
        out.push(CacheArchResult {
            architecture: label,
            requests,
            rps: requests as f64 / secs,
            rpc_calls_per_request: rpc_calls as f64 / requests.max(1) as f64,
            hit_rate: cache.stats().hit_rate(),
        });
        server.shutdown();
    }
    out
}

/// Result of one pool-architecture measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolArchResult {
    /// Architecture label.
    pub architecture: &'static str,
    /// P95 latency of the *hit* (fast) path in microseconds.
    pub hit_p95_us: f64,
    /// P95 latency of the miss path in microseconds.
    pub miss_p95_us: f64,
    /// Total requests served.
    pub requests: u64,
}

/// Measures fast/slow split pools versus one shared pool, under a mixed
/// hit/miss stream where misses carry a simulated DB latency.
pub fn compare_pool_architectures(
    miss_fraction: f64,
    db_latency: Duration,
    duration: Duration,
    threads: usize,
    seed: u64,
) -> Vec<PoolArchResult> {
    use dcperf_telemetry::ConcurrentHistogram;
    use std::sync::atomic::{AtomicU64, Ordering};

    let mut out = Vec::new();
    let configs = [
        ("fast/slow pools", PoolConfig::fast_slow(2, 2)),
        ("single pool", PoolConfig::single_lane(4)),
    ];
    for (label, pool) in configs {
        let server = InProcServer::start_with_classifier(
            move |req: &Request| {
                if req.method == "miss" {
                    // The slow path: a simulated DB lookup. Sleeping (not
                    // spinning) models the I/O wait and keeps the CPU free
                    // for the fast lane, as in production.
                    std::thread::sleep(db_latency);
                }
                Response::ok(vec![0u8; 64])
            },
            |req: &Request| {
                if req.method == "miss" {
                    Lane::Slow
                } else {
                    Lane::Fast
                }
            },
            pool.with_queue_depth(8192),
        );
        let client = server.client();
        // Wait-free striped recording; snapshots are exact once the
        // driver threads have joined.
        let hit_hist = ConcurrentHistogram::new();
        let miss_hist = ConcurrentHistogram::new();
        let total = AtomicU64::new(0);
        let started = Instant::now();
        std::thread::scope(|scope| {
            for t in 0..threads {
                let client = client.clone();
                let hit_hist = &hit_hist;
                let miss_hist = &miss_hist;
                let total = &total;
                scope.spawn(move || {
                    let mut rng = Xoshiro256pp::seed_from_u64(seed ^ (t as u64) << 32);
                    while started.elapsed() < duration {
                        let is_miss = rng.gen_bool(miss_fraction);
                        let method = if is_miss { "miss" } else { "hit" };
                        let t0 = Instant::now();
                        if client.call(method, vec![1u8; 16]).is_ok() {
                            let ns = t0.elapsed().as_nanos() as u64;
                            if is_miss {
                                miss_hist.record(ns);
                            } else {
                                hit_hist.record(ns);
                            }
                            total.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        out.push(PoolArchResult {
            architecture: label,
            hit_p95_us: hit_hist.snapshot().p95() as f64 / 1_000.0,
            miss_p95_us: miss_hist.snapshot().p95() as f64 / 1_000.0,
            requests: total.load(Ordering::Relaxed),
        });
        server.shutdown();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn look_aside_pays_more_rpc_calls() {
        let results = compare_cache_architectures(2_000, Duration::from_millis(200), 2, 11);
        let rt = results
            .iter()
            .find(|r| r.architecture == "read-through")
            .unwrap();
        let la = results
            .iter()
            .find(|r| r.architecture == "look-aside")
            .unwrap();
        assert!(
            (0.99..=1.01).contains(&rt.rpc_calls_per_request),
            "read-through must be exactly one call per request: {}",
            rt.rpc_calls_per_request
        );
        assert!(
            la.rpc_calls_per_request > 1.01,
            "look-aside must pay extra calls on misses: {}",
            la.rpc_calls_per_request
        );
        assert!(rt.requests > 0 && la.requests > 0);
    }

    #[test]
    fn split_pools_protect_the_hit_path() {
        // 30% misses at 2ms each: in a single pool, hits queue behind
        // misses; split pools keep the hit path fast.
        let results = compare_pool_architectures(
            0.3,
            Duration::from_millis(2),
            Duration::from_millis(400),
            4,
            7,
        );
        let split = results
            .iter()
            .find(|r| r.architecture == "fast/slow pools")
            .unwrap();
        let single = results
            .iter()
            .find(|r| r.architecture == "single pool")
            .unwrap();
        assert!(split.requests > 0 && single.requests > 0);
        // The architectural claim, qualitatively: the split pool's hit
        // p95 must beat the single pool's.
        assert!(
            split.hit_p95_us < single.hit_p95_us,
            "split hit p95 {}us should beat single-pool {}us",
            split.hit_p95_us,
            single.hit_p95_us
        );
        // Misses pay the DB latency either way.
        assert!(split.miss_p95_us >= 1_500.0, "{}", split.miss_p95_us);
    }
}
