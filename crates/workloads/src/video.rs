//! VideoTranscodeBench: the media-processing benchmark.
//!
//! "At the beginning of benchmarking, each CPU core is utilized by one
//! ffmpeg instance to (1) resize a video clip into multiple resolutions
//! and (2) encode the resized video clip with the specified video encoder.
//! This benchmark is embarrassingly parallel and can push CPU utilization
//! to more than 95%." (§3.2)
//!
//! The transcoding pipeline here is a real (if small) encoder: synthetic
//! luma frames are resized through a bilinear ladder, then encoded with
//! the classic block pipeline — 8×8 integer DCT, quantization, zigzag
//! scan, RLE of the trailing zeros, and entropy coding via the workspace
//! LZ compressor. One instance runs per logical core, exactly as the
//! paper spawns one ffmpeg per core.

use dcperf_core::{Benchmark, BenchmarkReport, Error, ReportBuilder, RunContext, WorkloadCategory};
use dcperf_tax::compress;
use dcperf_util::{Rng, SplitMix64};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// One grayscale frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Row-major luma samples.
    pub pixels: Vec<u8>,
}

impl Frame {
    /// Generates a synthetic frame: smooth gradients plus moving texture
    /// plus film grain — content with both low- and high-frequency energy
    /// so the DCT pipeline does real work.
    pub fn synthetic(width: usize, height: usize, frame_index: u64, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ frame_index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut pixels = Vec::with_capacity(width * height);
        let phase = frame_index as f64 * 0.15;
        for y in 0..height {
            for x in 0..width {
                let gradient = (x as f64 / width as f64) * 90.0 + (y as f64 / height as f64) * 60.0;
                let texture =
                    ((x as f64 * 0.30 + phase).sin() * (y as f64 * 0.22 - phase).cos()) * 40.0;
                let grain = (rng.next_u64() % 11) as f64 - 5.0;
                pixels.push((gradient + texture + grain + 60.0).clamp(0.0, 255.0) as u8);
            }
        }
        Self {
            width,
            height,
            pixels,
        }
    }

    /// Bilinear resize to `(new_width, new_height)`.
    ///
    /// # Panics
    ///
    /// Panics if either target dimension is zero.
    pub fn resize(&self, new_width: usize, new_height: usize) -> Frame {
        assert!(
            new_width > 0 && new_height > 0,
            "resize target must be non-zero"
        );
        let mut pixels = Vec::with_capacity(new_width * new_height);
        let x_ratio = self.width as f64 / new_width as f64;
        let y_ratio = self.height as f64 / new_height as f64;
        for y in 0..new_height {
            let sy = (y as f64 + 0.5) * y_ratio - 0.5;
            let y0 = sy.floor().clamp(0.0, (self.height - 1) as f64) as usize;
            let y1 = (y0 + 1).min(self.height - 1);
            let fy = (sy - y0 as f64).clamp(0.0, 1.0);
            for x in 0..new_width {
                let sx = (x as f64 + 0.5) * x_ratio - 0.5;
                let x0 = sx.floor().clamp(0.0, (self.width - 1) as f64) as usize;
                let x1 = (x0 + 1).min(self.width - 1);
                let fx = (sx - x0 as f64).clamp(0.0, 1.0);
                let p00 = self.pixels[y0 * self.width + x0] as f64;
                let p01 = self.pixels[y0 * self.width + x1] as f64;
                let p10 = self.pixels[y1 * self.width + x0] as f64;
                let p11 = self.pixels[y1 * self.width + x1] as f64;
                let top = p00 + (p01 - p00) * fx;
                let bottom = p10 + (p11 - p10) * fx;
                pixels.push((top + (bottom - top) * fy).round().clamp(0.0, 255.0) as u8);
            }
        }
        Frame {
            width: new_width,
            height: new_height,
            pixels,
        }
    }
}

/// The 8×8 forward DCT (floating-point reference implementation).
fn dct8x8(block: &[f64; 64]) -> [f64; 64] {
    let mut out = [0f64; 64];
    for v in 0..8 {
        for u in 0..8 {
            let cu = if u == 0 {
                1.0 / std::f64::consts::SQRT_2
            } else {
                1.0
            };
            let cv = if v == 0 {
                1.0 / std::f64::consts::SQRT_2
            } else {
                1.0
            };
            let mut sum = 0.0;
            for y in 0..8 {
                for x in 0..8 {
                    sum += block[y * 8 + x]
                        * ((2 * x + 1) as f64 * u as f64 * std::f64::consts::PI / 16.0).cos()
                        * ((2 * y + 1) as f64 * v as f64 * std::f64::consts::PI / 16.0).cos();
                }
            }
            out[v * 8 + u] = 0.25 * cu * cv * sum;
        }
    }
    out
}

/// JPEG-style luma quantization table, scaled by quality.
const QUANT_BASE: [i32; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, 12, 12, 14, 19, 26, 58, 60, 55, 14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62, 18, 22, 37, 56, 68, 109, 103, 77, 24, 35, 55, 64, 81, 104, 113,
    92, 49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99,
];

/// Zigzag scan order for 8×8 blocks.
fn zigzag_order() -> [usize; 64] {
    let mut order = [0usize; 64];
    let (mut x, mut y) = (0i32, 0i32);
    let mut up = true;
    for slot in order.iter_mut() {
        *slot = (y * 8 + x) as usize;
        if up {
            if x == 7 {
                y += 1;
                up = false;
            } else if y == 0 {
                x += 1;
                up = false;
            } else {
                x += 1;
                y -= 1;
            }
        } else if y == 7 {
            x += 1;
            up = true;
        } else if x == 0 {
            y += 1;
            up = true;
        } else {
            x -= 1;
            y += 1;
        }
    }
    order
}

/// Encoder quality settings, matching the three VideoBench configurations
/// of Figure 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quality {
    /// Fast / low quality (coarse quantization).
    Fast,
    /// Balanced.
    Balanced,
    /// High quality (fine quantization, more entropy-coding work).
    High,
}

impl Quality {
    fn quant_scale(self) -> i32 {
        match self {
            Quality::Fast => 4,
            Quality::Balanced => 2,
            Quality::High => 1,
        }
    }
}

/// Encodes one frame; returns the compressed bitstream.
pub fn encode_frame(frame: &Frame, quality: Quality) -> Vec<u8> {
    let zigzag = zigzag_order();
    let scale = quality.quant_scale();
    let blocks_x = frame.width / 8;
    let blocks_y = frame.height / 8;
    let mut coefficients = Vec::with_capacity(blocks_x * blocks_y * 24);
    let mut block = [0f64; 64];
    for by in 0..blocks_y {
        for bx in 0..blocks_x {
            for y in 0..8 {
                for x in 0..8 {
                    block[y * 8 + x] =
                        frame.pixels[(by * 8 + y) * frame.width + bx * 8 + x] as f64 - 128.0;
                }
            }
            let freq = dct8x8(&block);
            // Quantize and zigzag; RLE the zero runs.
            let mut zero_run = 0u32;
            for &idx in &zigzag {
                let q = (freq[idx] / (QUANT_BASE[idx] * scale) as f64).round() as i32;
                if q == 0 {
                    zero_run += 1;
                } else {
                    coefficients.push(0x80); // run marker
                    coefficients.extend_from_slice(&zero_run.to_le_bytes()[..2]);
                    coefficients.extend_from_slice(&q.to_le_bytes()[..2]);
                    zero_run = 0;
                }
            }
            coefficients.push(0xFF); // end of block
            coefficients.extend_from_slice(&zero_run.to_le_bytes()[..2]);
        }
    }
    // Entropy coding of the coefficient stream.
    compress::lz_compress(&coefficients)
}

/// Tunable parameters.
#[derive(Debug, Clone)]
pub struct VideoConfig {
    /// Source resolution.
    pub width: usize,
    /// Source resolution.
    pub height: usize,
    /// Frames per instance (scaled by run scale).
    pub base_frames: u64,
    /// Encoder quality.
    pub quality: Quality,
    /// Output resolutions of the resize ladder.
    pub ladder: Vec<(usize, usize)>,
}

impl Default for VideoConfig {
    fn default() -> Self {
        Self {
            width: 320,
            height: 180,
            base_frames: 3,
            quality: Quality::Balanced,
            ladder: vec![(240, 136), (160, 88)],
        }
    }
}

/// The VideoTranscodeBench benchmark. See the [module docs](self).
#[derive(Debug, Default)]
pub struct VideoTranscodeBench {
    config: VideoConfig,
}

impl VideoTranscodeBench {
    /// Creates the benchmark with an explicit configuration.
    pub fn with_config(config: VideoConfig) -> Self {
        Self { config }
    }
}

impl Benchmark for VideoTranscodeBench {
    fn name(&self) -> &str {
        "video_transcode_bench"
    }

    fn category(&self) -> WorkloadCategory {
        WorkloadCategory::MediaProcessing
    }

    fn description(&self) -> &str {
        "per-core parallel transcode: bilinear resize ladder + 8x8 DCT block encoder"
    }

    fn score_metric(&self) -> &str {
        "megapixels_per_second"
    }

    fn run(&self, ctx: &mut RunContext) -> Result<BenchmarkReport, Error> {
        let scale = ctx.config().scale.factor();
        let instances = ctx.config().effective_threads();
        let seed = ctx.seed();
        let frames_per_instance = self.config.base_frames * scale.min(16);

        let pixels_done = AtomicU64::new(0);
        let bytes_out = AtomicU64::new(0);
        let bytes_in = AtomicU64::new(0);
        let started = Instant::now();

        std::thread::scope(|scope| {
            for instance in 0..instances {
                let config = &self.config;
                let pixels_done = &pixels_done;
                let bytes_out = &bytes_out;
                let bytes_in = &bytes_in;
                scope.spawn(move || {
                    let instance_seed = seed ^ (instance as u64) << 32;
                    for f in 0..frames_per_instance {
                        let frame = Frame::synthetic(config.width, config.height, f, instance_seed);
                        bytes_in.fetch_add(frame.pixels.len() as u64, Ordering::Relaxed);
                        // (1) resize into multiple resolutions,
                        // (2) encode each rendition.
                        for &(w, h) in &config.ladder {
                            let resized = frame.resize(w, h);
                            let bitstream = encode_frame(&resized, config.quality);
                            pixels_done.fetch_add(resized.pixels.len() as u64, Ordering::Relaxed);
                            bytes_out.fetch_add(bitstream.len() as u64, Ordering::Relaxed);
                            std::hint::black_box(&bitstream);
                        }
                    }
                });
            }
        });

        let elapsed = started.elapsed().as_secs_f64();
        let megapixels = pixels_done.load(Ordering::Relaxed) as f64 / 1e6;
        let out = bytes_out.load(Ordering::Relaxed);
        let raw = pixels_done.load(Ordering::Relaxed);

        let mut report = ReportBuilder::new(self.name());
        report.param("instances", instances as u64);
        report.param("frames_per_instance", frames_per_instance);
        report.param(
            "source",
            format!("{}x{}", self.config.width, self.config.height),
        );
        report.param("renditions", self.config.ladder.len() as u64);
        report.metric("megapixels_per_second", megapixels / elapsed.max(1e-9));
        report.metric("frames_encoded", frames_per_instance * instances as u64);
        report.metric("bitstream_bytes", out);
        report.metric("compression_ratio", raw as f64 / out.max(1) as f64);
        report.metric("elapsed_seconds", elapsed);
        Ok(report.finish(ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcperf_core::RunConfig;

    #[test]
    fn synthetic_frames_are_deterministic() {
        let a = Frame::synthetic(64, 32, 3, 9);
        let b = Frame::synthetic(64, 32, 3, 9);
        assert_eq!(a, b);
        assert_ne!(Frame::synthetic(64, 32, 4, 9), a);
        assert_eq!(a.pixels.len(), 64 * 32);
    }

    #[test]
    fn resize_preserves_smooth_content() {
        // A constant frame resizes to the same constant.
        let flat = Frame {
            width: 32,
            height: 32,
            pixels: vec![100u8; 32 * 32],
        };
        let small = flat.resize(16, 16);
        assert!(small.pixels.iter().all(|&p| (99..=101).contains(&p)));
        assert_eq!(small.width, 16);
        assert_eq!(small.height, 16);
    }

    #[test]
    fn resize_downscales_gradient_monotonically() {
        let mut pixels = Vec::new();
        for _y in 0..32 {
            for x in 0..64u32 {
                pixels.push((x * 4) as u8);
            }
        }
        let frame = Frame {
            width: 64,
            height: 32,
            pixels,
        };
        let small = frame.resize(32, 16);
        for y in 0..16 {
            for x in 1..32 {
                assert!(
                    small.pixels[y * 32 + x] >= small.pixels[y * 32 + x - 1],
                    "row {y} not monotone at {x}"
                );
            }
        }
    }

    #[test]
    fn dct_dc_coefficient_matches_block_mean() {
        let block = [64.0f64; 64];
        let freq = dct8x8(&block);
        // DC = 8 × mean for the orthonormal scaling used here.
        assert!((freq[0] - 512.0).abs() < 1e-6, "DC={}", freq[0]);
        // All AC terms vanish for a flat block.
        assert!(freq[1..].iter().all(|&c| c.abs() < 1e-6));
    }

    #[test]
    fn zigzag_is_a_permutation() {
        let order = zigzag_order();
        let mut seen = [false; 64];
        for &idx in &order {
            assert!(!seen[idx]);
            seen[idx] = true;
        }
        assert_eq!(order[0], 0);
        assert_eq!(order[1], 1); // (x=1, y=0)
        assert_eq!(order[2], 8); // (x=0, y=1)
        assert_eq!(order[63], 63);
    }

    #[test]
    fn higher_quality_produces_larger_bitstreams() {
        let frame = Frame::synthetic(64, 64, 0, 5);
        let fast = encode_frame(&frame, Quality::Fast);
        let high = encode_frame(&frame, Quality::High);
        assert!(
            high.len() > fast.len(),
            "high={} fast={}",
            high.len(),
            fast.len()
        );
    }

    #[test]
    fn encoder_compresses_synthetic_video() {
        let frame = Frame::synthetic(64, 64, 0, 5);
        let bitstream = encode_frame(&frame, Quality::Balanced);
        assert!(
            bitstream.len() < frame.pixels.len() * 2,
            "encoded {} raw {}",
            bitstream.len(),
            frame.pixels.len()
        );
        assert!(!bitstream.is_empty());
    }

    #[test]
    fn smoke_run_reports_throughput() {
        let bench = VideoTranscodeBench::with_config(VideoConfig {
            width: 96,
            height: 56,
            base_frames: 2,
            ladder: vec![(64, 40), (48, 24)],
            quality: Quality::Balanced,
        });
        let mut ctx = RunContext::new(
            RunConfig::smoke_test().with_threads(4),
            "video_transcode_bench",
        );
        let report = bench.run(&mut ctx).expect("video runs");
        assert!(report.metric_f64("megapixels_per_second").unwrap() > 0.0);
        assert_eq!(report.metric_f64("frames_encoded"), Some(8.0));
        assert!(report.metric_f64("compression_ratio").unwrap() > 0.5);
    }
}
