//! TaoBench: the TAO-style read-through caching benchmark.
//!
//! "TaoBench is a read-through, in-memory cache modeled after TAO …
//! The server spawns a number of so-called fast and slow threads. When a
//! request encounters a cache hit, a fast thread simply returns the cached
//! object to the client. However, in the case of a cache miss, the request
//! is dispatched to a slow thread, which simulates backend database lookup
//! delay, new object creation, and Memcached insertion using the SET
//! command." (§3.2)
//!
//! This implementation is exactly that architecture on this repo's
//! substrates: a [`dcperf_kvstore::Cache`] served through a
//! [`dcperf_rpc::InProcServer`] whose classifier peeks the cache and
//! routes hits to the fast pool and misses to the slow pool, a
//! [`BackingStore`] paying simulated DB latency on the miss path, and a
//! memtier-style closed-loop client drawing Zipf-distributed keys with
//! production-shaped value sizes.

use dcperf_core::{Benchmark, BenchmarkReport, Error, ReportBuilder, RunContext, WorkloadCategory};
use dcperf_kvstore::{BackingStore, BackingStoreConfig, Cache, CacheConfig};
use dcperf_loadgen::{ClosedLoop, EndpointMix, Service, ServiceError};
use dcperf_rpc::{InProcClient, InProcServer, Lane, PoolConfig, Request, Response};
use dcperf_util::{SplitMix64, Zipf};
use std::sync::Arc;
use std::time::Duration;

/// Tunable parameters; `Default` matches the production-shaped TAO
/// configuration scaled by the run's [`Scale`](dcperf_core::Scale).
#[derive(Debug, Clone)]
pub struct TaoBenchConfig {
    /// Distinct keys in the working set (scaled by the run scale).
    pub base_key_space: u64,
    /// Zipf skew of key popularity.
    pub zipf_exponent: f64,
    /// Cache capacity as a fraction of the expected working-set bytes;
    /// below 1.0 forces a production-like miss rate.
    pub cache_fraction: f64,
    /// GET share of the operation mix (the remainder are SETs).
    pub get_fraction: f64,
    /// Simulated DB latency on the miss path.
    pub db_latency: Duration,
    /// Base measurement duration (scaled by the run scale).
    pub base_duration: Duration,
    /// Requests each load-generator worker keeps in flight per turn; 1 is
    /// the classic one-request-per-turn memtier mode, larger values
    /// exercise the pipelined RPC path.
    pub pipeline_depth: usize,
}

impl Default for TaoBenchConfig {
    fn default() -> Self {
        Self {
            base_key_space: 200_000,
            zipf_exponent: 0.99,
            cache_fraction: 0.35,
            get_fraction: 0.95,
            db_latency: Duration::from_micros(150),
            base_duration: Duration::from_millis(400),
            pipeline_depth: 1,
        }
    }
}

/// The TaoBench benchmark. See the [module docs](self).
#[derive(Debug, Default)]
pub struct TaoBench {
    config: TaoBenchConfig,
}

/// Marker length for a missing object in an `mget` response slot.
const MGET_MISSING: u32 = u32::MAX;

/// Appends one `mget` response slot: `u32` little-endian length plus the
/// value bytes, with [`MGET_MISSING`] marking an absent object.
fn encode_mget_slot(out: &mut Vec<u8>, value: Option<&[u8]>) {
    match value {
        Some(v) => {
            out.extend_from_slice(&(v.len() as u32).to_le_bytes());
            out.extend_from_slice(v);
        }
        None => out.extend_from_slice(&MGET_MISSING.to_le_bytes()),
    }
}

/// Consumes one `mget` response slot from `rest`. `Ok(None)` is a missing
/// object; `Err(())` is a truncated or malformed frame.
fn parse_mget_slot<'a>(rest: &mut &'a [u8]) -> Result<Option<&'a [u8]>, ()> {
    let (len_bytes, tail) = rest.split_at_checked(4).ok_or(())?;
    let len = u32::from_le_bytes([len_bytes[0], len_bytes[1], len_bytes[2], len_bytes[3]]);
    if len == MGET_MISSING {
        *rest = tail;
        return Ok(None);
    }
    let (value, tail) = tail.split_at_checked(len as usize).ok_or(())?;
    *rest = tail;
    Ok(Some(value))
}

/// Appends one `mset` request item: 8-byte key, `u32` little-endian
/// length, value bytes.
fn encode_mset_item(out: &mut Vec<u8>, key: &[u8], value: &[u8]) {
    out.extend_from_slice(key);
    out.extend_from_slice(&(value.len() as u32).to_le_bytes());
    out.extend_from_slice(value);
}

/// Decodes a whole `mset` request body into key/value pairs, or `None` if
/// the frame is malformed.
fn parse_mset_items(body: &[u8]) -> Option<Vec<(Vec<u8>, Vec<u8>)>> {
    let mut items = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let (key, tail) = rest.split_at_checked(8)?;
        let (len_bytes, tail) = tail.split_at_checked(4)?;
        let len = u32::from_le_bytes([len_bytes[0], len_bytes[1], len_bytes[2], len_bytes[3]]);
        let (value, tail) = tail.split_at_checked(len as usize)?;
        items.push((key.to_vec(), value.to_vec()));
        rest = tail;
    }
    Some(items)
}

impl TaoBench {
    /// Creates the benchmark with an explicit configuration.
    pub fn with_config(config: TaoBenchConfig) -> Self {
        Self { config }
    }
}

/// The client side: memtier-style key/op generation over the RPC client.
struct TaoClient {
    rpc: InProcClient,
    zipf: Zipf,
    key_space: u64,
    seed: u64,
    store: Arc<BackingStore>,
}

impl TaoClient {
    fn key_for(&self, seq: u64) -> u64 {
        let mut rng = SplitMix64::new(self.seed ^ seq.wrapping_mul(0x2545_F491_4F6C_DD1D));
        // Hash the Zipf rank so hot keys are spread across cache shards.
        let rank = self.zipf.sample(&mut rng);
        SplitMix64::mix(rank) % self.key_space.max(1)
    }
}

impl Service for TaoClient {
    fn call(&self, endpoint: usize, seq: u64) -> Result<usize, ServiceError> {
        let key = self.key_for(seq).to_le_bytes().to_vec();
        let result = if endpoint == 0 {
            self.rpc.call("get", key)
        } else {
            // SET: client supplies the new object, as memtier does.
            let mut body = key.clone();
            body.extend_from_slice(&self.store.synthesize_for_key(&key));
            self.rpc.call("set", body)
        };
        match result {
            Ok(resp) => Ok(resp.body.len()),
            Err(e) => Err(ServiceError::new(e.to_string())),
        }
    }

    fn call_many(&self, batch: &[(usize, u64)]) -> Vec<Result<usize, ServiceError>> {
        // Fold the burst into at most two multi-key requests — one mget
        // carrying every GET key and one mset carrying every SET — so the
        // whole pipelined burst maps onto one shard-grouped cache pass
        // server-side, then scatter results back in issue order.
        let mut get_slots: Vec<usize> = Vec::new();
        let mut mget_body: Vec<u8> = Vec::new();
        let mut set_slots: Vec<usize> = Vec::new();
        let mut mset_body: Vec<u8> = Vec::new();
        for (idx, &(endpoint, seq)) in batch.iter().enumerate() {
            let key = self.key_for(seq).to_le_bytes();
            if endpoint == 0 {
                get_slots.push(idx);
                mget_body.extend_from_slice(&key);
            } else {
                set_slots.push(idx);
                encode_mset_item(&mut mset_body, &key, &self.store.synthesize_for_key(&key));
            }
        }
        let mut results: Vec<Option<Result<usize, ServiceError>>> = vec![None; batch.len()];
        if !get_slots.is_empty() {
            match self.rpc.call("mget", mget_body) {
                Ok(resp) => {
                    let mut rest = resp.body.as_slice();
                    for &idx in &get_slots {
                        results[idx] = Some(match parse_mget_slot(&mut rest) {
                            Ok(Some(value)) => Ok(value.len()),
                            Ok(None) => Err(ServiceError::new("object not found")),
                            Err(()) => Err(ServiceError::new("truncated mget response")),
                        });
                    }
                }
                Err(e) => {
                    let err = ServiceError::new(e.to_string());
                    for &idx in &get_slots {
                        results[idx] = Some(Err(err.clone()));
                    }
                }
            }
        }
        if !set_slots.is_empty() {
            let outcome = self.rpc.call("mset", mset_body);
            for &idx in &set_slots {
                results[idx] = Some(match &outcome {
                    Ok(resp) => Ok(resp.body.len()),
                    Err(e) => Err(ServiceError::new(e.to_string())),
                });
            }
        }
        results
            .into_iter()
            .map(|r| r.unwrap_or_else(|| Err(ServiceError::new("request dropped from batch"))))
            .collect()
    }
}

impl Benchmark for TaoBench {
    fn name(&self) -> &str {
        "taobench"
    }

    fn category(&self) -> WorkloadCategory {
        WorkloadCategory::DataCaching
    }

    fn description(&self) -> &str {
        "TAO-style read-through in-memory cache with fast/slow thread pools"
    }

    fn run(&self, ctx: &mut RunContext) -> Result<BenchmarkReport, Error> {
        let scale = ctx.config().scale.factor();
        let threads = ctx.config().effective_threads();
        let key_space = self.config.base_key_space * scale;
        let seed = ctx.seed();

        // Expected working set: key space × mean object size; cap the
        // cache below it so the slow path stays exercised.
        let store = Arc::new(BackingStore::new(
            BackingStoreConfig {
                lookup_latency: self.config.db_latency,
                ..BackingStoreConfig::tao_like()
            },
            seed,
        ));
        let mean_object = 450usize; // log-normal mean for the TAO shape
        let capacity = (key_space as usize * mean_object) as f64 * self.config.cache_fraction;
        // Record onto the run's registry so the report's telemetry
        // snapshot carries the cache counters.
        let cache = Arc::new(Cache::with_telemetry(
            CacheConfig::with_capacity_bytes(capacity as usize).with_shards(threads * 4),
            ctx.telemetry(),
        ));

        // Server: fast pool for hits, slow pool for misses/SETs.
        let fast_threads = (threads / 2).max(2);
        let slow_threads = (threads / 2).max(2);
        let handler_cache = Arc::clone(&cache);
        let handler_store = Arc::clone(&store);
        let classify_cache = Arc::clone(&cache);
        let server = InProcServer::start_with_classifier(
            move |req: &Request| match req.method.as_str() {
                "get" => {
                    match handler_cache.get_or_load(&req.body, |key| handler_store.lookup(key)) {
                        Some(value) => Response::ok(value.to_vec()),
                        None => Response::error("object not found"),
                    }
                }
                "set" => {
                    if req.body.len() < 8 {
                        return Response::error("malformed set");
                    }
                    let (key, value) = req.body.split_at(8);
                    handler_cache.set(key, value.to_vec());
                    Response::ok(Vec::new())
                }
                "mget" => {
                    // Body: concatenated 8-byte keys. The whole burst
                    // resolves in one shard-grouped cache pass, with
                    // misses loaded through the single-flight fill path.
                    if !req.body.len().is_multiple_of(8) {
                        return Response::error("malformed mget");
                    }
                    let keys: Vec<&[u8]> = req.body.chunks_exact(8).collect();
                    let values =
                        handler_cache.get_or_load_many(&keys, |key| handler_store.lookup(key));
                    let mut out = Vec::new();
                    for value in &values {
                        encode_mget_slot(&mut out, value.as_deref());
                    }
                    Response::ok(out)
                }
                "mset" => match parse_mset_items(&req.body) {
                    // One write-locked pass per touched shard.
                    Some(items) => {
                        handler_cache.set_many(items);
                        Response::ok(Vec::new())
                    }
                    None => Response::error("malformed mset"),
                },
                other => Response::error(&format!("unknown method {other}")),
            },
            move |req: &Request| {
                // TAO's dispatch: peek the cache; hits go to fast
                // threads, misses and writes to slow threads. The peek is
                // a stat-less `contains` so classification neither skews
                // hit/miss counters nor perturbs LRU order.
                match req.method.as_str() {
                    "get" if classify_cache.contains(&req.body) => Lane::Fast,
                    "mget"
                        if req.body.len().is_multiple_of(8)
                            && req
                                .body
                                .chunks_exact(8)
                                .all(|key| classify_cache.contains(key)) =>
                    {
                        Lane::Fast
                    }
                    _ => Lane::Slow,
                }
            },
            PoolConfig::fast_slow(fast_threads, slow_threads).with_queue_depth(8192),
        );

        let client = TaoClient {
            rpc: server.client(),
            zipf: Zipf::new(key_space, self.config.zipf_exponent)
                .map_err(|e| Error::Config(e.to_string()))?,
            key_space,
            seed,
            store: Arc::clone(&store),
        };

        // Warm the cache briefly so the measured phase sees steady state.
        let mix = EndpointMix::new(
            &["get", "set"],
            &[self.config.get_fraction, 1.0 - self.config.get_fraction],
        )
        .map_err(|e| Error::Config(e.to_string()))?;
        ClosedLoop::new(mix.clone())
            .workers(threads)
            .pipeline_depth(self.config.pipeline_depth)
            .duration(self.config.base_duration / 4)
            .run(&client, seed ^ 0xAAAA);
        let warm_hits = cache.stats().hits();
        let warm_misses = cache.stats().misses();

        let mut report = ReportBuilder::new(self.name());
        report.param("key_space", key_space);
        report.param("cache_capacity_bytes", capacity as u64);
        report.param("fast_threads", fast_threads as u64);
        report.param("slow_threads", slow_threads as u64);
        report.param("client_threads", threads as u64);
        report.param("pipeline_depth", self.config.pipeline_depth as u64);
        report.param("zipf_exponent", self.config.zipf_exponent);

        let duration = self.config.base_duration * scale.min(16) as u32;
        // The measured run records onto the run registry (the warmup above
        // kept its own, so warmup traffic stays out of the snapshot).
        let load = ClosedLoop::new(mix)
            .workers(threads)
            .pipeline_depth(self.config.pipeline_depth)
            .duration(duration)
            .telemetry(ctx.telemetry())
            .run(&client, seed);

        // Hit rate over the measured phase only (classifier peeks are
        // counted too, symmetrically, so the ratio is preserved).
        let hits = cache.stats().hits() - warm_hits;
        let misses = cache.stats().misses() - warm_misses;
        let hit_rate = if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        };

        report.metric("requests_per_second", load.throughput_rps());
        report.metric("cache_hit_rate", hit_rate);
        report.metric("total_requests", load.completed);
        report.metric("error_rate", load.error_rate());
        report.metric("response_mb", load.response_bytes as f64 / 1e6);
        report.latency_ms("request", &load.latency_ns);
        let stats = server.stats();
        report.metric("rpc_shed", stats.shed());
        server.shutdown();
        Ok(report.finish(ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcperf_core::RunConfig;

    fn smoke_config() -> TaoBenchConfig {
        TaoBenchConfig {
            base_key_space: 20_000,
            db_latency: Duration::from_micros(40),
            base_duration: Duration::from_millis(150),
            ..TaoBenchConfig::default()
        }
    }

    #[test]
    fn smoke_run_produces_sane_metrics() {
        let bench = TaoBench::with_config(smoke_config());
        let mut ctx = RunContext::new(RunConfig::smoke_test().with_threads(4), "taobench");
        let report = bench.run(&mut ctx).expect("taobench runs");
        let rps = report.metric_f64("requests_per_second").unwrap();
        assert!(rps > 1_000.0, "rps={rps}");
        let hit_rate = report.metric_f64("cache_hit_rate").unwrap();
        assert!(
            (0.3..=0.999).contains(&hit_rate),
            "hit rate {hit_rate} out of expected band"
        );
        assert_eq!(report.metric_f64("error_rate"), Some(0.0));
        assert!(report.metric_f64("request_p95_ms").unwrap() > 0.0);
    }

    #[test]
    fn pipelined_run_matches_classic_semantics() {
        // Depth 8 batches bursts down the multiplexed RPC path; the mix,
        // hit-rate band, and error-free completion must be unchanged.
        let bench = TaoBench::with_config(TaoBenchConfig {
            pipeline_depth: 8,
            ..smoke_config()
        });
        let mut ctx = RunContext::new(RunConfig::smoke_test().with_threads(4), "taobench");
        let report = bench.run(&mut ctx).expect("pipelined taobench runs");
        assert_eq!(report.metric_f64("error_rate"), Some(0.0));
        let hit_rate = report.metric_f64("cache_hit_rate").unwrap();
        assert!(
            (0.3..=0.999).contains(&hit_rate),
            "hit rate {hit_rate} out of expected band"
        );
        assert!(report.metric_f64("requests_per_second").unwrap() > 1_000.0);
    }

    #[test]
    fn hot_keys_hit_cold_keys_miss() {
        // With a capacity-limited cache and Zipf keys, the measured hit
        // rate must be far above the capacity fraction alone (recency
        // keeps the hot head resident).
        let bench = TaoBench::with_config(TaoBenchConfig {
            cache_fraction: 0.2,
            ..smoke_config()
        });
        let mut ctx = RunContext::new(RunConfig::smoke_test().with_threads(4), "taobench");
        let report = bench.run(&mut ctx).unwrap();
        let hit_rate = report.metric_f64("cache_hit_rate").unwrap();
        assert!(hit_rate > 0.35, "hit rate {hit_rate}");
    }

    #[test]
    fn mget_slot_roundtrip() {
        let mut out = Vec::new();
        encode_mget_slot(&mut out, Some(b"hello"));
        encode_mget_slot(&mut out, None);
        encode_mget_slot(&mut out, Some(b""));
        let mut rest = out.as_slice();
        assert_eq!(parse_mget_slot(&mut rest), Ok(Some(&b"hello"[..])));
        assert_eq!(parse_mget_slot(&mut rest), Ok(None));
        assert_eq!(parse_mget_slot(&mut rest), Ok(Some(&b""[..])));
        assert!(rest.is_empty());
        // Truncated frames are a typed error, not a panic.
        let mut truncated = &out[..2];
        assert_eq!(parse_mget_slot(&mut truncated), Err(()));
    }

    #[test]
    fn mset_items_roundtrip() {
        let mut body = Vec::new();
        encode_mset_item(&mut body, &7u64.to_le_bytes(), b"value-7");
        encode_mset_item(&mut body, &8u64.to_le_bytes(), b"");
        let items = parse_mset_items(&body).expect("well-formed mset");
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].0, 7u64.to_le_bytes());
        assert_eq!(items[0].1, b"value-7");
        assert_eq!(items[1].1, b"");
        assert!(parse_mset_items(&body[..5]).is_none(), "truncated mset");
    }

    #[test]
    fn deterministic_key_generation() {
        // Same seed → same key sequence (content determinism).
        let store = Arc::new(BackingStore::new(
            BackingStoreConfig::tao_like().without_latency(),
            9,
        ));
        let server = InProcServer::start(
            |_req: &Request| Response::ok(vec![]),
            PoolConfig::single_lane(1),
        );
        let make = || TaoClient {
            rpc: server.client(),
            zipf: Zipf::new(1000, 0.99).unwrap(),
            key_space: 1000,
            seed: 77,
            store: Arc::clone(&store),
        };
        let a = make();
        let b = make();
        for seq in 0..100 {
            assert_eq!(a.key_for(seq), b.key_for(seq));
        }
        server.shutdown();
    }
}
