//! Runnable CloudSuite minis reproducing the Figure 13 pathologies.
//!
//! §4.6 measures three scalability failures in CloudSuite on modern
//! many-core servers. Each mini here reproduces the *mechanism* so the
//! pathology can be demonstrated live on any machine (the model-level
//! curves live in [`dcperf_platform::cloudsuite`]):
//!
//! * [`data_caching_scaling`] — a cache behind a **single global lock**
//!   (instead of DCPerf's sharding): added threads raise CPU burn much
//!   faster than throughput, and past the contention knee throughput
//!   *drops* (Figure 13a).
//! * [`web_serving_scaling`] — a **fixed-size worker pool with a gateway
//!   timeout**: offered load beyond the pool's capacity converts into 504
//!   errors while most cores idle (Figure 13b).
//! * [`in_memory_analytics_utilization`] — a job with **fixed task
//!   parallelism**: utilization is pinned at `tasks/cores` no matter how
//!   many cores exist (Figure 13c).

use dcperf_kvstore::{Cache, CacheConfig};
use dcperf_util::{Rng, SplitMix64, Xoshiro256pp, Zipf};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// One measured point of the data-caching scaling curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Client/server thread count.
    pub threads: usize,
    /// Achieved requests per second.
    pub rps: f64,
    /// Busy-thread seconds burned per wall second (a CPU-utilization
    /// proxy: threads that spin on the lock still count).
    pub cpu_burn: f64,
}

/// Measures the global-lock cache at several thread counts.
///
/// The benchmark intentionally reproduces CloudSuite Data Caching's
/// non-sharded design: every GET/SET serializes on one mutex.
pub fn data_caching_scaling(
    thread_counts: &[usize],
    per_point: Duration,
    seed: u64,
) -> Vec<ScalingPoint> {
    thread_counts
        .iter()
        .map(|&threads| {
            // One global lock around the entire cache: the anti-pattern.
            let cache = Mutex::new(Cache::new(
                CacheConfig::with_capacity_bytes(8 << 20).with_shards(1),
            ));
            let zipf = Zipf::new(10_000, 0.99).expect("valid zipf");
            let completed = AtomicU64::new(0);
            let started = Instant::now();
            std::thread::scope(|scope| {
                for t in 0..threads.max(1) {
                    let cache = &cache;
                    let zipf = &zipf;
                    let completed = &completed;
                    scope.spawn(move || {
                        let mut rng = Xoshiro256pp::seed_from_u64(seed ^ (t as u64) << 32);
                        let deadline = started + per_point;
                        while Instant::now() < deadline {
                            let key = zipf.sample(&mut rng).to_le_bytes();
                            let guard = cache.lock();
                            if rng.gen_bool(0.1) {
                                guard.set(&key, vec![0u8; 64]);
                            } else {
                                let _ = guard.get(&key);
                            }
                            drop(guard);
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
            let secs = started.elapsed().as_secs_f64();
            ScalingPoint {
                threads,
                rps: completed.load(Ordering::Relaxed) as f64 / secs,
                // All threads were runnable the whole time (lock waiters
                // spin in the futex path): burn ≈ thread count.
                cpu_burn: threads as f64,
            }
        })
        .collect()
}

/// One measured point of the web-serving load sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WebServingSample {
    /// Offered load scale (requests issued per sweep step).
    pub load_scale: u32,
    /// Completed requests.
    pub completed: u64,
    /// Requests that exceeded the gateway timeout (504s).
    pub errors: u64,
}

/// Sweeps offered load against a fixed-size worker pool with a gateway
/// timeout, the Elgg/PHP-FPM shape of CloudSuite Web Serving.
pub fn web_serving_scaling(
    load_scales: &[u32],
    pool_size: usize,
    service_time: Duration,
    gateway_timeout: Duration,
) -> Vec<WebServingSample> {
    load_scales
        .iter()
        .map(|&load| {
            let (tx, rx) = crossbeam::channel::bounded::<Instant>(4096);
            let completed = AtomicU64::new(0);
            let errors = AtomicU64::new(0);
            std::thread::scope(|scope| {
                // The fixed worker pool (the bottleneck).
                for _ in 0..pool_size {
                    let rx = rx.clone();
                    let completed = &completed;
                    let errors = &errors;
                    scope.spawn(move || {
                        while let Ok(enqueued) = rx.recv() {
                            if enqueued.elapsed() > gateway_timeout {
                                errors.fetch_add(1, Ordering::Relaxed); // 504
                                continue;
                            }
                            // Serve: burn the service time.
                            let done = Instant::now() + service_time;
                            while Instant::now() < done {
                                std::hint::spin_loop();
                            }
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
                // Offered load: `load` requests, paced quickly.
                for _ in 0..load {
                    if tx.send(Instant::now()).is_err() {
                        break;
                    }
                }
                drop(tx);
            });
            WebServingSample {
                load_scale: load,
                completed: completed.load(Ordering::Relaxed),
                errors: errors.load(Ordering::Relaxed),
            }
        })
        .collect()
}

/// Runs a fixed-parallelism "analytics job" and reports the utilization
/// it can achieve on `cores` cores.
///
/// Returns `(achieved_utilization_fraction, elapsed)`.
pub fn in_memory_analytics_utilization(
    cores: usize,
    fixed_tasks: usize,
    work_per_task: u64,
) -> (f64, Duration) {
    let started = Instant::now();
    let busy_ns = AtomicU64::new(0);
    std::thread::scope(|scope| {
        // Only `fixed_tasks` tasks exist, regardless of core count —
        // the ALS job's partitioning limit.
        for t in 0..fixed_tasks {
            let busy_ns = &busy_ns;
            scope.spawn(move || {
                let t0 = Instant::now();
                let mut acc = 0u64;
                let mut rng = SplitMix64::new(t as u64);
                for _ in 0..work_per_task {
                    acc = acc.wrapping_add(SplitMix64::mix(rng.next_u64()));
                }
                std::hint::black_box(acc);
                busy_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            });
        }
    });
    let elapsed = started.elapsed();
    let capacity_ns = elapsed.as_nanos() as u64 * cores as u64;
    (
        busy_ns.load(Ordering::Relaxed) as f64 / capacity_ns.max(1) as f64,
        elapsed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_caching_throughput_saturates_with_threads() {
        let points = data_caching_scaling(&[1, 4], Duration::from_millis(120), 1);
        assert_eq!(points.len(), 2);
        let per_thread_1 = points[0].rps / 1.0;
        let per_thread_4 = points[1].rps / 4.0;
        // The global lock destroys per-thread efficiency.
        assert!(
            per_thread_4 < per_thread_1 * 0.6,
            "per-thread rps {per_thread_1:.0} -> {per_thread_4:.0} should collapse"
        );
        // CPU burn rises linearly even though throughput doesn't.
        assert!(points[1].cpu_burn >= points[0].cpu_burn * 4.0);
    }

    #[test]
    fn web_serving_errors_appear_past_capacity() {
        // Pool of 2 workers, 2ms service time, 40ms timeout: 200 offered
        // requests exceed what the pool can clear in time.
        let samples = web_serving_scaling(
            &[10, 400],
            2,
            Duration::from_millis(2),
            Duration::from_millis(40),
        );
        assert_eq!(samples[0].errors, 0, "light load must not time out");
        assert!(samples[0].completed == 10);
        assert!(
            samples[1].errors > 0,
            "overload must convert into 504s: {:?}",
            samples[1]
        );
        assert_eq!(samples[1].completed + samples[1].errors, 400);
    }

    #[test]
    fn fixed_parallelism_caps_utilization() {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        if cores < 4 {
            return; // can't demonstrate the gap on tiny machines
        }
        let tasks = 2usize;
        let (util, _) = in_memory_analytics_utilization(cores, tasks, 3_000_000);
        let expected = tasks as f64 / cores as f64;
        assert!(
            util < expected * 1.6 + 0.05,
            "utilization {util:.2} should be pinned near {expected:.2}"
        );
        assert!(util > expected * 0.3, "tasks did run: {util:.2}");
    }
}
