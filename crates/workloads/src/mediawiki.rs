//! MediaWiki: the Facebook-style web-serving benchmark.
//!
//! "The Mediawiki benchmark represents a classic web application. It runs
//! Nginx together with HHVM as the web server, with MediaWiki as the
//! website to serve. It uses MySQL as the backend database and Memcached
//! as the cache … Siege is used as the load generator to access several
//! endpoints of the MediaWiki website, such as the Barack Obama page from
//! Wikipedia, the edit page, the user login page, and the talk page."
//! (§3.2)
//!
//! Mapping onto this repo's substrates: the [`wiki`](crate::wiki)
//! template renderer is the HHVM/MediaWiki application logic (large
//! instruction footprint, template recursion), [`PageStore`] is MySQL,
//! [`dcperf_kvstore::Cache`] is Memcached in front of rendered pages, and
//! a siege-style multithreaded closed loop drives the same four endpoints.

use crate::store::{PageRecord, PageStore};
use crate::wiki::{self, TemplateSet};
use dcperf_core::{Benchmark, BenchmarkReport, Error, ReportBuilder, RunContext, WorkloadCategory};
use dcperf_kvstore::{Cache, CacheConfig};
use dcperf_loadgen::{ClosedLoop, EndpointMix, Service, ServiceError};
use dcperf_tax::{compress, crypto};
use dcperf_util::{SplitMix64, Zipf};
use parking_lot::RwLock;
use std::time::Duration;

/// Tunable parameters.
#[derive(Debug, Clone)]
pub struct MediaWikiConfig {
    /// Number of wiki pages (scaled by run scale).
    pub base_pages: u64,
    /// Target wikitext length per page, bytes.
    pub article_len: usize,
    /// Zipf skew of page popularity (the "Barack Obama page" effect).
    pub zipf_exponent: f64,
    /// Base measurement duration (scaled by run scale).
    pub base_duration: Duration,
    /// Requests each load-generator worker keeps in flight per turn; 1 is
    /// the classic siege one-request-per-turn mode, larger values batch
    /// runs of views into one store/cache pass.
    pub pipeline_depth: usize,
}

impl Default for MediaWikiConfig {
    fn default() -> Self {
        Self {
            base_pages: 400,
            article_len: 6_000,
            zipf_exponent: 1.0,
            base_duration: Duration::from_millis(400),
            pipeline_depth: 1,
        }
    }
}

/// The MediaWiki benchmark. See the [module docs](self).
#[derive(Debug, Default)]
pub struct MediaWikiBench {
    config: MediaWikiConfig,
}

impl MediaWikiBench {
    /// Creates the benchmark with an explicit configuration.
    pub fn with_config(config: MediaWikiConfig) -> Self {
        Self { config }
    }
}

struct WikiApp {
    pages: RwLock<PageStore>,
    cache: Cache,
    templates: TemplateSet,
    zipf: Zipf,
    page_count: u64,
    seed: u64,
    session_key: [u8; 32],
}

impl WikiApp {
    fn page_for(&self, seq: u64) -> u64 {
        let mut rng = SplitMix64::new(self.seed ^ seq.wrapping_mul(0x94D0_49BB_1331_11EB));
        SplitMix64::mix(self.zipf.sample(&mut rng)) % self.page_count
    }

    /// `view`: cache-or-render the article page, then gzip it for the
    /// wire, exactly the Nginx+HHVM hot path.
    fn view(&self, page_id: u64) -> Result<usize, ServiceError> {
        let (revision, cache_key) = {
            let pages = self.pages.read();
            let page = pages
                .get(page_id)
                .ok_or_else(|| ServiceError::new("404 page not found"))?;
            let mut key = b"page:".to_vec();
            key.extend_from_slice(&page_id.to_le_bytes());
            key.extend_from_slice(&page.revision.to_le_bytes());
            (page.revision, key)
        };
        let _ = revision;
        let html_gz = self.cache.get_or_load(&cache_key, |_| {
            let pages = self.pages.read();
            let page = pages.get(page_id)?;
            let html = wiki::render(&page.source, &self.templates);
            Some(compress::lz_compress(html.as_bytes()))
        });
        html_gz
            .map(|b| b.len())
            .ok_or_else(|| ServiceError::new("render failed"))
    }

    /// Batched `view`: one read-locked [`PageStore::get_many`] pass
    /// resolves every page's revision-suffixed cache key, one
    /// [`Cache::get_many`] resolves the hits, and the misses are rendered
    /// and written back through one [`Cache::set_many`]. Rendering is
    /// deterministic per (page, revision), so racing fills are benign.
    fn view_many(&self, page_ids: &[u64]) -> Vec<Result<usize, ServiceError>> {
        let pages = self.pages.read();
        let records = pages.get_many(page_ids);
        let keys: Vec<Option<Vec<u8>>> = records
            .iter()
            .map(|record| {
                record.map(|page| {
                    let mut key = b"page:".to_vec();
                    key.extend_from_slice(&page.id.to_le_bytes());
                    key.extend_from_slice(&page.revision.to_le_bytes());
                    key
                })
            })
            .collect();
        let present: Vec<usize> = (0..keys.len()).filter(|&i| keys[i].is_some()).collect();
        let key_refs: Vec<&[u8]> = present.iter().filter_map(|&i| keys[i].as_deref()).collect();
        let mut cached = self.cache.get_many(&key_refs);
        let mut fills: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for (slot, &i) in cached.iter_mut().zip(&present) {
            if slot.is_none() {
                if let (Some(page), Some(key)) = (records[i], keys[i].as_ref()) {
                    let html = wiki::render(&page.source, &self.templates);
                    let html_gz = compress::lz_compress(html.as_bytes());
                    fills.push((key.clone(), html_gz.clone()));
                    *slot = Some(html_gz.into());
                }
            }
        }
        drop(pages);
        if !fills.is_empty() {
            self.cache.set_many(fills);
        }
        let mut sizes = cached.into_iter();
        keys.iter()
            .map(|key| match key {
                Some(_) => sizes
                    .next()
                    .flatten()
                    .map(|body| body.len())
                    .ok_or_else(|| ServiceError::new("render failed")),
                None => Err(ServiceError::new("404 page not found")),
            })
            .collect()
    }

    /// `edit`: append a paragraph, bump the revision (the old revision's
    /// cache entry becomes unreachable, like a purged page).
    fn edit(&self, page_id: u64, seq: u64) -> Result<usize, ServiceError> {
        let appended = format!("\n\nEdit {seq} adds a '''new''' paragraph with [[link {seq}]].");
        let mut pages = self.pages.write();
        pages
            .edit(page_id, &appended)
            .map(|rev| rev as usize)
            .ok_or_else(|| ServiceError::new("404 page not found"))
    }

    /// `login`: password hash check + session token issuance (crypto
    /// tax, no page render).
    fn login(&self, seq: u64) -> Result<usize, ServiceError> {
        let user = format!("user{}", seq % 1000);
        let password = format!("hunter{}", seq % 10);
        // Derive and verify a salted hash (the expensive part of login).
        let mut salted = user.clone().into_bytes();
        salted.extend_from_slice(password.as_bytes());
        let mut digest = crypto::Sha256::digest(&salted);
        for _ in 0..64 {
            digest = crypto::Sha256::digest(&digest); // stretched hash
        }
        let token = crypto::hmac_sha256(&self.session_key, &digest);
        Ok(token.len())
    }

    /// `talk`: render the discussion page (smaller, never cached).
    fn talk(&self, page_id: u64, seq: u64) -> Result<usize, ServiceError> {
        let source = format!(
            "== Discussion of page {page_id} ==\n* comment {seq} by [[user {}]]\n* reply with {{{{cite|talk-{seq}}}}}\n",
            seq % 97
        );
        let html = wiki::render(&source, &self.templates);
        Ok(html.len())
    }
}

impl Service for WikiApp {
    fn call(&self, endpoint: usize, seq: u64) -> Result<usize, ServiceError> {
        let page = self.page_for(seq);
        match endpoint {
            0 => self.view(page),
            1 => self.edit(page, seq),
            2 => self.login(seq),
            _ => self.talk(page, seq),
        }
    }

    fn call_many(&self, batch: &[(usize, u64)]) -> Vec<Result<usize, ServiceError>> {
        // Runs of consecutive views collapse into one batched
        // store/cache pass; edits and the rest stay scalar and in order,
        // so revision-key invalidation keeps its unpipelined schedule.
        let mut results = Vec::with_capacity(batch.len());
        let mut i = 0;
        while i < batch.len() {
            if batch[i].0 == 0 {
                let mut j = i;
                while j < batch.len() && batch[j].0 == 0 {
                    j += 1;
                }
                let page_ids: Vec<u64> = batch[i..j]
                    .iter()
                    .map(|&(_, seq)| self.page_for(seq))
                    .collect();
                results.extend(self.view_many(&page_ids));
                i = j;
            } else {
                let (endpoint, seq) = batch[i];
                results.push(self.call(endpoint, seq));
                i += 1;
            }
        }
        results
    }
}

impl Benchmark for MediaWikiBench {
    fn name(&self) -> &str {
        "mediawiki"
    }

    fn category(&self) -> WorkloadCategory {
        WorkloadCategory::Web
    }

    fn description(&self) -> &str {
        "classic web serving: wiki template rendering with page cache and DB"
    }

    fn run(&self, ctx: &mut RunContext) -> Result<BenchmarkReport, Error> {
        let scale = ctx.config().scale.factor();
        let threads = ctx.config().effective_threads();
        let seed = ctx.seed();
        let page_count = self.config.base_pages * scale.min(16);

        // Install: generate the wiki.
        let mut pages = PageStore::new();
        for id in 0..page_count {
            pages.insert(PageRecord {
                id,
                title: format!("Article {id}"),
                source: wiki::generate_article(id, self.config.article_len, seed),
                revision: 1,
            });
        }

        let app = WikiApp {
            pages: RwLock::new(pages),
            cache: Cache::with_telemetry(
                CacheConfig::with_capacity_bytes(128 << 20).with_shards(threads * 2),
                ctx.telemetry(),
            ),
            templates: TemplateSet::standard(),
            zipf: Zipf::new(page_count, self.config.zipf_exponent)
                .map_err(|e| Error::Config(e.to_string()))?,
            page_count,
            seed,
            session_key: [0x5A; 32],
        };

        // Siege's endpoint mix: mostly views, some edits/logins/talk.
        let mix = EndpointMix::new(
            &["view", "edit", "login", "talk"],
            &[0.70, 0.08, 0.10, 0.12],
        )
        .map_err(|e| Error::Config(e.to_string()))?;

        let duration = self.config.base_duration * scale.min(16) as u32;
        let load = ClosedLoop::new(mix)
            .workers(threads)
            .pipeline_depth(self.config.pipeline_depth)
            .duration(duration)
            .telemetry(ctx.telemetry())
            .run(&app, seed);

        let mut report = ReportBuilder::new(self.name());
        report.param("pages", page_count);
        report.param("article_len", self.config.article_len as u64);
        report.param("client_threads", threads as u64);
        report.param("pipeline_depth", self.config.pipeline_depth as u64);
        report.metric("requests_per_second", load.throughput_rps());
        report.metric("total_requests", load.completed);
        report.metric("error_rate", load.error_rate());
        report.metric("page_cache_hit_rate", app.cache.stats().hit_rate());
        report.latency_ms("request", &load.latency_ns);
        for (name, count) in ["view", "edit", "login", "talk"]
            .iter()
            .zip(&load.per_endpoint)
        {
            report.metric(&format!("requests_{name}"), *count);
        }
        Ok(report.finish(ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcperf_core::RunConfig;

    fn smoke() -> MediaWikiConfig {
        MediaWikiConfig {
            base_pages: 60,
            article_len: 2_000,
            base_duration: Duration::from_millis(150),
            ..MediaWikiConfig::default()
        }
    }

    #[test]
    fn smoke_run_serves_pages() {
        let bench = MediaWikiBench::with_config(smoke());
        let mut ctx = RunContext::new(RunConfig::smoke_test().with_threads(4), "mediawiki");
        let report = bench.run(&mut ctx).expect("mediawiki runs");
        let rps = report.metric_f64("requests_per_second").unwrap();
        assert!(rps > 200.0, "rps={rps}");
        assert_eq!(report.metric_f64("error_rate"), Some(0.0));
        for ep in ["view", "edit", "login", "talk"] {
            assert!(
                report.metric_f64(&format!("requests_{ep}")).unwrap() > 0.0,
                "endpoint {ep} never hit"
            );
        }
    }

    #[test]
    fn hot_pages_are_served_from_cache() {
        let bench = MediaWikiBench::with_config(smoke());
        let mut ctx = RunContext::new(RunConfig::smoke_test().with_threads(2), "mediawiki");
        let report = bench.run(&mut ctx).unwrap();
        let hit_rate = report.metric_f64("page_cache_hit_rate").unwrap();
        assert!(
            hit_rate > 0.5,
            "read-through page cache hit rate {hit_rate}"
        );
    }

    #[test]
    fn pipelined_run_matches_classic_semantics() {
        let bench = MediaWikiBench::with_config(MediaWikiConfig {
            pipeline_depth: 8,
            ..smoke()
        });
        let mut ctx = RunContext::new(RunConfig::smoke_test().with_threads(4), "mediawiki");
        let report = bench.run(&mut ctx).expect("pipelined mediawiki runs");
        assert_eq!(report.metric_f64("error_rate"), Some(0.0));
        assert!(report.metric_f64("page_cache_hit_rate").unwrap() > 0.5);
    }

    fn one_page_app() -> WikiApp {
        WikiApp {
            pages: RwLock::new({
                let mut s = PageStore::new();
                for id in 0..3 {
                    s.insert(PageRecord {
                        id,
                        title: format!("T{id}"),
                        source: format!("== H{id} ==\nbody {id}"),
                        revision: 1,
                    });
                }
                s
            }),
            cache: Cache::new(CacheConfig::with_capacity_bytes(1 << 20)),
            templates: TemplateSet::standard(),
            zipf: Zipf::new(3, 1.0).unwrap(),
            page_count: 3,
            seed: 1,
            session_key: [0; 32],
        }
    }

    #[test]
    fn batched_views_match_scalar_views() {
        let batched_app = one_page_app();
        let scalar_app = one_page_app();
        let ids = [0u64, 2, 0, 99, 1];
        let batched = batched_app.view_many(&ids);
        let scalar: Vec<_> = ids.iter().map(|&id| scalar_app.view(id)).collect();
        assert_eq!(batched, scalar);
        assert!(batched[3].is_err(), "unknown page is a 404 in both paths");
        // The duplicate view of page 0 misses alongside the first (the
        // batch read pass ran before any fill) and renders again — benign,
        // identical bytes; set_many leaves one entry per key.
        assert_eq!(batched_app.cache.stats().insertions(), 4);
        assert_eq!(batched_app.cache.len(), 3);
    }

    #[test]
    fn edits_invalidate_via_revision_keys() {
        let app = WikiApp {
            pages: RwLock::new({
                let mut s = PageStore::new();
                s.insert(PageRecord {
                    id: 0,
                    title: "T".into(),
                    source: "== H ==\nbody".into(),
                    revision: 1,
                });
                s
            }),
            cache: Cache::new(CacheConfig::with_capacity_bytes(1 << 20)),
            templates: TemplateSet::standard(),
            zipf: Zipf::new(1, 1.0).unwrap(),
            page_count: 1,
            seed: 1,
            session_key: [0; 32],
        };
        let size_before = app.view(0).unwrap();
        app.view(0).unwrap();
        assert_eq!(app.cache.stats().hits(), 1, "second view must hit");
        app.edit(0, 9).unwrap();
        let size_after = app.view(0).unwrap();
        assert!(size_after >= size_before, "edited page grew");
        // The edited view missed (new revision key).
        assert_eq!(app.cache.stats().misses(), 2);
    }
}
