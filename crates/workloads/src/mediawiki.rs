//! MediaWiki: the Facebook-style web-serving benchmark.
//!
//! "The Mediawiki benchmark represents a classic web application. It runs
//! Nginx together with HHVM as the web server, with MediaWiki as the
//! website to serve. It uses MySQL as the backend database and Memcached
//! as the cache … Siege is used as the load generator to access several
//! endpoints of the MediaWiki website, such as the Barack Obama page from
//! Wikipedia, the edit page, the user login page, and the talk page."
//! (§3.2)
//!
//! Mapping onto this repo's substrates: the [`wiki`](crate::wiki)
//! template renderer is the HHVM/MediaWiki application logic (large
//! instruction footprint, template recursion), [`PageStore`] is MySQL,
//! [`dcperf_kvstore::Cache`] is Memcached in front of rendered pages, and
//! a siege-style multithreaded closed loop drives the same four endpoints.

use crate::store::{PageRecord, PageStore};
use crate::wiki::{self, TemplateSet};
use dcperf_core::{Benchmark, BenchmarkReport, Error, ReportBuilder, RunContext, WorkloadCategory};
use dcperf_kvstore::{Cache, CacheConfig};
use dcperf_loadgen::{ClosedLoop, EndpointMix, Service, ServiceError};
use dcperf_tax::{compress, crypto};
use dcperf_util::{SplitMix64, Zipf};
use parking_lot::RwLock;
use std::time::Duration;

/// Tunable parameters.
#[derive(Debug, Clone)]
pub struct MediaWikiConfig {
    /// Number of wiki pages (scaled by run scale).
    pub base_pages: u64,
    /// Target wikitext length per page, bytes.
    pub article_len: usize,
    /// Zipf skew of page popularity (the "Barack Obama page" effect).
    pub zipf_exponent: f64,
    /// Base measurement duration (scaled by run scale).
    pub base_duration: Duration,
}

impl Default for MediaWikiConfig {
    fn default() -> Self {
        Self {
            base_pages: 400,
            article_len: 6_000,
            zipf_exponent: 1.0,
            base_duration: Duration::from_millis(400),
        }
    }
}

/// The MediaWiki benchmark. See the [module docs](self).
#[derive(Debug, Default)]
pub struct MediaWikiBench {
    config: MediaWikiConfig,
}

impl MediaWikiBench {
    /// Creates the benchmark with an explicit configuration.
    pub fn with_config(config: MediaWikiConfig) -> Self {
        Self { config }
    }
}

struct WikiApp {
    pages: RwLock<PageStore>,
    cache: Cache,
    templates: TemplateSet,
    zipf: Zipf,
    page_count: u64,
    seed: u64,
    session_key: [u8; 32],
}

impl WikiApp {
    fn page_for(&self, seq: u64) -> u64 {
        let mut rng = SplitMix64::new(self.seed ^ seq.wrapping_mul(0x94D0_49BB_1331_11EB));
        SplitMix64::mix(self.zipf.sample(&mut rng)) % self.page_count
    }

    /// `view`: cache-or-render the article page, then gzip it for the
    /// wire, exactly the Nginx+HHVM hot path.
    fn view(&self, page_id: u64) -> Result<usize, ServiceError> {
        let (revision, cache_key) = {
            let pages = self.pages.read();
            let page = pages
                .get(page_id)
                .ok_or_else(|| ServiceError::new("404 page not found"))?;
            let mut key = b"page:".to_vec();
            key.extend_from_slice(&page_id.to_le_bytes());
            key.extend_from_slice(&page.revision.to_le_bytes());
            (page.revision, key)
        };
        let _ = revision;
        let html_gz = self.cache.get_or_load(&cache_key, |_| {
            let pages = self.pages.read();
            let page = pages.get(page_id)?;
            let html = wiki::render(&page.source, &self.templates);
            Some(compress::lz_compress(html.as_bytes()))
        });
        html_gz
            .map(|b| b.len())
            .ok_or_else(|| ServiceError::new("render failed"))
    }

    /// `edit`: append a paragraph, bump the revision (the old revision's
    /// cache entry becomes unreachable, like a purged page).
    fn edit(&self, page_id: u64, seq: u64) -> Result<usize, ServiceError> {
        let appended = format!("\n\nEdit {seq} adds a '''new''' paragraph with [[link {seq}]].");
        let mut pages = self.pages.write();
        pages
            .edit(page_id, &appended)
            .map(|rev| rev as usize)
            .ok_or_else(|| ServiceError::new("404 page not found"))
    }

    /// `login`: password hash check + session token issuance (crypto
    /// tax, no page render).
    fn login(&self, seq: u64) -> Result<usize, ServiceError> {
        let user = format!("user{}", seq % 1000);
        let password = format!("hunter{}", seq % 10);
        // Derive and verify a salted hash (the expensive part of login).
        let mut salted = user.clone().into_bytes();
        salted.extend_from_slice(password.as_bytes());
        let mut digest = crypto::Sha256::digest(&salted);
        for _ in 0..64 {
            digest = crypto::Sha256::digest(&digest); // stretched hash
        }
        let token = crypto::hmac_sha256(&self.session_key, &digest);
        Ok(token.len())
    }

    /// `talk`: render the discussion page (smaller, never cached).
    fn talk(&self, page_id: u64, seq: u64) -> Result<usize, ServiceError> {
        let source = format!(
            "== Discussion of page {page_id} ==\n* comment {seq} by [[user {}]]\n* reply with {{{{cite|talk-{seq}}}}}\n",
            seq % 97
        );
        let html = wiki::render(&source, &self.templates);
        Ok(html.len())
    }
}

impl Service for WikiApp {
    fn call(&self, endpoint: usize, seq: u64) -> Result<usize, ServiceError> {
        let page = self.page_for(seq);
        match endpoint {
            0 => self.view(page),
            1 => self.edit(page, seq),
            2 => self.login(seq),
            _ => self.talk(page, seq),
        }
    }
}

impl Benchmark for MediaWikiBench {
    fn name(&self) -> &str {
        "mediawiki"
    }

    fn category(&self) -> WorkloadCategory {
        WorkloadCategory::Web
    }

    fn description(&self) -> &str {
        "classic web serving: wiki template rendering with page cache and DB"
    }

    fn run(&self, ctx: &mut RunContext) -> Result<BenchmarkReport, Error> {
        let scale = ctx.config().scale.factor();
        let threads = ctx.config().effective_threads();
        let seed = ctx.seed();
        let page_count = self.config.base_pages * scale.min(16);

        // Install: generate the wiki.
        let mut pages = PageStore::new();
        for id in 0..page_count {
            pages.insert(PageRecord {
                id,
                title: format!("Article {id}"),
                source: wiki::generate_article(id, self.config.article_len, seed),
                revision: 1,
            });
        }

        let app = WikiApp {
            pages: RwLock::new(pages),
            cache: Cache::with_telemetry(
                CacheConfig::with_capacity_bytes(128 << 20).with_shards(threads * 2),
                ctx.telemetry(),
            ),
            templates: TemplateSet::standard(),
            zipf: Zipf::new(page_count, self.config.zipf_exponent)
                .map_err(|e| Error::Config(e.to_string()))?,
            page_count,
            seed,
            session_key: [0x5A; 32],
        };

        // Siege's endpoint mix: mostly views, some edits/logins/talk.
        let mix = EndpointMix::new(
            &["view", "edit", "login", "talk"],
            &[0.70, 0.08, 0.10, 0.12],
        )
        .map_err(|e| Error::Config(e.to_string()))?;

        let duration = self.config.base_duration * scale.min(16) as u32;
        let load = ClosedLoop::new(mix)
            .workers(threads)
            .duration(duration)
            .telemetry(ctx.telemetry())
            .run(&app, seed);

        let mut report = ReportBuilder::new(self.name());
        report.param("pages", page_count);
        report.param("article_len", self.config.article_len as u64);
        report.param("client_threads", threads as u64);
        report.metric("requests_per_second", load.throughput_rps());
        report.metric("total_requests", load.completed);
        report.metric("error_rate", load.error_rate());
        report.metric("page_cache_hit_rate", app.cache.stats().hit_rate());
        report.latency_ms("request", &load.latency_ns);
        for (name, count) in ["view", "edit", "login", "talk"]
            .iter()
            .zip(&load.per_endpoint)
        {
            report.metric(&format!("requests_{name}"), *count);
        }
        Ok(report.finish(ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcperf_core::RunConfig;

    fn smoke() -> MediaWikiConfig {
        MediaWikiConfig {
            base_pages: 60,
            article_len: 2_000,
            base_duration: Duration::from_millis(150),
            ..MediaWikiConfig::default()
        }
    }

    #[test]
    fn smoke_run_serves_pages() {
        let bench = MediaWikiBench::with_config(smoke());
        let mut ctx = RunContext::new(RunConfig::smoke_test().with_threads(4), "mediawiki");
        let report = bench.run(&mut ctx).expect("mediawiki runs");
        let rps = report.metric_f64("requests_per_second").unwrap();
        assert!(rps > 200.0, "rps={rps}");
        assert_eq!(report.metric_f64("error_rate"), Some(0.0));
        for ep in ["view", "edit", "login", "talk"] {
            assert!(
                report.metric_f64(&format!("requests_{ep}")).unwrap() > 0.0,
                "endpoint {ep} never hit"
            );
        }
    }

    #[test]
    fn hot_pages_are_served_from_cache() {
        let bench = MediaWikiBench::with_config(smoke());
        let mut ctx = RunContext::new(RunConfig::smoke_test().with_threads(2), "mediawiki");
        let report = bench.run(&mut ctx).unwrap();
        let hit_rate = report.metric_f64("page_cache_hit_rate").unwrap();
        assert!(
            hit_rate > 0.5,
            "read-through page cache hit rate {hit_rate}"
        );
    }

    #[test]
    fn edits_invalidate_via_revision_keys() {
        let app = WikiApp {
            pages: RwLock::new({
                let mut s = PageStore::new();
                s.insert(PageRecord {
                    id: 0,
                    title: "T".into(),
                    source: "== H ==\nbody".into(),
                    revision: 1,
                });
                s
            }),
            cache: Cache::new(CacheConfig::with_capacity_bytes(1 << 20)),
            templates: TemplateSet::standard(),
            zipf: Zipf::new(1, 1.0).unwrap(),
            page_count: 1,
            seed: 1,
            session_key: [0; 32],
        };
        let size_before = app.view(0).unwrap();
        app.view(0).unwrap();
        assert_eq!(app.cache.stats().hits(), 1, "second view must hit");
        app.edit(0, 9).unwrap();
        let size_after = app.view(0).unwrap();
        assert!(size_after >= size_before, "edited page grew");
        // The edited view missed (new revision key).
        assert_eq!(app.cache.stats().misses(), 2);
    }
}
