//! A miniature wiki-markup template renderer — the application logic of
//! the MediaWiki benchmark.
//!
//! MediaWiki's serving cost is dominated by parsing and expanding
//! wikitext (headings, inline formatting, links, and — critically —
//! recursive template transclusion) into HTML. This renderer implements
//! that pipeline from scratch: a line-oriented block parser, an inline
//! formatter, and `{{template|arg}}` expansion with depth limits, plus a
//! deterministic article generator for benchmark datasets.

use dcperf_util::{Rng, SplitMix64};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maximum template recursion depth (MediaWiki uses 40; we keep the same
/// guard so malicious nesting terminates).
const MAX_TEMPLATE_DEPTH: usize = 40;

/// A set of named templates with `{{{1}}}`-style positional parameters.
#[derive(Debug, Clone, Default)]
pub struct TemplateSet {
    templates: BTreeMap<String, String>,
}

impl TemplateSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a template body under `name`.
    pub fn insert(&mut self, name: &str, body: &str) {
        self.templates.insert(name.to_owned(), body.to_owned());
    }

    /// The standard set used by benchmark articles (infobox, citation,
    /// birth date, quote).
    pub fn standard() -> Self {
        let mut set = Self::new();
        set.insert(
            "infobox",
            "<table class=\"infobox\"><tr><th>{{{1}}}</th></tr><tr><td>{{{2}}}</td></tr></table>",
        );
        set.insert("cite", "<sup class=\"cite\">[{{{1}}}]</sup>");
        set.insert(
            "birth date",
            "<span class=\"bday\">{{{1}}}-{{{2}}}-{{{3}}}</span>",
        );
        set.insert("quote", "<blockquote>{{{1}}} — ''{{{2}}}''</blockquote>");
        set.insert("flag", "<span class=\"flag\">{{{1}}}</span>");
        set
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.templates.get(name).map(String::as_str)
    }

    /// Number of registered templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Whether no templates are registered.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }
}

/// Renders wikitext `source` to HTML using `templates`.
///
/// Supported syntax: `== headings ==` (levels 2–4), `'''bold'''`,
/// `''italic''`, `[[Page]]` / `[[Page|label]]` links, `* bullet` lists,
/// `{{template|args}}` transclusion, and paragraphs.
pub fn render(source: &str, templates: &TemplateSet) -> String {
    let expanded = expand_templates(source, templates, 0);
    let mut html = String::with_capacity(expanded.len() * 2);
    let mut in_list = false;
    let mut in_paragraph = false;

    for line in expanded.lines() {
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            close_blocks(&mut html, &mut in_list, &mut in_paragraph);
            continue;
        }
        if let Some(heading) = parse_heading(trimmed) {
            close_blocks(&mut html, &mut in_list, &mut in_paragraph);
            let (level, text) = heading;
            let _ = writeln!(html, "<h{level}>{}</h{level}>", render_inline(text));
            continue;
        }
        if let Some(item) = trimmed.strip_prefix("* ") {
            if in_paragraph {
                html.push_str("</p>\n");
                in_paragraph = false;
            }
            if !in_list {
                html.push_str("<ul>\n");
                in_list = true;
            }
            let _ = writeln!(html, "<li>{}</li>", render_inline(item));
            continue;
        }
        if in_list {
            html.push_str("</ul>\n");
            in_list = false;
        }
        if !in_paragraph {
            html.push_str("<p>");
            in_paragraph = true;
        } else {
            html.push(' ');
        }
        html.push_str(&render_inline(trimmed));
    }
    close_blocks(&mut html, &mut in_list, &mut in_paragraph);
    html
}

fn close_blocks(html: &mut String, in_list: &mut bool, in_paragraph: &mut bool) {
    if *in_list {
        html.push_str("</ul>\n");
        *in_list = false;
    }
    if *in_paragraph {
        html.push_str("</p>\n");
        *in_paragraph = false;
    }
}

fn parse_heading(line: &str) -> Option<(usize, &str)> {
    for level in (2..=4).rev() {
        let marker = &"===="[..level];
        if let Some(rest) = line.strip_prefix(marker) {
            if let Some(text) = rest.strip_suffix(marker) {
                return Some((level, text.trim()));
            }
        }
    }
    None
}

/// Expands `{{name|arg|arg}}` transclusions, depth-limited.
fn expand_templates(source: &str, templates: &TemplateSet, depth: usize) -> String {
    if depth >= MAX_TEMPLATE_DEPTH || !source.contains("{{") {
        return source.to_owned();
    }
    let mut out = String::with_capacity(source.len());
    let mut rest = source;
    while let Some(start) = rest.find("{{") {
        out.push_str(&rest[..start]);
        let after = &rest[start + 2..];
        // Find the matching `}}` accounting for nesting.
        let Some(end) = find_closing(after) else {
            out.push_str("{{");
            rest = after;
            continue;
        };
        let inner = &after[..end];
        // Parameter placeholders `{{{n}}}` survive as literals here; they
        // are substituted during invocation below.
        let mut parts = split_template_args(inner);
        let name = parts.remove(0).trim().to_lowercase();
        match templates.get(&name) {
            Some(body) => {
                let mut instance = body.to_owned();
                for (i, arg) in parts.iter().enumerate() {
                    instance = instance.replace(&format!("{{{{{{{}}}}}}}", i + 1), arg.trim());
                }
                // Unfilled parameters render as empty.
                while let Some(s) = instance.find("{{{") {
                    match instance[s..].find("}}}") {
                        Some(e) => instance.replace_range(s..s + e + 3, ""),
                        None => break,
                    }
                }
                out.push_str(&expand_templates(&instance, templates, depth + 1));
            }
            None => {
                let _ = write!(out, "<span class=\"missing-template\">{name}</span>");
            }
        }
        rest = &after[end + 2..];
    }
    out.push_str(rest);
    out
}

/// Finds the index of the `}}` closing the template opened just before
/// `s`, allowing nested `{{ }}` pairs.
fn find_closing(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i + 1 < bytes.len() {
        if bytes[i] == b'{' && bytes[i + 1] == b'{' {
            depth += 1;
            i += 2;
        } else if bytes[i] == b'}' && bytes[i + 1] == b'}' {
            if depth == 0 {
                return Some(i);
            }
            depth -= 1;
            i += 2;
        } else {
            i += 1;
        }
    }
    None
}

/// Splits template contents on `|` at nesting depth zero.
fn split_template_args(inner: &str) -> Vec<&str> {
    let bytes = inner.as_bytes();
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'{' | b'[' => depth += 1,
            b'}' | b']' => depth = depth.saturating_sub(1),
            b'|' if depth == 0 => {
                parts.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    parts.push(&inner[start..]);
    parts
}

/// Renders inline markup: escaping, bold, italic, links.
fn render_inline(text: &str) -> String {
    let escaped = escape_html(text);
    let linked = render_links(&escaped);
    let bolded = replace_pairs(&linked, "'''", "<b>", "</b>");
    replace_pairs(&bolded, "''", "<i>", "</i>")
}

fn escape_html(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            // Template output contains real tags; only escape stray
            // angle brackets in source text outside tag-looking runs is
            // overkill for a benchmark — escape nothing structural here
            // beyond ampersands to keep templates working.
            _ => out.push(c),
        }
    }
    out
}

fn render_links(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(start) = rest.find("[[") {
        out.push_str(&rest[..start]);
        let after = &rest[start + 2..];
        match after.find("]]") {
            Some(end) => {
                let inner = &after[..end];
                let (target, label) = match inner.split_once('|') {
                    Some((t, l)) => (t, l),
                    None => (inner, inner),
                };
                let _ = write!(
                    out,
                    "<a href=\"/wiki/{}\">{label}</a>",
                    target.replace(' ', "_")
                );
                rest = &after[end + 2..];
            }
            None => {
                out.push_str("[[");
                rest = after;
            }
        }
    }
    out.push_str(rest);
    out
}

/// Replaces paired `marker` runs with open/close tags, alternating.
fn replace_pairs(text: &str, marker: &str, open: &str, close: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut opened = false;
    let mut rest = text;
    while let Some(idx) = rest.find(marker) {
        out.push_str(&rest[..idx]);
        out.push_str(if opened { close } else { open });
        opened = !opened;
        rest = &rest[idx + marker.len()..];
    }
    out.push_str(rest);
    if opened {
        out.push_str(close);
    }
    out
}

/// Deterministically generates a benchmark article of roughly
/// `target_len` bytes of wikitext, exercising every supported construct.
pub fn generate_article(page_id: u64, target_len: usize, seed: u64) -> String {
    let mut rng = SplitMix64::new(seed ^ page_id.wrapping_mul(0xA24B_AED4_963E_E407));
    let mut out = String::with_capacity(target_len + 256);
    let _ = writeln!(
        out,
        "{{{{infobox|Article {page_id}|Generated encyclopedia entry}}}}"
    );
    let words = [
        "president",
        "election",
        "university",
        "history",
        "science",
        "battle",
        "treaty",
        "island",
        "dynasty",
        "orchestra",
        "language",
        "protocol",
        "economy",
        "architecture",
        "constitution",
        "algorithm",
    ];
    let mut section = 0u64;
    while out.len() < target_len {
        section += 1;
        let _ = writeln!(out, "\n== Section {section} ==");
        for _ in 0..(rng.next_u64() % 3 + 2) {
            let mut sentence = String::new();
            for w in 0..(rng.next_u64() % 14 + 8) {
                let word = words[rng.gen_index(words.len())];
                match rng.next_u64() % 12 {
                    0 => {
                        let _ = write!(sentence, "'''{word}''' ");
                    }
                    1 => {
                        let _ = write!(sentence, "''{word}'' ");
                    }
                    2 => {
                        let _ = write!(sentence, "[[{word} {w}|{word}]] ");
                    }
                    3 => {
                        let _ = write!(sentence, "{{{{cite|{word}-{w}}}}} ");
                    }
                    _ => {
                        let _ = write!(sentence, "{word} ");
                    }
                }
            }
            let _ = writeln!(out, "{sentence}.");
        }
        if section.is_multiple_of(3) {
            let _ = writeln!(out, "{{{{quote|notable remark {section}|historian}}}}");
            for item in 0..(rng.next_u64() % 4 + 2) {
                let _ = writeln!(out, "* item {item} {{{{flag|region-{item}}}}}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn std_templates() -> TemplateSet {
        TemplateSet::standard()
    }

    #[test]
    fn renders_headings_and_paragraphs() {
        let html = render(
            "== Title ==\nBody text here.\n\nSecond para.",
            &std_templates(),
        );
        assert!(html.contains("<h2>Title</h2>"), "{html}");
        assert!(html.contains("<p>Body text here.</p>"), "{html}");
        assert!(html.contains("<p>Second para.</p>"), "{html}");
    }

    #[test]
    fn renders_h3_and_h4() {
        let html = render("=== Three ===\n==== Four ====", &std_templates());
        assert!(html.contains("<h3>Three</h3>"));
        assert!(html.contains("<h4>Four</h4>"));
    }

    #[test]
    fn renders_inline_formatting() {
        let html = render("'''bold''' and ''italic'' text", &std_templates());
        assert!(html.contains("<b>bold</b>"), "{html}");
        assert!(html.contains("<i>italic</i>"), "{html}");
    }

    #[test]
    fn renders_links() {
        let html = render(
            "See [[Barack Obama]] and [[Some Page|label]].",
            &std_templates(),
        );
        assert!(
            html.contains("<a href=\"/wiki/Barack_Obama\">Barack Obama</a>"),
            "{html}"
        );
        assert!(
            html.contains("<a href=\"/wiki/Some_Page\">label</a>"),
            "{html}"
        );
    }

    #[test]
    fn renders_lists() {
        let html = render("* one\n* two\nafter", &std_templates());
        assert!(
            html.contains("<ul>\n<li>one</li>\n<li>two</li>\n</ul>"),
            "{html}"
        );
        assert!(html.contains("<p>after</p>"));
    }

    #[test]
    fn expands_templates_with_args() {
        let html = render("{{cite|ref-9}}", &std_templates());
        assert!(html.contains("<sup class=\"cite\">[ref-9]</sup>"), "{html}");
    }

    #[test]
    fn expands_nested_template_arguments() {
        let html = render("{{quote|said {{cite|x}}|someone}}", &std_templates());
        assert!(html.contains("<blockquote>"), "{html}");
        assert!(html.contains("<sup class=\"cite\">[x]</sup>"), "{html}");
        assert!(html.contains("<i>someone</i>"), "{html}");
    }

    #[test]
    fn unknown_template_is_marked() {
        let html = render("{{no such template}}", &std_templates());
        assert!(html.contains("missing-template"), "{html}");
    }

    #[test]
    fn unfilled_parameters_render_empty() {
        let html = render("{{infobox|OnlyTitle}}", &std_templates());
        assert!(html.contains("OnlyTitle"));
        assert!(!html.contains("{{{"), "{html}");
    }

    #[test]
    fn unclosed_template_does_not_hang_or_panic() {
        let html = render("text {{cite|unclosed", &std_templates());
        assert!(html.contains("text"));
    }

    #[test]
    fn deep_recursion_is_bounded() {
        // A self-referential template must terminate at the depth limit.
        let mut set = TemplateSet::new();
        set.insert("loop", "x{{loop}}");
        let html = render("{{loop}}", &set);
        assert!(html.len() < 100_000);
        assert!(html.contains('x'));
    }

    #[test]
    fn generated_articles_are_deterministic_and_sized() {
        let a = generate_article(5, 4000, 1);
        let b = generate_article(5, 4000, 1);
        assert_eq!(a, b);
        assert!(a.len() >= 4000);
        assert!(a.len() < 4000 + 2000);
        let c = generate_article(6, 4000, 1);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_articles_render_to_html() {
        let article = generate_article(1, 6000, 7);
        let html = render(&article, &std_templates());
        assert!(html.contains("<h2>"));
        assert!(html.contains("infobox"));
        assert!(html.len() > article.len() / 2);
    }

    #[test]
    fn ampersands_escaped() {
        let html = render("AT&T corp", &std_templates());
        assert!(html.contains("AT&amp;T"), "{html}");
    }
}
