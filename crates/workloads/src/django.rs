//! DjangoBench: the Instagram-style web-serving benchmark.
//!
//! "DjangoBench uses Python, Django, and UWSGI as the backend serving
//! stack. Unlike MediaWiki's multi-threading model, UWSGI uses a
//! multi-process model, spawning a number of worker processes equal to the
//! number of logical CPU cores … DjangoBench uses Apache Cassandra as the
//! backend database and Memcached as the cache. During benchmarking, the
//! load generator visits several endpoints, such as feed, timeline, seen,
//! and inbox." (§3.2)
//!
//! The architectural properties reproduced here:
//!
//! * **Share-nothing worker-per-core concurrency**: one [`WorkerState`]
//!   per logical CPU, each owning its own partition of the wide-row store;
//!   requests are routed by user id and serialize only within one worker,
//!   exactly as UWSGI processes do. (Rust threads stand in for the
//!   processes; the share-nothing state partitioning is what matters for
//!   scaling behaviour.)
//! * **Cassandra-flavoured storage**: partition-key + clustering-key
//!   access with range scans ([`WideRowStore`]).
//! * **Memcached cache** in front of the hot feed path.
//! * The production endpoint mix: `feed`, `timeline`, `seen`, `inbox`.

use crate::store::WideRowStore;
use dcperf_core::{Benchmark, BenchmarkReport, Error, ReportBuilder, RunContext, WorkloadCategory};
use dcperf_kvstore::{Cache, CacheConfig};
use dcperf_loadgen::{ClosedLoop, EndpointMix, Service, ServiceError};
use dcperf_tax::{compress, hash, serialize};
use dcperf_util::{SplitMix64, Zipf};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::time::Duration;

/// Tunable parameters.
#[derive(Debug, Clone)]
pub struct DjangoBenchConfig {
    /// Users per worker (scaled by run scale).
    pub base_users_per_worker: u64,
    /// Timeline entries per user at install time.
    pub columns_per_user: u64,
    /// Zipf skew of user popularity.
    pub zipf_exponent: f64,
    /// Base measurement duration (scaled by run scale).
    pub base_duration: Duration,
    /// Requests each load-generator worker keeps in flight per turn; 1 is
    /// the classic one-request-per-turn mode.
    pub pipeline_depth: usize,
}

impl Default for DjangoBenchConfig {
    fn default() -> Self {
        Self {
            base_users_per_worker: 2_000,
            columns_per_user: 64,
            zipf_exponent: 0.9,
            base_duration: Duration::from_millis(400),
            pipeline_depth: 1,
        }
    }
}

/// One UWSGI-style worker: private store, private session state.
struct WorkerState {
    store: WideRowStore,
    seen_writes: u64,
}

/// The DjangoBench benchmark. See the [module docs](self).
#[derive(Debug, Default)]
pub struct DjangoBench {
    config: DjangoBenchConfig,
}

impl DjangoBench {
    /// Creates the benchmark with an explicit configuration.
    pub fn with_config(config: DjangoBenchConfig) -> Self {
        Self { config }
    }
}

pub(crate) struct DjangoApp {
    workers: Vec<Mutex<WorkerState>>,
    cache: Cache,
    users_per_worker: u64,
    zipf: Zipf,
    seed: u64,
}

impl DjangoApp {
    /// Builds a standalone app instance (workers populated, private
    /// cache); used by the benchmark run and by the chaos scenarios.
    pub(crate) fn build(
        config: &DjangoBenchConfig,
        threads: usize,
        users_per_worker: u64,
        seed: u64,
    ) -> Result<Self, Error> {
        let workers: Vec<Mutex<WorkerState>> = (0..threads)
            .map(|w| {
                let mut store = WideRowStore::new();
                store.populate(
                    users_per_worker,
                    config.columns_per_user,
                    seed ^ (w as u64) << 40,
                );
                Mutex::new(WorkerState {
                    store,
                    seen_writes: 0,
                })
            })
            .collect();
        Ok(Self {
            workers,
            cache: Cache::new(CacheConfig::with_capacity_bytes(64 << 20).with_shards(threads * 2)),
            users_per_worker,
            zipf: Zipf::new(users_per_worker * threads as u64, config.zipf_exponent)
                .map_err(|e| Error::Config(e.to_string()))?,
            seed,
        })
    }

    /// The production endpoint mix (`feed`, `timeline`, `seen`, `inbox`).
    pub(crate) fn endpoint_mix() -> Result<EndpointMix, Error> {
        EndpointMix::new(
            &["feed", "timeline", "seen", "inbox"],
            &[0.45, 0.25, 0.20, 0.10],
        )
        .map_err(|e| Error::Config(e.to_string()))
    }

    /// Cache key of one user's rendered feed page.
    fn feed_key(worker: usize, user: u64) -> Vec<u8> {
        [
            b"feed:".as_slice(),
            &worker.to_le_bytes(),
            &user.to_le_bytes(),
        ]
        .concat()
    }

    /// Serializes and compresses one feed page from its timeline rows;
    /// `None` for unknown users (empty scans).
    fn render_feed_page(rows: &[(&u64, &Vec<u8>)]) -> Option<Vec<u8>> {
        if rows.is_empty() {
            return None;
        }
        let records: Vec<serialize::Record> = rows
            .iter()
            .map(|(ck, value)| {
                vec![
                    serialize::FieldValue::I64(**ck as i64),
                    serialize::FieldValue::Bytes((*value).clone()),
                ]
            })
            .collect();
        let mut buf = Vec::new();
        serialize::encode_batch(&records, &mut buf);
        Some(compress::lz_compress(&buf))
    }

    fn user_for(&self, seq: u64) -> (usize, u64) {
        let mut rng = SplitMix64::new(self.seed ^ seq.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        let global = SplitMix64::mix(self.zipf.sample(&mut rng))
            % (self.users_per_worker * self.workers.len() as u64);
        (
            (global / self.users_per_worker) as usize,
            global % self.users_per_worker,
        )
    }

    /// `feed`: hot path — cached render of the user's first feed page.
    fn feed(&self, worker: usize, user: u64) -> Result<usize, ServiceError> {
        let cache_key = Self::feed_key(worker, user);
        let rendered = self.cache.get_or_load(&cache_key, |_| {
            let state = self.workers[worker].lock();
            Self::render_feed_page(&state.store.scan(user, 0, 25))
        });
        rendered
            .map(|body| body.len())
            .ok_or_else(|| ServiceError::new("feed: unknown user"))
    }

    /// Batched `feed`: one shard-grouped cache read over the whole run of
    /// requests ([`Cache::get_many`]), misses resolved per worker with a
    /// single lock hold and one [`WideRowStore::scan_many`] pass, and the
    /// rendered pages written back through one [`Cache::set_many`]. The
    /// render is deterministic, so a concurrent fill racing this batch
    /// writes an identical page.
    fn feed_many(&self, items: &[(usize, u64)]) -> Vec<Result<usize, ServiceError>> {
        let keys: Vec<Vec<u8>> = items
            .iter()
            .map(|&(worker, user)| Self::feed_key(worker, user))
            .collect();
        let key_refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let mut pages = self.cache.get_many(&key_refs);
        let mut misses_by_worker: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, page) in pages.iter().enumerate() {
            if page.is_none() {
                misses_by_worker.entry(items[i].0).or_default().push(i);
            }
        }
        let mut fills: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for (worker, indices) in misses_by_worker {
            let state = self.workers[worker].lock();
            let requests: Vec<(u64, u64, usize)> =
                indices.iter().map(|&i| (items[i].1, 0, 25)).collect();
            let scans = state.store.scan_many(&requests);
            for (&i, rows) in indices.iter().zip(&scans) {
                if let Some(rendered) = Self::render_feed_page(rows) {
                    fills.push((keys[i].clone(), rendered.clone()));
                    pages[i] = Some(rendered.into());
                }
            }
        }
        if !fills.is_empty() {
            self.cache.set_many(fills);
        }
        pages
            .into_iter()
            .map(|page| {
                page.map(|body| body.len())
                    .ok_or_else(|| ServiceError::new("feed: unknown user"))
            })
            .collect()
    }

    /// `timeline`: uncached range scan deeper into the partition.
    fn timeline(&self, worker: usize, user: u64, offset: u64) -> Result<usize, ServiceError> {
        let state = self.workers[worker].lock();
        let rows = state.store.scan(user, offset % 32, 50);
        if rows.is_empty() {
            // Paging past the end of a timeline is a normal empty page.
            return Ok(2);
        }
        let mut bytes = 0usize;
        let mut digest = 0u64;
        for (ck, value) in rows {
            bytes += value.len();
            digest ^= hash::fnv1a(value).rotate_left((*ck % 63) as u32);
        }
        std::hint::black_box(digest);
        Ok(bytes)
    }

    /// `seen`: the write path — marks stories as seen and invalidates the
    /// cached feed page.
    fn seen(&self, worker: usize, user: u64, seq: u64) -> Result<usize, ServiceError> {
        {
            let mut state = self.workers[worker].lock();
            for i in 0..4u64 {
                let marker = seq.wrapping_mul(31).wrapping_add(i);
                state.store.insert(
                    user,
                    1_000_000 + marker % 512,
                    marker.to_le_bytes().to_vec(),
                );
            }
            state.seen_writes += 4;
        }
        self.cache.delete(&Self::feed_key(worker, user));
        Ok(8)
    }

    /// `inbox`: read plus aggregate (unread counts).
    fn inbox(&self, worker: usize, user: u64) -> Result<usize, ServiceError> {
        let state = self.workers[worker].lock();
        let rows = state.store.scan(user, 0, 40);
        let unread = rows
            .iter()
            .filter(|(ck, v)| (**ck + v.len() as u64).is_multiple_of(3))
            .count();
        Ok(16 + unread)
    }
}

impl Service for DjangoApp {
    fn call(&self, endpoint: usize, seq: u64) -> Result<usize, ServiceError> {
        let (worker, user) = self.user_for(seq);
        match endpoint {
            0 => self.feed(worker, user),
            1 => self.timeline(worker, user, seq),
            2 => self.seen(worker, user, seq),
            _ => self.inbox(worker, user),
        }
    }

    fn call_many(&self, batch: &[(usize, u64)]) -> Vec<Result<usize, ServiceError>> {
        // Runs of consecutive feed requests collapse into one batched
        // cache/store pass; everything else stays scalar and in order, so
        // a `seen` invalidation still lands between the feed runs around
        // it exactly as in the unpipelined schedule.
        let mut results = Vec::with_capacity(batch.len());
        let mut i = 0;
        while i < batch.len() {
            if batch[i].0 == 0 {
                let mut j = i;
                while j < batch.len() && batch[j].0 == 0 {
                    j += 1;
                }
                let items: Vec<(usize, u64)> = batch[i..j]
                    .iter()
                    .map(|&(_, seq)| self.user_for(seq))
                    .collect();
                results.extend(self.feed_many(&items));
                i = j;
            } else {
                let (endpoint, seq) = batch[i];
                results.push(self.call(endpoint, seq));
                i += 1;
            }
        }
        results
    }
}

impl Benchmark for DjangoBench {
    fn name(&self) -> &str {
        "django_bench"
    }

    fn category(&self) -> WorkloadCategory {
        WorkloadCategory::Web
    }

    fn description(&self) -> &str {
        "Instagram-style web serving: share-nothing worker-per-core over a wide-row store"
    }

    fn install(&self, _ctx: &mut RunContext) -> Result<(), Error> {
        Ok(())
    }

    fn run(&self, ctx: &mut RunContext) -> Result<BenchmarkReport, Error> {
        let scale = ctx.config().scale.factor();
        let threads = ctx.config().effective_threads();
        let seed = ctx.seed();
        let users_per_worker = self.config.base_users_per_worker * scale.min(16);

        // One share-nothing worker per logical core, as UWSGI spawns one
        // process per core.
        let mut app = DjangoApp::build(&self.config, threads, users_per_worker, seed)?;
        // The benchmark run records cache traffic onto the run registry.
        app.cache = Cache::with_telemetry(
            CacheConfig::with_capacity_bytes(64 << 20).with_shards(threads * 2),
            ctx.telemetry(),
        );

        // The production endpoint mix.
        let mix = DjangoApp::endpoint_mix()?;

        let duration = self.config.base_duration * scale.min(16) as u32;
        let load = ClosedLoop::new(mix)
            .workers(threads)
            .pipeline_depth(self.config.pipeline_depth)
            .duration(duration)
            .telemetry(ctx.telemetry())
            .run(&app, seed);

        let mut report = ReportBuilder::new(self.name());
        report.param("workers", threads as u64);
        report.param("users_per_worker", users_per_worker);
        report.param("columns_per_user", self.config.columns_per_user);
        report.param("pipeline_depth", self.config.pipeline_depth as u64);
        report.metric("requests_per_second", load.throughput_rps());
        report.metric("total_requests", load.completed);
        report.metric("error_rate", load.error_rate());
        report.metric("cache_hit_rate", app.cache.stats().hit_rate());
        report.latency_ms("request", &load.latency_ns);
        for (name, count) in ["feed", "timeline", "seen", "inbox"]
            .iter()
            .zip(&load.per_endpoint)
        {
            report.metric(&format!("requests_{name}"), *count);
        }
        let writes: u64 = app.workers.iter().map(|w| w.lock().seen_writes).sum();
        report.metric("seen_writes", writes);
        Ok(report.finish(ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcperf_core::RunConfig;

    fn smoke() -> DjangoBenchConfig {
        DjangoBenchConfig {
            base_users_per_worker: 300,
            columns_per_user: 24,
            base_duration: Duration::from_millis(150),
            ..DjangoBenchConfig::default()
        }
    }

    #[test]
    fn smoke_run_serves_all_endpoints() {
        let bench = DjangoBench::with_config(smoke());
        let mut ctx = RunContext::new(RunConfig::smoke_test().with_threads(4), "django_bench");
        let report = bench.run(&mut ctx).expect("django runs");
        let rps = report.metric_f64("requests_per_second").unwrap();
        assert!(rps > 500.0, "rps={rps}");
        for ep in ["feed", "timeline", "seen", "inbox"] {
            assert!(
                report.metric_f64(&format!("requests_{ep}")).unwrap() > 0.0,
                "endpoint {ep} never hit"
            );
        }
        assert!(report.metric_f64("seen_writes").unwrap() > 0.0);
        assert_eq!(report.metric_f64("error_rate"), Some(0.0));
    }

    #[test]
    fn feed_cache_gets_hits() {
        let bench = DjangoBench::with_config(smoke());
        let mut ctx = RunContext::new(RunConfig::smoke_test().with_threads(2), "django_bench");
        let report = bench.run(&mut ctx).unwrap();
        let hit_rate = report.metric_f64("cache_hit_rate").unwrap();
        // Zipf user popularity means hot feeds are re-served from cache,
        // though `seen` writes keep invalidating them.
        assert!(hit_rate > 0.2, "hit rate {hit_rate}");
    }

    #[test]
    fn batched_feed_matches_scalar_feed() {
        let app = DjangoApp::build(&smoke(), 2, 100, 11).expect("app builds");
        // A burst mixing feeds (runs), a seen invalidation, and other
        // endpoints; the batched schedule must return element-for-element
        // what the scalar schedule returns on a fresh identical app.
        let batch: Vec<(usize, u64)> = vec![
            (0, 1),
            (0, 2),
            (0, 1),
            (2, 3),
            (0, 1),
            (3, 4),
            (0, 5),
            (0, 6),
        ];
        let batched = app.call_many(&batch);
        let scalar_app = DjangoApp::build(&smoke(), 2, 100, 11).expect("app builds");
        let scalar: Vec<_> = batch
            .iter()
            .map(|&(endpoint, seq)| scalar_app.call(endpoint, seq))
            .collect();
        assert_eq!(batched, scalar);
        assert!(app.cache.stats().hits() > 0, "repeat feeds must hit");
    }

    #[test]
    fn requests_route_by_user_to_fixed_workers() {
        let app = DjangoApp {
            workers: (0..4)
                .map(|_| {
                    Mutex::new(WorkerState {
                        store: WideRowStore::new(),
                        seen_writes: 0,
                    })
                })
                .collect(),
            cache: Cache::new(CacheConfig::with_capacity_bytes(1 << 20)),
            users_per_worker: 100,
            zipf: Zipf::new(400, 0.9).unwrap(),
            seed: 3,
        };
        for seq in 0..200 {
            let (w1, u1) = app.user_for(seq);
            let (w2, u2) = app.user_for(seq);
            assert_eq!((w1, u1), (w2, u2), "routing must be deterministic");
            assert!(w1 < 4);
            assert!(u1 < 100);
        }
    }
}
