//! A runnable demonstration of the §5.3 kernel scalability bug.
//!
//! The paper traced TaoBench's poor 384-core scaling to "lock contention
//! on a counter used for tracking system load" (`tg->load_avg`),
//! "mitigated in kernel 6.9 by a patch that reduced the update frequency
//! of the counter". This module reproduces the mechanism in user space:
//! worker threads do fixed-size work quanta and, like the scheduler,
//! account each quantum on a *global* counter. In the `V6_4` style every
//! quantum updates the shared counter; in the `V6_9` style updates are
//! batched locally and flushed at a rate limit — the exact structure of
//! the upstream patch.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Which accounting policy to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterPolicy {
    /// Kernel-6.4 style: the shared load counter is updated on every
    /// scheduling quantum.
    EveryUpdate,
    /// Kernel-6.9 style: updates are accumulated locally and flushed to
    /// the shared counter once per `flush_every` quanta (the ratelimit
    /// patch).
    Ratelimited {
        /// Quanta between flushes.
        flush_every: u64,
    },
}

/// The result of one contention run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentionResult {
    /// Worker threads used.
    pub threads: usize,
    /// Work quanta completed across all workers.
    pub quanta: u64,
    /// Quanta per second.
    pub throughput: f64,
    /// Final value of the shared load counter (must equal `quanta`).
    pub counter_value: u64,
}

/// Runs `threads` workers for `duration`, each executing small work
/// quanta and accounting them per `policy`.
pub fn run_contention(
    threads: usize,
    duration: Duration,
    policy: CounterPolicy,
) -> ContentionResult {
    // The shared "tg->load_avg": a mutex-protected counter, like the
    // cacheline the scheduler bounces.
    let load_avg = Mutex::new(0u64);
    let quanta = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads.max(1) {
            let load_avg = &load_avg;
            let quanta = &quanta;
            scope.spawn(move || {
                let deadline = started + duration;
                let mut local = 0u64;
                let mut done = 0u64;
                let mut x = t as u64 + 1;
                while Instant::now() < deadline {
                    // One scheduling quantum of "application work".
                    for _ in 0..64 {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    }
                    std::hint::black_box(x);
                    done += 1;
                    match policy {
                        CounterPolicy::EveryUpdate => {
                            *load_avg.lock() += 1;
                        }
                        CounterPolicy::Ratelimited { flush_every } => {
                            local += 1;
                            if local >= flush_every {
                                *load_avg.lock() += local;
                                local = 0;
                            }
                        }
                    }
                }
                if local > 0 {
                    *load_avg.lock() += local;
                }
                quanta.fetch_add(done, Ordering::Relaxed);
            });
        }
    });
    let secs = started.elapsed().as_secs_f64();
    let total = quanta.load(Ordering::Relaxed);
    let counter_value = *load_avg.lock();
    ContentionResult {
        threads,
        quanta: total,
        throughput: total as f64 / secs,
        counter_value,
    }
}

/// Convenience: the Figure 16-style 2×2 comparison on this host
/// (`threads_small` vs `threads_large` × both policies), normalized to
/// the (small, EveryUpdate) cell as 100.
pub fn figure16_live(
    threads_small: usize,
    threads_large: usize,
    per_cell: Duration,
) -> Vec<(usize, &'static str, f64)> {
    let cells = [
        (
            threads_small,
            CounterPolicy::EveryUpdate,
            "kernel-6.4-style",
        ),
        (
            threads_large,
            CounterPolicy::EveryUpdate,
            "kernel-6.4-style",
        ),
        (
            threads_small,
            CounterPolicy::Ratelimited { flush_every: 64 },
            "kernel-6.9-style",
        ),
        (
            threads_large,
            CounterPolicy::Ratelimited { flush_every: 64 },
            "kernel-6.9-style",
        ),
    ];
    let base = run_contention(threads_small, per_cell, CounterPolicy::EveryUpdate).throughput;
    cells
        .iter()
        .map(|&(threads, policy, label)| {
            let result = run_contention(threads, per_cell, policy);
            (threads, label, result.throughput / base.max(1.0) * 100.0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_never_lost() {
        for policy in [
            CounterPolicy::EveryUpdate,
            CounterPolicy::Ratelimited { flush_every: 32 },
        ] {
            let result = run_contention(4, Duration::from_millis(80), policy);
            assert_eq!(
                result.counter_value, result.quanta,
                "accounting must be exact under {policy:?}"
            );
            assert!(result.throughput > 0.0);
        }
    }

    #[test]
    fn ratelimiting_helps_at_high_thread_counts() {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let threads = (cores * 2).max(8);
        let dur = Duration::from_millis(150);
        let contended = run_contention(threads, dur, CounterPolicy::EveryUpdate);
        let ratelimited =
            run_contention(threads, dur, CounterPolicy::Ratelimited { flush_every: 64 });
        if cores >= 4 {
            // The lock line ping-pongs across cores: batching must win.
            assert!(
                ratelimited.throughput > contended.throughput * 1.1,
                "ratelimited {:.0}/s should beat contended {:.0}/s",
                ratelimited.throughput,
                contended.throughput
            );
        } else {
            // Time-sliced on 1-2 cores there is no coherence traffic to
            // save; just require both variants to make progress.
            assert!(contended.throughput > 0.0 && ratelimited.throughput > 0.0);
        }
    }

    #[test]
    fn single_thread_sees_no_benefit() {
        let dur = Duration::from_millis(80);
        let every = run_contention(1, dur, CounterPolicy::EveryUpdate);
        let rate = run_contention(1, dur, CounterPolicy::Ratelimited { flush_every: 64 });
        let ratio = rate.throughput / every.throughput;
        assert!(
            (0.6..=1.8).contains(&ratio),
            "uncontended ratio should be near 1, got {ratio}"
        );
    }
}
