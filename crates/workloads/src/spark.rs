//! SparkBench: the data-warehouse query benchmark.
//!
//! "SparkBench models query execution in a data warehouse. It uses a
//! synthetic, representative dataset … The entire benchmark execution is
//! split into three stages: the first and second stages mainly load data
//! from the tables and are I/O-intensive, whereas the third stage is
//! computation-intensive. Thus, the total query execution time reflects
//! the end-to-end data warehouse performance, while the execution time of
//! the last stage can be used to evaluate CPU performance." (§3.2)
//!
//! This module is a from-scratch mini warehouse engine:
//!
//! * A deterministic dataset generator preserving the paper's fidelity
//!   features: fixed schema, realistic types, Zipf key cardinality, and a
//!   bounded distinct-value dictionary.
//! * Compressed, serialized part files on disk (the "remote NVMe" stand-in
//!   is the local filesystem — the I/O code path is identical).
//! * Stage 1: parallel scan + filter of the fact table, hash-partitioned
//!   shuffle spill. Stage 2: the same for the dimension table. Stage 3:
//!   per-partition hash join + group-by aggregation (compute-bound).

use dcperf_core::{Benchmark, BenchmarkReport, Error, ReportBuilder, RunContext, WorkloadCategory};
use dcperf_tax::{
    compress,
    serialize::{self, FieldValue, Record},
};
use dcperf_util::{Rng, SplitMix64, Xoshiro256pp, Zipf};
use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Aggregation state keyed by `(segment, region)`: running revenue sum
/// and row count for that group.
type GroupAgg = HashMap<(i64, String), (f64, u64)>;

/// Tunable parameters.
#[derive(Debug, Clone)]
pub struct SparkBenchConfig {
    /// Fact-table rows (scaled by run scale).
    pub base_fact_rows: u64,
    /// Dimension-table rows (scaled by run scale).
    pub base_dim_rows: u64,
    /// Rows per part file.
    pub rows_per_part: u64,
    /// Shuffle partitions.
    pub partitions: usize,
    /// Filter selectivity knob: rows with `amount > threshold` survive.
    pub amount_threshold: f64,
}

impl Default for SparkBenchConfig {
    fn default() -> Self {
        Self {
            base_fact_rows: 120_000,
            base_dim_rows: 8_000,
            rows_per_part: 20_000,
            partitions: 16,
            amount_threshold: 25.0,
        }
    }
}

/// The SparkBench benchmark. See the [module docs](self).
#[derive(Debug, Default)]
pub struct SparkBench {
    config: SparkBenchConfig,
}

impl SparkBench {
    /// Creates the benchmark with an explicit configuration.
    pub fn with_config(config: SparkBenchConfig) -> Self {
        Self { config }
    }
}

const COUNTRIES: [&str; 12] = [
    "US", "IN", "BR", "ID", "MX", "PH", "VN", "TH", "GB", "DE", "FR", "JP",
];
const EVENT_TYPES: [&str; 6] = ["view", "click", "like", "share", "comment", "purchase"];

/// Generates one fact row: (user_id, event_type, ts, amount, country,
/// payload) — schema, types, and cardinalities as §2.2 requires.
fn fact_row(rng: &mut Xoshiro256pp, users: &Zipf, user_count: u64) -> Record {
    let user = SplitMix64::mix(users.sample(rng)) % user_count;
    let event = EVENT_TYPES[rng.gen_index(EVENT_TYPES.len())];
    let country = COUNTRIES[rng.gen_index(COUNTRIES.len())];
    let payload_len = (rng.next_u64() % 48 + 16) as usize;
    let mut payload = vec![0u8; payload_len];
    rng.fill_bytes(&mut payload);
    vec![
        FieldValue::I64(user as i64),
        FieldValue::Str(event.to_owned()),
        FieldValue::I64(1_700_000_000 + (rng.next_u64() % 86_400) as i64),
        FieldValue::F64((rng.next_f64() * 100.0 * rng.next_f64() * 2.0).min(5_000.0)),
        FieldValue::Str(country.to_owned()),
        FieldValue::Bytes(payload),
    ]
}

/// Generates one dimension row: (user_id, segment, signup_year).
fn dim_row(user: u64, seed: u64) -> Record {
    let mut rng = SplitMix64::new(seed ^ user.wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
    vec![
        FieldValue::I64(user as i64),
        FieldValue::I64((rng.next_u64() % 8) as i64), // segment, low cardinality
        FieldValue::I64(2008 + (rng.next_u64() % 16) as i64),
    ]
}

fn write_part(path: &Path, records: &[Record]) -> std::io::Result<usize> {
    let mut buf = Vec::new();
    serialize::encode_batch(records, &mut buf);
    let packed = compress::lz_compress(&buf);
    let mut file = std::fs::File::create(path)?;
    file.write_all(&packed)?;
    Ok(packed.len())
}

fn read_part(path: &Path) -> Result<Vec<Record>, Error> {
    let packed = std::fs::read(path)?;
    let buf = compress::lz_decompress(&packed).map_err(|e| Error::Benchmark {
        name: "spark_bench".into(),
        message: format!("corrupt part file {}: {e}", path.display()),
    })?;
    let (records, _) = serialize::decode_batch(&buf).map_err(|e| Error::Benchmark {
        name: "spark_bench".into(),
        message: format!("undecodable part file {}: {e}", path.display()),
    })?;
    Ok(records)
}

fn record_i64(record: &Record, idx: usize) -> Option<i64> {
    match record.get(idx)? {
        FieldValue::I64(v) => Some(*v),
        _ => None,
    }
}

fn record_f64(record: &Record, idx: usize) -> Option<f64> {
    match record.get(idx)? {
        FieldValue::F64(v) => Some(*v),
        _ => None,
    }
}

fn record_str(record: &Record, idx: usize) -> Option<&str> {
    match record.get(idx)? {
        FieldValue::Str(s) => Some(s),
        _ => None,
    }
}

/// Runs a stage's tasks (one per input item) on a scoped worker pool of
/// `threads`, collecting results.
fn run_tasks<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let queue = crossbeam::queue::SegQueue::new();
    for (i, item) in items.into_iter().enumerate() {
        queue.push((i, item));
    }
    let results = parking_lot::Mutex::new(Vec::<(usize, R)>::new());
    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|| {
                while let Some((i, item)) = queue.pop() {
                    let r = f(item);
                    results.lock().push((i, r));
                }
            });
        }
    });
    let mut out = results.into_inner();
    out.sort_by_key(|(i, _)| *i);
    out.into_iter().map(|(_, r)| r).collect()
}

impl Benchmark for SparkBench {
    fn name(&self) -> &str {
        "spark_bench"
    }

    fn category(&self) -> WorkloadCategory {
        WorkloadCategory::BigData
    }

    fn description(&self) -> &str {
        "three-stage warehouse query: scan/shuffle stages then a compute-bound join+aggregate"
    }

    fn score_metric(&self) -> &str {
        "rows_per_second"
    }

    fn run(&self, ctx: &mut RunContext) -> Result<BenchmarkReport, Error> {
        let scale = ctx.config().scale.factor();
        let threads = ctx.config().effective_threads();
        let seed = ctx.seed();
        let fact_rows = self.config.base_fact_rows * scale;
        let dim_rows = self.config.base_dim_rows * scale;
        let partitions = self.config.partitions;

        let dir =
            std::env::temp_dir().join(format!("dcperf-spark-{}-{seed:x}", std::process::id()));
        std::fs::create_dir_all(&dir)?;
        // Ensure cleanup even on early error.
        let result = self.run_in(ctx, &dir, fact_rows, dim_rows, partitions, threads, seed);
        let _ = std::fs::remove_dir_all(&dir);
        result
    }
}

impl SparkBench {
    #[allow(clippy::too_many_arguments)]
    fn run_in(
        &self,
        ctx: &mut RunContext,
        dir: &Path,
        fact_rows: u64,
        dim_rows: u64,
        partitions: usize,
        threads: usize,
        seed: u64,
    ) -> Result<BenchmarkReport, Error> {
        let mut report = ReportBuilder::new(self.name());
        report.param("fact_rows", fact_rows);
        report.param("dim_rows", dim_rows);
        report.param("partitions", partitions as u64);
        report.param("threads", threads as u64);

        // ------ Table build (like loading the Spark table) -------------
        let build_started = Instant::now();
        let users = Zipf::new(dim_rows.max(1), 0.8).map_err(|e| Error::Config(e.to_string()))?;
        let n_fact_parts = fact_rows.div_ceil(self.config.rows_per_part).max(1);
        let fact_parts: Vec<PathBuf> = (0..n_fact_parts)
            .map(|p| dir.join(format!("fact-{p}.part")))
            .collect();
        let rows_per_part = self.config.rows_per_part;
        let bytes_written: usize = run_tasks(
            fact_parts.iter().cloned().enumerate().collect(),
            threads,
            |(p, path)| {
                let mut rng = Xoshiro256pp::seed_from_u64(seed ^ (p as u64) << 32);
                let count = rows_per_part.min(fact_rows - (p as u64) * rows_per_part);
                let records: Vec<Record> = (0..count)
                    .map(|_| fact_row(&mut rng, &users, dim_rows.max(1)))
                    .collect();
                write_part(&path, &records).unwrap_or(0)
            },
        )
        .into_iter()
        .sum();
        let dim_part = dir.join("dim-0.part");
        let dim_records: Vec<Record> = (0..dim_rows).map(|u| dim_row(u, seed)).collect();
        let dim_bytes = write_part(&dim_part, &dim_records)?;
        let build_secs = build_started.elapsed().as_secs_f64();

        let shuffle_dir = dir.join("shuffle");
        std::fs::create_dir_all(&shuffle_dir)?;

        // ------ Stage 1: scan + filter fact, shuffle by user ----------
        let stage1_started = Instant::now();
        let threshold = self.config.amount_threshold;
        let stage1_results = run_tasks(
            fact_parts.iter().cloned().enumerate().collect(),
            threads,
            |(p, path)| -> Result<(u64, u64), Error> {
                let records = read_part(&path)?;
                let scanned = records.len() as u64;
                let mut buckets: Vec<Vec<Record>> = vec![Vec::new(); partitions];
                for record in records {
                    let Some(user) = record_i64(&record, 0) else {
                        continue;
                    };
                    let Some(amount) = record_f64(&record, 3) else {
                        continue;
                    };
                    if amount > threshold {
                        buckets[(user as u64 % partitions as u64) as usize].push(record);
                    }
                }
                let mut kept = 0u64;
                for (b, bucket) in buckets.iter().enumerate() {
                    if bucket.is_empty() {
                        continue;
                    }
                    kept += bucket.len() as u64;
                    let path = dir.join(format!("shuffle/fact-{b}-{p}.shf"));
                    write_part(&path, bucket)?;
                }
                Ok((scanned, kept))
            },
        );
        let mut scanned_rows = 0u64;
        let mut surviving_rows = 0u64;
        for r in stage1_results {
            let (scanned, kept) = r?;
            scanned_rows += scanned;
            surviving_rows += kept;
        }
        let stage1_secs = stage1_started.elapsed().as_secs_f64();

        // ------ Stage 2: scan dimension, shuffle by user ---------------
        let stage2_started = Instant::now();
        {
            let records = read_part(&dim_part)?;
            let mut buckets: Vec<Vec<Record>> = vec![Vec::new(); partitions];
            for record in records {
                if let Some(user) = record_i64(&record, 0) {
                    buckets[(user as u64 % partitions as u64) as usize].push(record);
                }
            }
            let tasks: Vec<(usize, Vec<Record>)> = buckets.into_iter().enumerate().collect();
            for r in run_tasks(tasks, threads, |(b, bucket)| -> Result<(), Error> {
                if !bucket.is_empty() {
                    write_part(&dir.join(format!("shuffle/dim-{b}.shf")), &bucket)?;
                }
                Ok(())
            }) {
                r?;
            }
        }
        let stage2_secs = stage2_started.elapsed().as_secs_f64();

        // ------ Stage 3: per-partition hash join + aggregate -----------
        let stage3_started = Instant::now();
        let partial_results = run_tasks(
            (0..partitions).collect::<Vec<_>>(),
            threads,
            |b| -> Result<GroupAgg, Error> {
                // Build side: dimension rows for this partition.
                let dim_path = dir.join(format!("shuffle/dim-{b}.shf"));
                let mut segments: HashMap<i64, i64> = HashMap::new();
                if dim_path.exists() {
                    for record in read_part(&dim_path)? {
                        if let (Some(user), Some(segment)) =
                            (record_i64(&record, 0), record_i64(&record, 1))
                        {
                            segments.insert(user, segment);
                        }
                    }
                }
                // Probe side: every fact shuffle file for this partition.
                let mut agg: GroupAgg = HashMap::new();
                for entry in std::fs::read_dir(dir.join("shuffle"))? {
                    let entry = entry?;
                    let name = entry.file_name();
                    let name = name.to_string_lossy();
                    if !name.starts_with(&format!("fact-{b}-")) {
                        continue;
                    }
                    for record in read_part(&entry.path())? {
                        let (Some(user), Some(amount), Some(country)) = (
                            record_i64(&record, 0),
                            record_f64(&record, 3),
                            record_str(&record, 4),
                        ) else {
                            continue;
                        };
                        let Some(&segment) = segments.get(&user) else {
                            continue;
                        };
                        let slot = agg.entry((segment, country.to_owned())).or_insert((0.0, 0));
                        slot.0 += amount;
                        slot.1 += 1;
                    }
                }
                Ok(agg)
            },
        );
        // Global merge + order by revenue.
        let mut merged: GroupAgg = HashMap::new();
        for partial in partial_results {
            for (key, (sum, count)) in partial? {
                let slot = merged.entry(key).or_insert((0.0, 0));
                slot.0 += sum;
                slot.1 += count;
            }
        }
        let mut groups: Vec<((i64, String), (f64, u64))> = merged.into_iter().collect();
        groups.sort_by(|a, b| {
            b.1 .0
                .partial_cmp(&a.1 .0)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let stage3_secs = stage3_started.elapsed().as_secs_f64();

        let joined_rows: u64 = groups.iter().map(|(_, (_, c))| c).sum();
        let total_secs = stage1_secs + stage2_secs + stage3_secs;

        report.metric("table_build_seconds", build_secs);
        report.metric("stage1_seconds", stage1_secs);
        report.metric("stage2_seconds", stage2_secs);
        report.metric("stage3_seconds", stage3_secs);
        report.metric("total_query_seconds", total_secs);
        report.metric("scanned_rows", scanned_rows);
        report.metric("surviving_rows", surviving_rows);
        report.metric("joined_rows", joined_rows);
        report.metric("result_groups", groups.len() as u64);
        report.metric("dataset_mb", (bytes_written + dim_bytes) as f64 / 1e6);
        report.metric(
            "rows_per_second",
            scanned_rows as f64 / total_secs.max(1e-9),
        );
        if let Some(((segment, country), (revenue, count))) = groups.first() {
            report.metric("top_group", format!("segment={segment} country={country}"));
            report.metric("top_group_revenue", *revenue);
            report.metric("top_group_rows", *count);
        }
        Ok(report.finish(ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcperf_core::RunConfig;

    fn smoke() -> SparkBenchConfig {
        SparkBenchConfig {
            base_fact_rows: 12_000,
            base_dim_rows: 800,
            rows_per_part: 4_000,
            partitions: 8,
            ..SparkBenchConfig::default()
        }
    }

    #[test]
    fn smoke_run_completes_all_stages() {
        let bench = SparkBench::with_config(smoke());
        let mut ctx = RunContext::new(RunConfig::smoke_test().with_threads(4), "spark_bench");
        let report = bench.run(&mut ctx).expect("spark runs");
        assert_eq!(report.metric_f64("scanned_rows"), Some(12_000.0));
        let surviving = report.metric_f64("surviving_rows").unwrap();
        assert!(
            surviving > 0.0 && surviving < 12_000.0,
            "filter must be selective"
        );
        assert!(report.metric_f64("joined_rows").unwrap() > 0.0);
        let groups = report.metric_f64("result_groups").unwrap();
        // Group-by (segment × country): bounded by 8 × 12 = 96.
        assert!(groups > 10.0 && groups <= 96.0, "groups={groups}");
        assert!(report.metric_f64("rows_per_second").unwrap() > 0.0);
        for stage in ["stage1_seconds", "stage2_seconds", "stage3_seconds"] {
            assert!(report.metric_f64(stage).unwrap() > 0.0, "{stage}");
        }
    }

    #[test]
    fn results_are_deterministic_across_runs() {
        let bench = SparkBench::with_config(smoke());
        let run = || {
            let mut ctx = RunContext::new(RunConfig::smoke_test().with_threads(4), "spark_bench");
            bench.run(&mut ctx).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(
            a.metric_f64("surviving_rows"),
            b.metric_f64("surviving_rows")
        );
        assert_eq!(a.metric_f64("joined_rows"), b.metric_f64("joined_rows"));
        assert_eq!(
            a.metrics.get("top_group"),
            b.metrics.get("top_group"),
            "aggregation result must be deterministic"
        );
    }

    #[test]
    fn temp_files_are_cleaned_up() {
        let bench = SparkBench::with_config(smoke());
        let mut ctx = RunContext::new(RunConfig::smoke_test().with_threads(2), "spark_bench");
        let _ = bench.run(&mut ctx).unwrap();
        let leftovers = std::fs::read_dir(std::env::temp_dir())
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| {
                e.file_name()
                    .to_string_lossy()
                    .starts_with(&format!("dcperf-spark-{}", std::process::id()))
            })
            .count();
        assert_eq!(leftovers, 0, "spark temp dirs must be removed");
    }

    #[test]
    fn dataset_preserves_schema_and_cardinality() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let users = Zipf::new(100, 0.8).unwrap();
        let mut countries = std::collections::HashSet::new();
        for _ in 0..1000 {
            let row = fact_row(&mut rng, &users, 100);
            assert_eq!(row.len(), 6);
            assert!(record_i64(&row, 0).unwrap() < 100);
            countries.insert(record_str(&row, 4).unwrap().to_owned());
            let amount = record_f64(&row, 3).unwrap();
            assert!((0.0..=5_000.0).contains(&amount));
        }
        assert_eq!(countries.len(), 12, "country cardinality preserved");
    }
}
