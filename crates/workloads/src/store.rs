//! Storage substrates for the web benchmarks: a Cassandra-flavoured
//! wide-row store (DjangoBench) and a MySQL-flavoured page table
//! (MediaWiki).
//!
//! Both are deliberately simple — ordered in-memory structures with
//! deterministic synthetic content — but exercise the same access shapes
//! as their production counterparts: partition-key lookup plus clustered
//! range scans for the wide-row store, and primary-key point reads for the
//! page table.

use dcperf_util::{Rng, SplitMix64};
use std::collections::BTreeMap;

/// A row in a wide-row partition: clustering key → column payload.
pub type WideRow = BTreeMap<u64, Vec<u8>>;

/// A Cassandra-style wide-row store: `partition key → (clustering key →
/// value)`, supporting point reads, inserts, and range scans.
///
/// # Examples
///
/// ```
/// use dcperf_workloads::store::WideRowStore;
///
/// let mut store = WideRowStore::new();
/// store.insert(7, 100, vec![1, 2, 3]);
/// store.insert(7, 101, vec![4]);
/// assert_eq!(store.get(7, 100), Some(&[1u8, 2, 3][..]));
/// assert_eq!(store.scan(7, 100, 10).len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct WideRowStore {
    partitions: BTreeMap<u64, WideRow>,
    writes: u64,
}

impl WideRowStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) one column value.
    pub fn insert(&mut self, partition: u64, clustering: u64, value: Vec<u8>) {
        self.partitions
            .entry(partition)
            .or_default()
            .insert(clustering, value);
        self.writes += 1;
    }

    /// Point read.
    pub fn get(&self, partition: u64, clustering: u64) -> Option<&[u8]> {
        self.partitions
            .get(&partition)
            .and_then(|row| row.get(&clustering))
            .map(Vec::as_slice)
    }

    /// Range scan: up to `limit` columns starting at `from` (inclusive),
    /// in clustering order — the timeline read pattern.
    pub fn scan(&self, partition: u64, from: u64, limit: usize) -> Vec<(&u64, &Vec<u8>)> {
        match self.partitions.get(&partition) {
            Some(row) => row.range(from..).take(limit).collect(),
            None => Vec::new(),
        }
    }

    /// Batched range scan: one [`WideRowStore::scan`] per requested
    /// partition, in input order — the shape a pipelined burst of feed
    /// requests presents after being grouped by the cache batch pass.
    pub fn scan_many(&self, requests: &[(u64, u64, usize)]) -> Vec<Vec<(&u64, &Vec<u8>)>> {
        requests
            .iter()
            .map(|&(partition, from, limit)| self.scan(partition, from, limit))
            .collect()
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Total writes performed.
    pub fn write_count(&self) -> u64 {
        self.writes
    }

    /// Populates `users` partitions with `columns` deterministic entries
    /// each (used at benchmark install time).
    pub fn populate(&mut self, users: u64, columns: u64, seed: u64) {
        for user in 0..users {
            let row = self.partitions.entry(user).or_default();
            let mut rng = SplitMix64::new(seed ^ user.wrapping_mul(0x9E37_79B9));
            for col in 0..columns {
                let len = (rng.next_u64() % 200 + 40) as usize;
                let mut value = vec![0u8; len];
                rng.fill_bytes(&mut value);
                row.insert(col, value);
            }
        }
    }
}

/// A MediaWiki page record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageRecord {
    /// Page id (primary key).
    pub id: u64,
    /// Title.
    pub title: String,
    /// Wiki-markup source text.
    pub source: String,
    /// Revision counter.
    pub revision: u64,
}

/// A MySQL-flavoured page table with primary-key access and revision
/// bumps, backing the MediaWiki benchmark.
#[derive(Debug, Default)]
pub struct PageStore {
    pages: BTreeMap<u64, PageRecord>,
}

impl PageStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a page.
    pub fn insert(&mut self, page: PageRecord) {
        self.pages.insert(page.id, page);
    }

    /// Primary-key read.
    pub fn get(&self, id: u64) -> Option<&PageRecord> {
        self.pages.get(&id)
    }

    /// Batched primary-key read, in input order — the multi-page probe a
    /// pipelined burst of views resolves in one store pass.
    pub fn get_many(&self, ids: &[u64]) -> Vec<Option<&PageRecord>> {
        ids.iter().map(|&id| self.get(id)).collect()
    }

    /// Applies an edit: appends to the source and bumps the revision.
    /// Returns the new revision, or `None` for unknown pages.
    pub fn edit(&mut self, id: u64, appended: &str) -> Option<u64> {
        let page = self.pages.get_mut(&id)?;
        page.source.push_str(appended);
        page.revision += 1;
        Some(page.revision)
    }

    /// Number of pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_row_point_and_range() {
        let mut s = WideRowStore::new();
        for c in 0..10u64 {
            s.insert(1, c, vec![c as u8]);
        }
        assert_eq!(s.get(1, 5), Some(&[5u8][..]));
        assert!(s.get(2, 0).is_none());
        let scan = s.scan(1, 4, 3);
        assert_eq!(scan.len(), 3);
        assert_eq!(*scan[0].0, 4);
        assert_eq!(*scan[2].0, 6);
        assert!(s.scan(9, 0, 5).is_empty());
    }

    #[test]
    fn wide_row_scan_many_matches_scalar_scans() {
        let mut s = WideRowStore::new();
        for p in 0..4u64 {
            for c in 0..10u64 {
                s.insert(p, c, vec![(p * 10 + c) as u8]);
            }
        }
        let requests = [(0u64, 2u64, 3usize), (3, 0, 5), (9, 0, 4), (1, 8, 10)];
        let batched = s.scan_many(&requests);
        assert_eq!(batched.len(), requests.len());
        for (i, &(p, from, limit)) in requests.iter().enumerate() {
            assert_eq!(batched[i], s.scan(p, from, limit), "request {i}");
        }
    }

    #[test]
    fn page_store_get_many_matches_scalar_gets() {
        let mut s = PageStore::new();
        for id in 1..=3u64 {
            s.insert(PageRecord {
                id,
                title: format!("Page {id}"),
                source: "text".into(),
                revision: 1,
            });
        }
        let got = s.get_many(&[2, 9, 1]);
        assert_eq!(got[0].map(|p| p.id), Some(2));
        assert!(got[1].is_none());
        assert_eq!(got[2].map(|p| p.id), Some(1));
    }

    #[test]
    fn wide_row_populate_is_deterministic() {
        let mut a = WideRowStore::new();
        let mut b = WideRowStore::new();
        a.populate(5, 8, 42);
        b.populate(5, 8, 42);
        assert_eq!(a.partition_count(), 5);
        for user in 0..5 {
            for col in 0..8 {
                assert_eq!(a.get(user, col), b.get(user, col));
            }
        }
    }

    #[test]
    fn wide_row_replace_keeps_one_value() {
        let mut s = WideRowStore::new();
        s.insert(1, 1, vec![1]);
        s.insert(1, 1, vec![2]);
        assert_eq!(s.get(1, 1), Some(&[2u8][..]));
        assert_eq!(s.write_count(), 2);
    }

    #[test]
    fn page_store_edit_bumps_revision() {
        let mut s = PageStore::new();
        s.insert(PageRecord {
            id: 1,
            title: "Barack Obama".into(),
            source: "== Early life ==".into(),
            revision: 1,
        });
        assert_eq!(s.edit(1, "\nmore text"), Some(2));
        assert!(s.get(1).unwrap().source.contains("more text"));
        assert_eq!(s.edit(99, "x"), None);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }
}
