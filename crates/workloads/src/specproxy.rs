//! SPEC-style proxy kernels: runnable stand-ins for the SPEC CPU rate
//! benchmarks the paper uses as its comparison baseline.
//!
//! The evaluation's point about SPEC (Figures 4–9) is *behavioural*:
//! single-process, CPU-bound kernels with tiny instruction footprints,
//! high IPC variance, no kernel time, and no RPC/serving structure. These
//! four proxies reproduce those traits so the contrast with the
//! datacenter benchmarks can be demonstrated live:
//!
//! * [`mcf_like`] — pointer-heavy shortest-path relaxation over a large
//!   array graph (memory-latency bound, like 505.mcf).
//! * [`xz_like`] — repeated compress/decompress of mixed-entropy data
//!   (like 557.xz).
//! * [`deepsjeng_like`] — alpha-beta minimax over a synthetic game tree
//!   (branchy integer code, like 531.deepsjeng).
//! * [`exchange2_like`] — recursive exhaustive board filling with a tiny
//!   working set (like 548.exchange2, the highest-retiring SPEC member).
//!
//! Each kernel is deterministic and returns a checksum so results can be
//! verified and the work cannot be optimized away.

use dcperf_tax::compress;
use dcperf_util::{Rng, SplitMix64};

/// Bellman-Ford-style relaxation over a pseudo-random sparse graph of
/// `nodes` nodes (each with 4 out-edges), `rounds` times. Returns the sum
/// of final distances (checksum).
pub fn mcf_like(nodes: usize, rounds: usize, seed: u64) -> u64 {
    let nodes = nodes.max(2);
    let mut rng = SplitMix64::new(seed);
    // Edge lists: 4 random targets + weights per node.
    let mut edges = Vec::with_capacity(nodes * 4);
    for _ in 0..nodes * 4 {
        edges.push((
            (rng.next_u64() % nodes as u64) as u32,
            (rng.next_u64() % 100 + 1) as u32,
        ));
    }
    let mut dist = vec![u32::MAX / 2; nodes];
    dist[0] = 0;
    for _ in 0..rounds {
        for u in 0..nodes {
            let du = dist[u];
            for e in 0..4 {
                let (v, w) = edges[u * 4 + e];
                let candidate = du.saturating_add(w);
                if candidate < dist[v as usize] {
                    dist[v as usize] = candidate; // random-access store
                }
            }
        }
    }
    dist.iter().map(|&d| d as u64).sum()
}

/// Compress/decompress `rounds` buffers of mixed-entropy content.
/// Returns total compressed bytes (checksum).
pub fn xz_like(buffer_len: usize, rounds: usize, seed: u64) -> u64 {
    let mut rng = SplitMix64::new(seed);
    let mut total = 0u64;
    for round in 0..rounds {
        let mut data = Vec::with_capacity(buffer_len);
        while data.len() < buffer_len {
            if rng.gen_bool(0.5) {
                // Compressible run.
                let byte = (rng.next_u64() % 32 + 64) as u8;
                let run = (rng.next_u64() % 32 + 8) as usize;
                data.extend(std::iter::repeat_n(byte, run.min(buffer_len - data.len())));
            } else {
                // Incompressible chunk.
                let n = (rng.next_u64() % 24 + 8) as usize;
                for _ in 0..n.min(buffer_len - data.len()) {
                    data.push(rng.next_u64() as u8);
                }
            }
        }
        let packed = compress::lz_compress(&data);
        total += packed.len() as u64;
        if round % 3 == 0 {
            let unpacked = compress::lz_decompress(&packed).expect("own stream");
            total ^= unpacked.len() as u64;
        }
    }
    total
}

/// Synthetic zero-sum game: positions are 64-bit states; moves are
/// deterministic state transitions; leaf values are hash-derived.
/// Searches to `depth` with alpha-beta pruning. Returns the root value.
pub fn deepsjeng_like(depth: u32, seed: u64) -> i64 {
    fn leaf_value(state: u64) -> i64 {
        SplitMix64::mix(state) as i64 >> 40 // small signed range
    }
    fn moves(state: u64) -> [u64; 6] {
        let mut out = [0u64; 6];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = SplitMix64::mix(state.wrapping_add(i as u64 * 0x9E37_79B9));
        }
        out
    }
    fn alphabeta(state: u64, depth: u32, mut alpha: i64, beta: i64, maximizing: bool) -> i64 {
        if depth == 0 {
            return leaf_value(state);
        }
        let mut best = if maximizing { i64::MIN } else { i64::MAX };
        for next in moves(state) {
            let v = alphabeta(next, depth - 1, alpha, beta, !maximizing);
            if maximizing {
                best = best.max(v);
                alpha = alpha.max(v);
            } else {
                best = best.min(v);
            }
            if beta <= alpha {
                break; // prune
            }
        }
        best
    }
    alphabeta(seed, depth, i64::MIN, i64::MAX, true)
}

/// Counts completions of a constraint-filling puzzle: place values 1..=9
/// into a 9-cell ring such that adjacent cells differ by at least `gap`.
/// Tiny working set, deep recursion, near-perfect branch behaviour.
pub fn exchange2_like(gap: u32, seed: u64) -> u64 {
    fn fill(cells: &mut [u32; 9], used: u16, idx: usize, gap: u32, count: &mut u64) {
        if idx == 9 {
            // Ring constraint: last vs first.
            if cells[8].abs_diff(cells[0]) >= gap {
                *count += 1;
            }
            return;
        }
        for v in 1..=9u32 {
            if used & (1 << v) != 0 {
                continue;
            }
            if idx > 0 && cells[idx - 1].abs_diff(v) < gap {
                continue;
            }
            cells[idx] = v;
            fill(cells, used | (1 << v), idx + 1, gap, count);
        }
    }
    let mut cells = [0u32; 9];
    let mut count = 0u64;
    // The seed rotates which value is pinned first, varying the search.
    let first = (seed % 9 + 1) as u32;
    cells[0] = first;
    fill(&mut cells, 1 << first, 1, gap, &mut count);
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mcf_like_is_deterministic_and_converges() {
        let a = mcf_like(2_000, 8, 1);
        let b = mcf_like(2_000, 8, 1);
        assert_eq!(a, b);
        // More rounds can only lower distances (monotone relaxation).
        let later = mcf_like(2_000, 16, 1);
        assert!(later <= a, "distances must be monotone: {later} > {a}");
        assert!(a > 0);
    }

    #[test]
    fn xz_like_round_trips_internally() {
        // Checksum stability doubles as a round-trip check (the kernel
        // panics if its own stream fails to decode).
        assert_eq!(xz_like(8_192, 4, 7), xz_like(8_192, 4, 7));
        assert_ne!(xz_like(8_192, 4, 7), xz_like(8_192, 4, 8));
    }

    #[test]
    fn deepsjeng_like_alphabeta_matches_minimax() {
        // Pruning must not change the game value: compare against a
        // no-pruning evaluation at small depth.
        fn minimax(state: u64, depth: u32, maximizing: bool) -> i64 {
            if depth == 0 {
                return (SplitMix64::mix(state) as i64) >> 40;
            }
            let mut best = if maximizing { i64::MIN } else { i64::MAX };
            for i in 0..6u64 {
                let next = SplitMix64::mix(state.wrapping_add(i * 0x9E37_79B9));
                let v = minimax(next, depth - 1, !maximizing);
                best = if maximizing { best.max(v) } else { best.min(v) };
            }
            best
        }
        for seed in [1u64, 99, 12345] {
            assert_eq!(
                deepsjeng_like(4, seed),
                minimax(seed, 4, true),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn exchange2_like_counts_are_plausible() {
        // gap=1 accepts every permutation of the remaining 8 values.
        assert_eq!(exchange2_like(1, 0), 40_320); // 8!
                                                  // Larger gaps admit strictly fewer arrangements.
        let g2 = exchange2_like(2, 0);
        let g3 = exchange2_like(3, 0);
        assert!(g2 < 40_320);
        assert!(g3 < g2);
        assert!(g3 > 0);
    }
}
