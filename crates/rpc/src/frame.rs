//! Request/response messages and their stream framing.
//!
//! Frames are `[u32 length][payload]`; the payload encodes sequence
//! number, status/kind, method name, and body with the [`wire`](crate::wire)
//! primitives. The same frame codec backs the TCP transport and the
//! serialization microbenchmark.

use crate::wire::{self, Reader, WireError};
use std::io::{Read, Write};

/// Hard cap on frame size (64 MiB): a corrupt length prefix must not
/// trigger an enormous allocation.
pub const MAX_FRAME: u32 = 64 << 20;

/// An RPC request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Client-assigned sequence number, echoed in the response.
    pub seq: u64,
    /// Method name, e.g. `"get"`, `"rank_stories"`.
    pub method: String,
    /// Serialized argument payload.
    pub body: Vec<u8>,
    /// Remaining deadline budget in microseconds; 0 means "no deadline".
    ///
    /// Deadlines travel as relative budgets (client and server share no
    /// clock); the server pins the budget to an absolute expiry the
    /// moment it decodes the frame, and sheds the request with
    /// [`Status::DeadlineExceeded`] if it is still queued when the
    /// budget runs out.
    pub deadline_us: u64,
    /// Correlation id, echoed verbatim in the response so pipelined
    /// connections can match out-of-order completions back to their
    /// requests. 0 means "uncorrelated" (one-request-per-turn clients);
    /// pipelining clients assign unique ids per connection.
    pub corr: u64,
}

impl Request {
    /// Creates a request with sequence number 0 (transports assign real
    /// ones) and no deadline.
    pub fn new(method: &str, body: Vec<u8>) -> Self {
        Self {
            seq: 0,
            method: method.to_owned(),
            body,
            deadline_us: 0,
            corr: 0,
        }
    }

    /// Attaches a deadline budget (builder style). Sub-microsecond
    /// budgets are rounded up so a nonzero budget stays nonzero on the
    /// wire.
    pub fn with_deadline(mut self, budget: std::time::Duration) -> Self {
        self.deadline_us = u64::try_from(budget.as_micros())
            .unwrap_or(u64::MAX)
            .max(u64::from(!budget.is_zero()));
        self
    }

    /// Serializes the request payload (without the frame length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.method.len() + self.body.len());
        wire::write_uvarint(&mut out, self.seq);
        wire::write_str(&mut out, &self.method);
        wire::write_bytes(&mut out, &self.body);
        wire::write_uvarint(&mut out, self.deadline_us);
        wire::write_uvarint(&mut out, self.corr);
        out
    }

    /// Parses a request payload. The trailing fields were appended over
    /// protocol revisions, so frames from older encoders decode with
    /// their defaults: no deadline (v1) and correlation id 0 (v1/v2).
    /// Newer frames decode on older servers too — v1 decoders ignore
    /// trailing bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on malformed input.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(buf);
        let seq = r.read_uvarint()?;
        let method = r.read_str()?.to_owned();
        let body = r.read_bytes()?.to_vec();
        let deadline_us = r.read_trailing_uvarint(0)?;
        let corr = r.read_trailing_uvarint(0)?;
        Ok(Self {
            seq,
            method,
            body,
            deadline_us,
            corr,
        })
    }
}

/// Response status, mirroring Thrift's reply/exception split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    /// Successful reply.
    Ok,
    /// Application-level error.
    Error,
    /// Server overloaded / queue full (used for SLO error accounting).
    Overloaded,
    /// The request's deadline expired before (or while) it was served;
    /// the work was shed instead of burning a worker.
    DeadlineExceeded,
}

impl Status {
    fn to_byte(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::Error => 1,
            Status::Overloaded => 2,
            Status::DeadlineExceeded => 3,
        }
    }

    fn from_byte(b: u8) -> Result<Self, WireError> {
        match b {
            0 => Ok(Status::Ok),
            1 => Ok(Status::Error),
            2 => Ok(Status::Overloaded),
            3 => Ok(Status::DeadlineExceeded),
            other => Err(WireError::UnknownTag(other)),
        }
    }
}

/// An RPC response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Echo of the request's sequence number.
    pub seq: u64,
    /// Outcome status.
    pub status: Status,
    /// Serialized result payload.
    pub body: Vec<u8>,
    /// Echo of the request's correlation id. Responses from legacy
    /// servers decode with `corr == seq`: those servers echo the
    /// sequence number, and pipelining clients assign `corr = seq`, so
    /// correlation still resolves across protocol versions.
    pub corr: u64,
}

impl Response {
    /// A successful response carrying `body`.
    pub fn ok(body: Vec<u8>) -> Self {
        Self {
            seq: 0,
            status: Status::Ok,
            body,
            corr: 0,
        }
    }

    /// An application-error response with a message body.
    pub fn error(message: &str) -> Self {
        Self {
            seq: 0,
            status: Status::Error,
            body: message.as_bytes().to_vec(),
            corr: 0,
        }
    }

    /// An overload response (request shed).
    pub fn overloaded() -> Self {
        Self {
            seq: 0,
            status: Status::Overloaded,
            body: Vec::new(),
            corr: 0,
        }
    }

    /// A deadline-exceeded response (expired work shed).
    pub fn deadline_exceeded() -> Self {
        Self {
            seq: 0,
            status: Status::DeadlineExceeded,
            body: Vec::new(),
            corr: 0,
        }
    }

    /// Whether the call succeeded.
    pub fn is_ok(&self) -> bool {
        self.status == Status::Ok
    }

    /// Serializes the response payload (without the frame length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.body.len());
        wire::write_uvarint(&mut out, self.seq);
        out.push(self.status.to_byte());
        wire::write_bytes(&mut out, &self.body);
        wire::write_uvarint(&mut out, self.corr);
        out
    }

    /// Parses a response payload. The correlation id is a trailing field:
    /// frames from pre-pipelining servers decode with `corr == seq`, which
    /// keeps correlation working because those servers echo the sequence
    /// number and pipelining clients assign `corr = seq`.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on malformed input.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(buf);
        let seq = r.read_uvarint()?;
        let status = Status::from_byte(r.read_u8()?)?;
        let body = r.read_bytes()?.to_vec();
        let corr = r.read_trailing_uvarint(seq)?;
        Ok(Self {
            seq,
            status,
            body,
            corr,
        })
    }
}

/// Writes a length-prefixed frame to a stream.
///
/// # Errors
///
/// Returns an I/O error from the underlying writer, or `InvalidData` if
/// `payload` exceeds [`MAX_FRAME`].
pub fn write_frame<W: Write>(mut w: W, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() as u64 > MAX_FRAME as u64 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Appends a length-prefixed frame to an in-memory buffer *without*
/// flushing, so a burst of responses can be coalesced into one
/// `write_all` syscall (the batching half of pipelining).
///
/// # Errors
///
/// Returns `InvalidData` if `payload` exceeds [`MAX_FRAME`].
pub fn append_frame(out: &mut Vec<u8>, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() as u64 > MAX_FRAME as u64 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    Ok(())
}

/// Reads one length-prefixed frame from a stream. Returns `Ok(None)` on a
/// clean EOF at a frame boundary.
///
/// # Errors
///
/// Returns an I/O error from the reader, or `InvalidData` on an oversized
/// length prefix or mid-frame EOF.
pub fn read_frame<R: Read>(mut r: R) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    // Distinguish clean EOF (no bytes) from a truncated prefix.
    match r.read(&mut len_buf)? {
        0 => return Ok(None),
        n => r.read_exact(&mut len_buf[n..])?,
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Errors surfaced to RPC callers.
#[derive(Debug)]
pub enum RpcError {
    /// Transport-level failure.
    Io(std::io::Error),
    /// Malformed frame or payload.
    Wire(WireError),
    /// The server reported an application error.
    Application(String),
    /// The server shed the request due to overload.
    Overloaded,
    /// The request's deadline expired before it was served.
    DeadlineExceeded,
    /// The call timed out waiting on the transport.
    Timeout,
    /// A client-side circuit breaker rejected the call without sending.
    CircuitOpen,
    /// A fan-out worker thread panicked (the panic payload is carried so
    /// the failure is not collapsed into a disconnect).
    WorkerPanic(String),
    /// The server is shutting down or the channel is closed.
    Disconnected,
    /// A pipelined connection received a response whose correlation id
    /// matches no in-flight request — the peer is confused or the stream
    /// is desynchronized, so the connection cannot be trusted.
    CorrelationMismatch {
        /// The unmatched correlation id from the wire.
        got: u64,
    },
}

impl RpcError {
    /// Whether a retry of the same call could plausibly succeed.
    ///
    /// Transient transport and load conditions (overload, timeout, I/O,
    /// disconnect, expired deadline) are retryable; deterministic
    /// failures (application errors, malformed frames, worker panics,
    /// desynchronized correlation ids) and breaker rejections (retrying
    /// defeats the breaker) are not.
    pub fn is_retryable(&self) -> bool {
        match self {
            RpcError::Io(_)
            | RpcError::Overloaded
            | RpcError::DeadlineExceeded
            | RpcError::Timeout
            | RpcError::Disconnected => true,
            RpcError::Wire(_)
            | RpcError::Application(_)
            | RpcError::CircuitOpen
            | RpcError::WorkerPanic(_)
            | RpcError::CorrelationMismatch { .. } => false,
        }
    }

    /// Best-effort copy, for fanning one transport failure out to every
    /// request it sank with it (a pipelined batch dies as a unit).
    /// `io::Error` is not `Clone`, so the I/O arm preserves kind and
    /// message rather than the original error value.
    pub fn duplicate(&self) -> Self {
        match self {
            RpcError::Io(e) => RpcError::Io(std::io::Error::new(e.kind(), e.to_string())),
            RpcError::Wire(e) => RpcError::Wire(e.clone()),
            RpcError::Application(m) => RpcError::Application(m.clone()),
            RpcError::Overloaded => RpcError::Overloaded,
            RpcError::DeadlineExceeded => RpcError::DeadlineExceeded,
            RpcError::Timeout => RpcError::Timeout,
            RpcError::CircuitOpen => RpcError::CircuitOpen,
            RpcError::WorkerPanic(m) => RpcError::WorkerPanic(m.clone()),
            RpcError::Disconnected => RpcError::Disconnected,
            RpcError::CorrelationMismatch { got } => RpcError::CorrelationMismatch { got: *got },
        }
    }
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Io(e) => write!(f, "rpc i/o error: {e}"),
            RpcError::Wire(e) => write!(f, "rpc wire error: {e}"),
            RpcError::Application(m) => write!(f, "rpc application error: {m}"),
            RpcError::Overloaded => write!(f, "rpc request shed: server overloaded"),
            RpcError::DeadlineExceeded => write!(f, "rpc deadline exceeded: expired work shed"),
            RpcError::Timeout => write!(f, "rpc call timed out"),
            RpcError::CircuitOpen => write!(f, "rpc call rejected: circuit breaker open"),
            RpcError::WorkerPanic(m) => write!(f, "rpc fan-out worker panicked: {m}"),
            RpcError::Disconnected => write!(f, "rpc peer disconnected"),
            RpcError::CorrelationMismatch { got } => {
                write!(f, "rpc response correlation id {got} matches no request")
            }
        }
    }
}

impl std::error::Error for RpcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RpcError::Io(e) => Some(e),
            RpcError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for RpcError {
    fn from(e: std::io::Error) -> Self {
        RpcError::Io(e)
    }
}

impl From<WireError> for RpcError {
    fn from(e: WireError) -> Self {
        RpcError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let mut req = Request::new("get_feed", vec![1, 2, 3]);
        req.seq = 77;
        let back = Request::decode(&req.encode()).unwrap();
        assert_eq!(req, back);
    }

    #[test]
    fn request_deadline_round_trips() {
        let req = Request::new("get", vec![1]).with_deadline(std::time::Duration::from_millis(250));
        assert_eq!(req.deadline_us, 250_000);
        let back = Request::decode(&req.encode()).unwrap();
        assert_eq!(back.deadline_us, 250_000);
    }

    #[test]
    fn tiny_nonzero_deadline_stays_nonzero_on_wire() {
        let req = Request::new("get", vec![]).with_deadline(std::time::Duration::from_nanos(10));
        assert_eq!(req.deadline_us, 1, "must not collapse to 'no deadline'");
    }

    #[test]
    fn legacy_frame_without_deadline_decodes() {
        // Re-create the pre-deadline encoding by hand.
        let mut out = Vec::new();
        crate::wire::write_uvarint(&mut out, 5);
        crate::wire::write_str(&mut out, "get");
        crate::wire::write_bytes(&mut out, b"key");
        let req = Request::decode(&out).unwrap();
        assert_eq!(req.seq, 5);
        assert_eq!(req.deadline_us, 0);
    }

    #[test]
    fn response_round_trips_all_statuses() {
        for resp in [
            Response::ok(vec![9; 100]),
            Response::error("bad key"),
            Response::overloaded(),
            Response::deadline_exceeded(),
        ] {
            let back = Response::decode(&resp.encode()).unwrap();
            assert_eq!(resp, back);
        }
    }

    #[test]
    fn status_accessors() {
        assert!(Response::ok(vec![]).is_ok());
        assert!(!Response::error("x").is_ok());
        assert!(!Response::overloaded().is_ok());
        assert!(!Response::deadline_exceeded().is_ok());
    }

    #[test]
    fn retryability_classification() {
        assert!(RpcError::Overloaded.is_retryable());
        assert!(RpcError::Timeout.is_retryable());
        assert!(RpcError::DeadlineExceeded.is_retryable());
        assert!(RpcError::Disconnected.is_retryable());
        assert!(RpcError::Io(std::io::Error::other("x")).is_retryable());
        assert!(!RpcError::Application("nope".into()).is_retryable());
        assert!(!RpcError::CircuitOpen.is_retryable());
        assert!(!RpcError::WorkerPanic("boom".into()).is_retryable());
        assert!(!RpcError::Wire(WireError::UnexpectedEof).is_retryable());
        assert!(!RpcError::CorrelationMismatch { got: 7 }.is_retryable());
    }

    #[test]
    fn request_corr_round_trips() {
        let mut req = Request::new("get", vec![1, 2]);
        req.seq = 3;
        req.corr = u64::MAX;
        let back = Request::decode(&req.encode()).unwrap();
        assert_eq!(back.corr, u64::MAX);
        assert_eq!(req, back);
    }

    #[test]
    fn response_corr_round_trips() {
        let mut resp = Response::ok(vec![5; 10]);
        resp.seq = 9;
        resp.corr = 12345;
        let back = Response::decode(&resp.encode()).unwrap();
        assert_eq!(back.corr, 12345);
        assert_eq!(resp, back);
    }

    #[test]
    fn legacy_response_without_corr_falls_back_to_seq() {
        // Re-create the pre-corr encoding by hand: seq, status, body.
        let mut out = Vec::new();
        crate::wire::write_uvarint(&mut out, 42);
        out.push(0); // Status::Ok
        crate::wire::write_bytes(&mut out, b"payload");
        let resp = Response::decode(&out).unwrap();
        assert_eq!(resp.seq, 42);
        assert_eq!(
            resp.corr, 42,
            "legacy responses must correlate by sequence number"
        );
    }

    #[test]
    fn legacy_request_without_corr_decodes_as_uncorrelated() {
        let mut out = Vec::new();
        crate::wire::write_uvarint(&mut out, 5);
        crate::wire::write_str(&mut out, "get");
        crate::wire::write_bytes(&mut out, b"key");
        crate::wire::write_uvarint(&mut out, 1_000); // deadline only (v2)
        let req = Request::decode(&out).unwrap();
        assert_eq!(req.deadline_us, 1_000);
        assert_eq!(req.corr, 0);
    }

    #[test]
    fn append_frame_matches_write_frame_bytes() {
        let mut streamed = Vec::new();
        write_frame(&mut streamed, b"abc").unwrap();
        write_frame(&mut streamed, b"defg").unwrap();
        let mut appended = Vec::new();
        append_frame(&mut appended, b"abc").unwrap();
        append_frame(&mut appended, b"defg").unwrap();
        assert_eq!(streamed, appended);
    }

    #[test]
    fn append_frame_rejects_oversized_payload() {
        let payload = vec![0u8; MAX_FRAME as usize + 1];
        let mut out = Vec::new();
        let err = append_frame(&mut out, &payload).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(out.is_empty(), "nothing may be appended on rejection");
    }

    #[test]
    fn rpc_error_duplicate_preserves_classification() {
        let errors = [
            RpcError::Io(std::io::Error::new(std::io::ErrorKind::TimedOut, "slow")),
            RpcError::Wire(WireError::UnexpectedEof),
            RpcError::Application("boom".into()),
            RpcError::Overloaded,
            RpcError::DeadlineExceeded,
            RpcError::Timeout,
            RpcError::CircuitOpen,
            RpcError::WorkerPanic("p".into()),
            RpcError::Disconnected,
            RpcError::CorrelationMismatch { got: 8 },
        ];
        for e in &errors {
            let d = e.duplicate();
            assert_eq!(d.is_retryable(), e.is_retryable(), "{e}");
            assert_eq!(d.to_string(), e.to_string());
        }
    }

    #[test]
    fn frame_round_trips_over_a_buffer() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"abc").unwrap();
        write_frame(&mut stream, b"").unwrap();
        write_frame(&mut stream, &[7u8; 1000]).unwrap();
        let mut cursor = std::io::Cursor::new(stream);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"abc");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), vec![7u8; 1000]);
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn truncated_frame_is_io_error() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"abcdef").unwrap();
        stream.truncate(stream.len() - 2);
        let mut cursor = std::io::Cursor::new(stream);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn oversized_frame_length_rejected() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut cursor = std::io::Cursor::new(stream);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn corrupt_status_byte_rejected() {
        let mut resp = Response::ok(vec![]);
        resp.seq = 1;
        let mut bytes = resp.encode();
        bytes[1] = 0xEE; // status byte follows the 1-byte seq varint
        assert!(Response::decode(&bytes).is_err());
    }

    #[test]
    fn rpc_error_display() {
        let e = RpcError::Application("boom".into());
        assert!(e.to_string().contains("boom"));
        assert!(RpcError::Overloaded.to_string().contains("overloaded"));
    }
}
