//! Pipelining configuration and depth/batch telemetry.
//!
//! A pipelined connection keeps a window of requests in flight and lets
//! the server complete them out of order, so one connection replaces N
//! pool slots. The module carries two pieces: [`PipelineConfig`], the
//! knobs shared by clients and servers, and [`PipelineStats`], the
//! `rpc.pipeline.*` / `rpc.batch.*` telemetry handles with a leak-proof
//! RAII guard for in-flight accounting.

use dcperf_telemetry::{metrics, Counter, Gauge, Telemetry};
use std::sync::Arc;

/// Knobs for a pipelined connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Maximum requests in flight per connection before the reader stops
    /// reading ahead. 1 disables pipelining: the connection serves one
    /// request per turn and responses stay strictly in request order.
    pub max_inflight: usize,
    /// Maximum responses coalesced into one buffered transport write.
    pub max_batch: usize,
}

impl PipelineConfig {
    /// A pipelined window of `max_inflight` requests with the default
    /// batch size.
    pub fn depth(max_inflight: usize) -> Self {
        Self {
            max_inflight: max_inflight.max(1),
            max_batch: Self::default().max_batch,
        }
    }

    /// One request per turn: responses strictly in request order, exactly
    /// the v1 wire behavior.
    pub fn disabled() -> Self {
        Self {
            max_inflight: 1,
            max_batch: 1,
        }
    }

    /// Overrides the response-burst batch size (builder style).
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Whether this configuration actually reads ahead.
    pub fn is_pipelined(&self) -> bool {
        self.max_inflight > 1
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            max_inflight: 64,
            max_batch: 16,
        }
    }
}

/// Depth and batching telemetry for pipelined connections
/// (`rpc.pipeline.*`, `rpc.batch.*`).
#[derive(Debug)]
pub struct PipelineStats {
    inflight: Arc<Gauge>,
    inflight_peak: Arc<Gauge>,
    flushes: Arc<Counter>,
    batched_responses: Arc<Counter>,
}

impl PipelineStats {
    /// Creates zeroed stats in a private registry.
    pub fn new() -> Self {
        Self::with_telemetry(&Telemetry::new())
    }

    /// Registers the gauges and counters in `telemetry`.
    pub fn with_telemetry(telemetry: &Telemetry) -> Self {
        let pipeline = |s| telemetry.gauge(&metrics::scoped(metrics::PREFIX_RPC_PIPELINE, s));
        let batch = |s| telemetry.counter(&metrics::scoped(metrics::PREFIX_RPC_BATCH, s));
        Self {
            inflight: pipeline(metrics::suffix::INFLIGHT),
            inflight_peak: pipeline(metrics::suffix::INFLIGHT_PEAK),
            flushes: batch(metrics::suffix::FLUSHES),
            batched_responses: batch(metrics::suffix::RESPONSES),
        }
    }

    /// Accounts one request entering the in-flight window. The returned
    /// guard releases the slot on drop, so a request that is shed, times
    /// out, or is dropped with its closure can never leak depth.
    pub fn track(self: &Arc<Self>) -> InflightGuard {
        self.inflight.add(1);
        self.inflight_peak.set_max(self.inflight.get());
        InflightGuard {
            stats: Arc::clone(self),
        }
    }

    /// Accounts one coalesced burst of `responses` frames written to the
    /// transport in a single flush.
    pub fn record_flush(&self, responses: usize) {
        self.flushes.inc();
        self.batched_responses.add(responses as u64);
    }

    /// Requests currently in flight.
    pub fn inflight(&self) -> i64 {
        self.inflight.get()
    }

    /// Highest in-flight depth observed.
    pub fn inflight_peak(&self) -> i64 {
        self.inflight_peak.get()
    }

    /// Coalesced bursts written.
    pub fn flushes(&self) -> u64 {
        self.flushes.get()
    }

    /// Responses carried by those bursts.
    pub fn batched_responses(&self) -> u64 {
        self.batched_responses.get()
    }
}

impl Default for PipelineStats {
    fn default() -> Self {
        Self::new()
    }
}

/// RAII handle for one in-flight request; dropping it releases the slot.
#[derive(Debug)]
pub struct InflightGuard {
    stats: Arc<PipelineStats>,
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.stats.inflight.sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_pipelined() {
        let cfg = PipelineConfig::default();
        assert!(cfg.is_pipelined());
        assert!(cfg.max_inflight > 1);
        assert!(cfg.max_batch > 1);
    }

    #[test]
    fn disabled_config_serializes_the_connection() {
        let cfg = PipelineConfig::disabled();
        assert!(!cfg.is_pipelined());
        assert_eq!(cfg.max_inflight, 1);
    }

    #[test]
    fn depth_clamps_to_at_least_one() {
        assert_eq!(PipelineConfig::depth(0).max_inflight, 1);
        assert_eq!(PipelineConfig::depth(8).max_inflight, 8);
        assert_eq!(PipelineConfig::depth(8).with_max_batch(0).max_batch, 1);
    }

    #[test]
    fn guards_track_depth_and_peak() {
        let stats = Arc::new(PipelineStats::new());
        let a = stats.track();
        let b = stats.track();
        assert_eq!(stats.inflight(), 2);
        drop(a);
        assert_eq!(stats.inflight(), 1);
        drop(b);
        assert_eq!(stats.inflight(), 0);
        assert_eq!(stats.inflight_peak(), 2, "peak must survive drains");
    }

    #[test]
    fn flush_accounting_sums_burst_sizes() {
        let stats = PipelineStats::new();
        stats.record_flush(3);
        stats.record_flush(1);
        assert_eq!(stats.flushes(), 2);
        assert_eq!(stats.batched_responses(), 4);
    }

    #[test]
    fn stats_register_in_shared_telemetry() {
        let telemetry = Telemetry::new();
        let stats = Arc::new(PipelineStats::with_telemetry(&telemetry));
        let _guard = stats.track();
        stats.record_flush(2);
        let snap = telemetry.snapshot();
        assert_eq!(snap.gauge("rpc.pipeline.inflight"), Some(1));
        assert_eq!(snap.gauge("rpc.pipeline.inflight_peak"), Some(1));
        assert_eq!(snap.counter("rpc.batch.flushes"), Some(1));
        assert_eq!(snap.counter("rpc.batch.responses"), Some(2));
    }
}
