//! Compact binary wire encoding: varints, zigzag, and length-prefixed
//! payloads.
//!
//! This is the byte-level substrate of the Thrift-compact-style protocol:
//! unsigned integers are ULEB128 varints, signed integers are
//! zigzag-mapped before varint encoding, and strings/binaries are
//! length-prefixed. These small branchy integer codecs are exactly the kind
//! of "datacenter tax" instruction mix (serialization) the paper models.

/// Errors from decoding a wire buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    UnexpectedEof,
    /// A varint ran past 10 bytes (would overflow `u64`).
    VarintOverflow,
    /// A length prefix exceeded the remaining buffer or a sanity cap.
    InvalidLength(u64),
    /// An unknown type tag was encountered.
    UnknownTag(u8),
    /// A string field held invalid UTF-8.
    InvalidUtf8,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::UnexpectedEof => write!(f, "unexpected end of buffer"),
            WireError::VarintOverflow => write!(f, "varint longer than 10 bytes"),
            WireError::InvalidLength(n) => write!(f, "invalid length prefix {n}"),
            WireError::UnknownTag(t) => write!(f, "unknown type tag {t:#x}"),
            WireError::InvalidUtf8 => write!(f, "invalid utf-8 in string field"),
        }
    }
}

impl std::error::Error for WireError {}

/// Maps a signed integer to an unsigned one so that small magnitudes
/// (positive or negative) encode to short varints.
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends `v` as a ULEB128 varint.
pub fn write_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends `v` zigzag-encoded as a varint.
pub fn write_ivarint(out: &mut Vec<u8>, v: i64) {
    write_uvarint(out, zigzag_encode(v));
}

/// Appends an IEEE-754 double, little-endian.
pub fn write_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed byte string.
pub fn write_bytes(out: &mut Vec<u8>, v: &[u8]) {
    write_uvarint(out, v.len() as u64);
    out.extend_from_slice(v);
}

/// Appends a length-prefixed UTF-8 string.
pub fn write_str(out: &mut Vec<u8>, v: &str) {
    write_bytes(out, v.as_bytes());
}

/// A cursor for decoding wire buffers.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the reader consumed the whole buffer.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] at end of buffer.
    pub fn read_u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::UnexpectedEof)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a ULEB128 varint.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] if the buffer ends mid-varint
    /// or [`WireError::VarintOverflow`] past 10 bytes.
    pub fn read_uvarint(&mut self) -> Result<u64, WireError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.read_u8()?;
            if shift == 63 && byte > 1 {
                return Err(WireError::VarintOverflow);
            }
            v |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(WireError::VarintOverflow);
            }
        }
    }

    /// Reads a trailing *optional* varint: frames grow by appending
    /// fields, so a decoder built against a newer schema reads `default`
    /// when an older encoder stopped short of the field.
    ///
    /// # Errors
    ///
    /// Same as [`Reader::read_uvarint`] when bytes are present.
    pub fn read_trailing_uvarint(&mut self, default: u64) -> Result<u64, WireError> {
        if self.is_empty() {
            Ok(default)
        } else {
            self.read_uvarint()
        }
    }

    /// Reads a zigzag varint.
    ///
    /// # Errors
    ///
    /// Same as [`Reader::read_uvarint`].
    pub fn read_ivarint(&mut self) -> Result<i64, WireError> {
        Ok(zigzag_decode(self.read_uvarint()?))
    }

    /// Reads a little-endian double.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] with fewer than 8 bytes left.
    pub fn read_f64(&mut self) -> Result<f64, WireError> {
        let bytes = self.read_exact(8)?;
        let bytes = <[u8; 8]>::try_from(bytes).map_err(|_| WireError::UnexpectedEof)?;
        Ok(f64::from_le_bytes(bytes))
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] with fewer than `n` left.
    pub fn read_exact(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::InvalidLength`] if the prefix exceeds the
    /// remaining buffer.
    pub fn read_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.read_uvarint()?;
        if len > self.remaining() as u64 {
            return Err(WireError::InvalidLength(len));
        }
        self.read_exact(len as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// As [`Reader::read_bytes`], plus [`WireError::InvalidUtf8`].
    pub fn read_str(&mut self) -> Result<&'a str, WireError> {
        std::str::from_utf8(self.read_bytes()?).map_err(|_| WireError::InvalidUtf8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_round_trips_edge_cases() {
        for v in [0i64, -1, 1, -2, 2, i64::MIN, i64::MAX, 12345, -12345] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v, "v={v}");
        }
    }

    #[test]
    fn zigzag_small_magnitudes_stay_small() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
    }

    #[test]
    fn uvarint_round_trips() {
        let cases = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ];
        for v in cases {
            let mut buf = Vec::new();
            write_uvarint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.read_uvarint().unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn uvarint_lengths() {
        let mut buf = Vec::new();
        write_uvarint(&mut buf, 127);
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_uvarint(&mut buf, 128);
        assert_eq!(buf.len(), 2);
        buf.clear();
        write_uvarint(&mut buf, u64::MAX);
        assert_eq!(buf.len(), 10);
    }

    #[test]
    fn ivarint_round_trips() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -1_000_000] {
            let mut buf = Vec::new();
            write_ivarint(&mut buf, v);
            assert_eq!(Reader::new(&buf).read_ivarint().unwrap(), v);
        }
    }

    #[test]
    fn f64_round_trips() {
        for v in [0.0f64, -1.5, f64::MAX, f64::MIN_POSITIVE, 1e-300] {
            let mut buf = Vec::new();
            write_f64(&mut buf, v);
            assert_eq!(Reader::new(&buf).read_f64().unwrap(), v);
        }
    }

    #[test]
    fn bytes_and_str_round_trip() {
        let mut buf = Vec::new();
        write_str(&mut buf, "héllo");
        write_bytes(&mut buf, &[1, 2, 3]);
        let mut r = Reader::new(&buf);
        assert_eq!(r.read_str().unwrap(), "héllo");
        assert_eq!(r.read_bytes().unwrap(), &[1, 2, 3]);
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_varint_is_eof() {
        let mut buf = Vec::new();
        write_uvarint(&mut buf, 1_000_000);
        buf.pop();
        assert_eq!(
            Reader::new(&buf).read_uvarint(),
            Err(WireError::UnexpectedEof)
        );
    }

    #[test]
    fn oversized_varint_is_overflow() {
        let buf = [0xFFu8; 11];
        assert_eq!(
            Reader::new(&buf).read_uvarint(),
            Err(WireError::VarintOverflow)
        );
    }

    #[test]
    fn length_prefix_beyond_buffer_is_invalid() {
        let mut buf = Vec::new();
        write_uvarint(&mut buf, 100); // claims 100 bytes, provides none
        assert!(matches!(
            Reader::new(&buf).read_bytes(),
            Err(WireError::InvalidLength(100))
        ));
    }

    #[test]
    fn invalid_utf8_detected() {
        let mut buf = Vec::new();
        write_bytes(&mut buf, &[0xFF, 0xFE]);
        assert_eq!(Reader::new(&buf).read_str(), Err(WireError::InvalidUtf8));
    }

    #[test]
    fn trailing_uvarint_defaults_on_exhausted_buffer() {
        let mut buf = Vec::new();
        write_uvarint(&mut buf, 7);
        let mut r = Reader::new(&buf);
        assert_eq!(r.read_uvarint().unwrap(), 7);
        assert_eq!(r.read_trailing_uvarint(99).unwrap(), 99);
        // With bytes present it reads them, and still errors on garbage.
        write_uvarint(&mut buf, 300);
        let mut r = Reader::new(&buf);
        r.read_uvarint().unwrap();
        assert_eq!(r.read_trailing_uvarint(99).unwrap(), 300);
        let truncated = [0x80u8];
        assert_eq!(
            Reader::new(&truncated).read_trailing_uvarint(0),
            Err(WireError::UnexpectedEof)
        );
    }

    #[test]
    fn reader_tracks_position() {
        let mut buf = Vec::new();
        write_uvarint(&mut buf, 5);
        write_uvarint(&mut buf, 6);
        let mut r = Reader::new(&buf);
        assert_eq!(r.remaining(), 2);
        r.read_uvarint().unwrap();
        assert_eq!(r.remaining(), 1);
    }
}
