//! Fixed worker thread pools with fast/slow lane routing.
//!
//! TAO "utilizes separate thread pools for fast and slow paths" (§6 of the
//! paper), and DCPerf's TaoBench reproduces that: cache hits are served by
//! *fast* threads while misses are dispatched to *slow* threads that
//! simulate database lookups. [`ThreadPool`] implements that structure for
//! any [`Lane`]-classified job stream, with bounded queues so overload is
//! observable (shed requests) rather than unbounded memory growth.

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use dcperf_telemetry::{metrics, Counter, Telemetry};
use std::sync::Arc;

/// Which pool a job is routed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lane {
    /// Latency-critical path (e.g. cache hit).
    Fast,
    /// Expensive path (e.g. cache miss hitting the database).
    Slow,
}

/// Thread-pool sizing and queue depths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Number of fast-lane worker threads (0 disables the lane).
    pub fast_threads: usize,
    /// Number of slow-lane worker threads (0 routes everything fast).
    pub slow_threads: usize,
    /// Bounded queue depth per lane.
    pub queue_depth: usize,
}

impl PoolConfig {
    /// A single-lane pool with `threads` fast workers and a deep queue.
    pub fn single_lane(threads: usize) -> Self {
        Self {
            fast_threads: threads.max(1),
            slow_threads: 0,
            queue_depth: 4096,
        }
    }

    /// A fast/slow split pool, TAO-style.
    pub fn fast_slow(fast_threads: usize, slow_threads: usize) -> Self {
        Self {
            fast_threads: fast_threads.max(1),
            slow_threads,
            queue_depth: 4096,
        }
    }

    /// Overrides the per-lane queue depth (builder style).
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Counters exposed by a running pool, recorded through the unified
/// telemetry layer (namespace `rpc.pool.*` by default).
#[derive(Debug)]
pub struct PoolStats {
    fast_jobs: Arc<Counter>,
    slow_jobs: Arc<Counter>,
    shed_jobs: Arc<Counter>,
}

impl PoolStats {
    /// Creates zeroed counters in a private registry.
    pub fn new() -> Self {
        Self::with_telemetry(&Telemetry::new(), metrics::PREFIX_RPC_POOL)
    }

    /// Registers the counters under `<prefix>.*` in `telemetry`.
    pub fn with_telemetry(telemetry: &Telemetry, prefix: &str) -> Self {
        let counter = |s| telemetry.counter(&metrics::scoped(prefix, s));
        Self {
            fast_jobs: counter(metrics::suffix::FAST_JOBS),
            slow_jobs: counter(metrics::suffix::SLOW_JOBS),
            shed_jobs: counter(metrics::suffix::SHED_JOBS),
        }
    }

    /// Jobs accepted into the fast lane.
    pub fn fast_jobs(&self) -> u64 {
        self.fast_jobs.get()
    }

    /// Jobs accepted into the slow lane.
    pub fn slow_jobs(&self) -> u64 {
        self.slow_jobs.get()
    }

    /// Jobs rejected because the target queue was full.
    pub fn shed_jobs(&self) -> u64 {
        self.shed_jobs.get()
    }
}

impl Default for PoolStats {
    fn default() -> Self {
        Self::new()
    }
}

/// A fixed-size worker pool with fast/slow lanes and bounded queues.
///
/// # Examples
///
/// ```
/// use dcperf_rpc::{Lane, PoolConfig, ThreadPool};
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use std::sync::Arc;
///
/// let pool = ThreadPool::new(PoolConfig::fast_slow(2, 1));
/// let hits = Arc::new(AtomicU64::new(0));
/// for _ in 0..100 {
///     let hits = Arc::clone(&hits);
///     pool.spawn(Lane::Fast, move || {
///         hits.fetch_add(1, Ordering::Relaxed);
///     })
///     .unwrap();
/// }
/// pool.shutdown();
/// assert_eq!(hits.load(Ordering::Relaxed), 100);
/// ```
pub struct ThreadPool {
    fast_tx: Sender<Job>,
    slow_tx: Option<Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    stats: Arc<PoolStats>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("workers", &self.workers.len())
            .field("has_slow_lane", &self.slow_tx.is_some())
            .finish()
    }
}

/// Error returned by [`ThreadPool::spawn`] when a job cannot be queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpawnError {
    /// The lane's queue was full (overload; the job was shed).
    QueueFull,
    /// The pool has been shut down.
    Shutdown,
}

impl std::fmt::Display for SpawnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpawnError::QueueFull => write!(f, "thread pool queue full"),
            SpawnError::Shutdown => write!(f, "thread pool shut down"),
        }
    }
}

impl std::error::Error for SpawnError {}

impl ThreadPool {
    /// Creates the pool with counters in a private registry.
    pub fn new(config: PoolConfig) -> Self {
        Self::with_stats(config, PoolStats::new())
    }

    /// Creates the pool with counters registered under `rpc.pool.*` in
    /// `telemetry`.
    pub fn with_telemetry(config: PoolConfig, telemetry: &Telemetry) -> Self {
        Self::with_stats(
            config,
            PoolStats::with_telemetry(telemetry, metrics::PREFIX_RPC_POOL),
        )
    }

    fn with_stats(config: PoolConfig, stats: PoolStats) -> Self {
        let stats = Arc::new(stats);
        let mut workers = Vec::new();

        let (fast_tx, fast_rx) = bounded::<Job>(config.queue_depth);
        for i in 0..config.fast_threads.max(1) {
            workers.push(Self::worker(format!("rpc-fast-{i}"), fast_rx.clone()));
        }

        let slow_tx = if config.slow_threads > 0 {
            let (tx, rx) = bounded::<Job>(config.queue_depth);
            for i in 0..config.slow_threads {
                workers.push(Self::worker(format!("rpc-slow-{i}"), rx.clone()));
            }
            Some(tx)
        } else {
            None
        };

        Self {
            fast_tx,
            slow_tx,
            workers,
            stats,
        }
    }

    fn worker(name: String, rx: Receiver<Job>) -> std::thread::JoinHandle<()> {
        std::thread::Builder::new()
            .name(name)
            .spawn(move || {
                // Batch dequeue: after the blocking receive, drain up to
                // DEQUEUE_BATCH already-queued jobs without re-parking.
                // Under a pipelined burst this trades one wakeup for a
                // run of jobs; under light load try_recv misses and the
                // loop parks again, identical to one-at-a-time dequeue.
                const DEQUEUE_BATCH: usize = 16;
                while let Ok(job) = rx.recv() {
                    job();
                    for _ in 1..DEQUEUE_BATCH {
                        match rx.try_recv() {
                            Ok(job) => job(),
                            Err(_) => break,
                        }
                    }
                }
            })
            // analyzer: allow(panic-path) — spawn failure at pool construction is fatal by design
            .expect("failed to spawn pool worker")
    }

    /// Queues a job on the given lane without blocking.
    ///
    /// Jobs for [`Lane::Slow`] fall back to the fast lane when the pool has
    /// no slow workers.
    ///
    /// # Errors
    ///
    /// Returns [`SpawnError::QueueFull`] when the lane's bounded queue is
    /// full (the overload signal TaoBench counts as a shed request) or
    /// [`SpawnError::Shutdown`] after [`ThreadPool::shutdown`].
    pub fn spawn<F>(&self, lane: Lane, job: F) -> Result<(), SpawnError>
    where
        F: FnOnce() + Send + 'static,
    {
        let (tx, counter) = match (lane, &self.slow_tx) {
            (Lane::Slow, Some(tx)) => (tx, &self.stats.slow_jobs),
            _ => (&self.fast_tx, &self.stats.fast_jobs),
        };
        match tx.try_send(Box::new(job)) {
            Ok(()) => {
                counter.inc();
                Ok(())
            }
            Err(TrySendError::Full(_)) => {
                self.stats.shed_jobs.inc();
                Err(SpawnError::QueueFull)
            }
            Err(TrySendError::Disconnected(_)) => Err(SpawnError::Shutdown),
        }
    }

    /// Queues a job, blocking until there is queue space (closed-loop
    /// callers).
    ///
    /// # Errors
    ///
    /// Returns [`SpawnError::Shutdown`] after [`ThreadPool::shutdown`].
    pub fn spawn_blocking<F>(&self, lane: Lane, job: F) -> Result<(), SpawnError>
    where
        F: FnOnce() + Send + 'static,
    {
        let (tx, counter) = match (lane, &self.slow_tx) {
            (Lane::Slow, Some(tx)) => (tx, &self.stats.slow_jobs),
            _ => (&self.fast_tx, &self.stats.fast_jobs),
        };
        tx.send(Box::new(job)).map_err(|_| SpawnError::Shutdown)?;
        counter.inc();
        Ok(())
    }

    /// Pool counters.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Closes the queues and joins every worker, completing queued jobs.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        // Dropping the senders closes the channels; workers drain and exit.
        let (dummy_tx, _) = bounded::<Job>(1);
        let fast = std::mem::replace(&mut self.fast_tx, dummy_tx);
        drop(fast);
        drop(self.slow_tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_jobs_run_before_shutdown_returns() {
        let pool = ThreadPool::new(PoolConfig::single_lane(4));
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..1000 {
            let done = Arc::clone(&done);
            pool.spawn_blocking(Lane::Fast, move || {
                done.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn slow_lane_routes_to_slow_workers() {
        let pool = ThreadPool::new(PoolConfig::fast_slow(1, 1));
        let slow_ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let slow_ran = Arc::clone(&slow_ran);
            pool.spawn_blocking(Lane::Slow, move || {
                slow_ran.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(slow_ran.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn slow_jobs_fall_back_to_fast_lane_without_slow_workers() {
        let pool = ThreadPool::new(PoolConfig::single_lane(2));
        let ran = Arc::new(AtomicUsize::new(0));
        let r2 = Arc::clone(&ran);
        pool.spawn_blocking(Lane::Slow, move || {
            r2.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        pool.shutdown();
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn full_queue_sheds_jobs() {
        // One worker blocked on a gate, queue depth 1: the third job must
        // be shed.
        let pool = ThreadPool::new(PoolConfig::single_lane(1).with_queue_depth(1));
        let (gate_tx, gate_rx) = bounded::<()>(0);
        pool.spawn(Lane::Fast, move || {
            let _ = gate_rx.recv();
        })
        .unwrap();
        // Give the worker a moment to pick up the blocking job.
        std::thread::sleep(std::time::Duration::from_millis(20));
        pool.spawn(Lane::Fast, || {}).unwrap(); // fills the queue
        let shed = pool.spawn(Lane::Fast, || {});
        assert_eq!(shed, Err(SpawnError::QueueFull));
        assert_eq!(pool.stats().shed_jobs(), 1);
        gate_tx.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn stats_count_lane_usage() {
        let pool = ThreadPool::new(PoolConfig::fast_slow(1, 1));
        for _ in 0..5 {
            pool.spawn_blocking(Lane::Fast, || {}).unwrap();
        }
        for _ in 0..3 {
            pool.spawn_blocking(Lane::Slow, || {}).unwrap();
        }
        // Counters update before shutdown completes.
        assert_eq!(pool.stats().fast_jobs(), 5);
        assert_eq!(pool.stats().slow_jobs(), 3);
        pool.shutdown();
    }

    #[test]
    fn worker_count_reflects_config() {
        let pool = ThreadPool::new(PoolConfig::fast_slow(3, 2));
        assert_eq!(pool.worker_count(), 5);
        pool.shutdown();
    }

    #[test]
    fn drop_joins_workers() {
        let done = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(PoolConfig::single_lane(2));
            for _ in 0..100 {
                let done = Arc::clone(&done);
                pool.spawn_blocking(Lane::Fast, move || {
                    done.fetch_add(1, Ordering::Relaxed);
                })
                .unwrap();
            }
            // No explicit shutdown: Drop must drain.
        }
        assert_eq!(done.load(Ordering::Relaxed), 100);
    }
}
