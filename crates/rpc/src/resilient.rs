//! A resilient client wrapper: retries with deterministic backoff, a
//! retry budget against retry storms, a circuit breaker, and per-attempt
//! deadlines.
//!
//! The wrapper composes the [`dcperf_resilience`] primitives around any
//! transport that can issue a single attempt ([`ResilientTransport`]).
//! All randomness (backoff jitter) derives from a caller-provided seed
//! and a per-call counter, so two runs with the same seed produce the
//! same retry schedule — chaos benchmarks stay reproducible.

use crate::frame::{Response, RpcError};
use dcperf_resilience::{BreakerConfig, CircuitBreaker, RetryBudget, RetryPolicy};
use dcperf_telemetry::{metrics, Counter, Telemetry};
use dcperf_util::SplitMix64;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One attempt against the underlying transport.
///
/// `deadline` is the remaining per-attempt budget; implementations carry
/// it in the request frame when the transport supports it.
pub trait ResilientTransport {
    /// Issues a single attempt (no retries at this layer).
    ///
    /// # Errors
    ///
    /// Returns the transport's typed [`RpcError`].
    fn call_once(
        &self,
        method: &str,
        body: Vec<u8>,
        deadline: Option<Duration>,
    ) -> Result<Response, RpcError>;

    /// Issues one pipelined attempt per body (no retries at this layer).
    ///
    /// The default loops [`ResilientTransport::call_once`], so existing
    /// transports keep working; pipelining transports override it to put
    /// the whole burst in flight at once. Implementations must return
    /// exactly one outcome per body, in issue order.
    fn call_many_once(
        &self,
        method: &str,
        bodies: Vec<Vec<u8>>,
        deadline: Option<Duration>,
    ) -> Vec<Result<Response, RpcError>> {
        bodies
            .into_iter()
            .map(|body| self.call_once(method, body, deadline))
            .collect()
    }
}

impl ResilientTransport for crate::client::InProcClient {
    fn call_once(
        &self,
        method: &str,
        body: Vec<u8>,
        deadline: Option<Duration>,
    ) -> Result<Response, RpcError> {
        match deadline {
            Some(budget) => self.call_with_deadline(method, body, budget),
            None => self.call(method, body),
        }
    }

    fn call_many_once(
        &self,
        method: &str,
        bodies: Vec<Vec<u8>>,
        deadline: Option<Duration>,
    ) -> Vec<Result<Response, RpcError>> {
        match deadline {
            Some(budget) => self.call_many_with_deadline(method, bodies, budget),
            None => self.call_many(method, bodies),
        }
    }
}

/// A [`TcpClient`](crate::client::TcpClient) is single-connection and
/// `&mut`; wrap it in a mutex to present the shared-attempt interface.
impl ResilientTransport for std::sync::Mutex<crate::client::TcpClient> {
    fn call_once(
        &self,
        method: &str,
        body: Vec<u8>,
        deadline: Option<Duration>,
    ) -> Result<Response, RpcError> {
        let mut client = self.lock().unwrap_or_else(|e| e.into_inner());
        match deadline {
            Some(budget) => client.call_with_deadline(method, body, budget),
            None => client.call(method, body),
        }
    }

    fn call_many_once(
        &self,
        method: &str,
        bodies: Vec<Vec<u8>>,
        deadline: Option<Duration>,
    ) -> Vec<Result<Response, RpcError>> {
        let mut client = self.lock().unwrap_or_else(|e| e.into_inner());
        match deadline {
            Some(budget) => client.call_many_with_deadline(method, bodies, budget),
            None => client.call_many(method, bodies),
        }
    }
}

impl ResilientTransport for crate::client::TcpClientPool {
    fn call_once(
        &self,
        method: &str,
        body: Vec<u8>,
        deadline: Option<Duration>,
    ) -> Result<Response, RpcError> {
        match deadline {
            Some(budget) => self.call_with_deadline(method, body, budget),
            None => self.call(method, body),
        }
    }

    fn call_many_once(
        &self,
        method: &str,
        bodies: Vec<Vec<u8>>,
        deadline: Option<Duration>,
    ) -> Vec<Result<Response, RpcError>> {
        match deadline {
            Some(budget) => self.call_many_with_deadline(method, bodies, budget),
            None => self.call_many(method, bodies),
        }
    }
}

/// Retries, budget, breaker, and deadlines around a transport.
///
/// Failure handling per attempt:
///
/// * breaker open → [`RpcError::CircuitOpen`] without touching the wire;
/// * retryable errors (overload, timeout, I/O, expired deadline,
///   disconnect) consume a retry-budget token and back off;
/// * non-retryable errors (application errors, worker panics, malformed
///   frames) return immediately;
/// * transport-level failures count against the breaker; application
///   errors count as breaker successes (the service *answered*).
pub struct ResilientClient<C> {
    inner: C,
    policy: RetryPolicy,
    budget: Arc<RetryBudget>,
    breaker: Arc<CircuitBreaker>,
    attempt_deadline: Option<Duration>,
    seed: u64,
    calls: AtomicU64,
    retries: Arc<Counter>,
    budget_exhausted: Arc<Counter>,
}

impl<C> std::fmt::Debug for ResilientClient<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientClient")
            .field("policy", &self.policy)
            .field("breaker_state", &self.breaker.state())
            .finish_non_exhaustive()
    }
}

impl<C: ResilientTransport> ResilientClient<C> {
    /// Wraps `inner` with `policy`, registering resilience counters
    /// (`rpc.resilient.*`, `rpc.breaker.*`) in `telemetry`.
    ///
    /// Defaults: unlimited retry budget, default [`BreakerConfig`], no
    /// per-attempt deadline, seed `0`.
    pub fn new(inner: C, policy: RetryPolicy, telemetry: &Telemetry) -> Self {
        Self {
            inner,
            policy,
            budget: Arc::new(RetryBudget::unlimited()),
            breaker: Arc::new(CircuitBreaker::with_telemetry(
                BreakerConfig::default(),
                telemetry,
                metrics::PREFIX_RPC_BREAKER,
            )),
            attempt_deadline: None,
            seed: 0,
            calls: AtomicU64::new(0),
            retries: telemetry.counter(metrics::RPC_RESILIENT_RETRIES),
            budget_exhausted: telemetry.counter(metrics::RPC_RESILIENT_BUDGET_EXHAUSTED),
        }
    }

    /// Replaces the retry budget (shared across clones via `Arc`).
    #[must_use]
    pub fn with_budget(mut self, budget: Arc<RetryBudget>) -> Self {
        self.budget = budget;
        self
    }

    /// Replaces the circuit breaker (share one `Arc` across the clients
    /// that target the same backend so they trip together).
    #[must_use]
    pub fn with_breaker(mut self, breaker: Arc<CircuitBreaker>) -> Self {
        self.breaker = breaker;
        self
    }

    /// Sets the per-attempt deadline carried in each request frame.
    #[must_use]
    pub fn with_attempt_deadline(mut self, budget: Duration) -> Self {
        self.attempt_deadline = Some(budget);
        self
    }

    /// Sets the jitter seed; backoff schedules derive from
    /// `(seed, call index)` only.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Calls `method`, retrying per the policy.
    ///
    /// # Errors
    ///
    /// The final attempt's error, or [`RpcError::CircuitOpen`] if the
    /// breaker rejected the call.
    pub fn call(&self, method: &str, body: Vec<u8>) -> Result<Response, RpcError> {
        // ordering: call index only seeds jitter; uniqueness is all that matters
        let call_index = self.calls.fetch_add(1, Ordering::Relaxed);
        let attempt_seed = self.seed ^ SplitMix64::mix(call_index.wrapping_add(1));
        let mut delays = self.policy.schedule(attempt_seed);
        // Each logical call deposits into the shared retry budget; only
        // retries spend, so sustained failure caps the retry ratio.
        self.budget.deposit();
        loop {
            if !self.breaker.allow() {
                return Err(RpcError::CircuitOpen);
            }
            match self
                .inner
                .call_once(method, body.clone(), self.attempt_deadline)
            {
                Ok(resp) => {
                    self.breaker.record_success();
                    return Ok(resp);
                }
                Err(err) => {
                    if counts_as_breaker_failure(&err) {
                        self.breaker.record_failure();
                    } else {
                        self.breaker.record_success();
                    }
                    if !err.is_retryable() {
                        return Err(err);
                    }
                    let Some(delay) = delays.next() else {
                        return Err(err);
                    };
                    if !self.budget.try_spend() {
                        self.budget_exhausted.inc();
                        return Err(err);
                    }
                    self.retries.inc();
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                }
            }
        }
    }

    /// Pipelined batch call: all bodies go down as one burst per attempt
    /// round, retrying only the elements that failed retryably.
    ///
    /// Resilience semantics per element match [`ResilientClient::call`]:
    /// each correlated outcome is recorded against the breaker exactly
    /// once per attempt (a burst of N failures is N breaker outcomes, not
    /// N × attempts, and never double-counted within a round), each
    /// element deposits into the retry budget as its own logical call,
    /// and each retried element spends its own budget token. The backoff
    /// schedule is drawn once per batch, so a retry round sleeps once,
    /// not once per element.
    pub fn call_many(&self, method: &str, bodies: Vec<Vec<u8>>) -> Vec<Result<Response, RpcError>> {
        let n = bodies.len();
        // ordering: call index only seeds jitter; uniqueness is all that matters
        let call_index = self.calls.fetch_add(1, Ordering::Relaxed);
        let attempt_seed = self.seed ^ SplitMix64::mix(call_index.wrapping_add(1));
        let mut delays = self.policy.schedule(attempt_seed);
        let mut results: Vec<Option<Result<Response, RpcError>>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            self.budget.deposit();
        }
        let mut outstanding: Vec<(usize, Vec<u8>)> = bodies.into_iter().enumerate().collect();
        while !outstanding.is_empty() {
            if !self.breaker.allow() {
                for (idx, _) in outstanding.drain(..) {
                    results[idx] = Some(Err(RpcError::CircuitOpen));
                }
                break;
            }
            let attempt_bodies: Vec<Vec<u8>> =
                outstanding.iter().map(|(_, body)| body.clone()).collect();
            let outcomes = self
                .inner
                .call_many_once(method, attempt_bodies, self.attempt_deadline);
            let mut retryable: Vec<(usize, Vec<u8>, RpcError)> = Vec::new();
            for ((idx, body), outcome) in std::mem::take(&mut outstanding).into_iter().zip(outcomes)
            {
                match outcome {
                    Ok(resp) => {
                        self.breaker.record_success();
                        results[idx] = Some(Ok(resp));
                    }
                    Err(err) => {
                        if counts_as_breaker_failure(&err) {
                            self.breaker.record_failure();
                        } else {
                            self.breaker.record_success();
                        }
                        if err.is_retryable() {
                            retryable.push((idx, body, err));
                        } else {
                            results[idx] = Some(Err(err));
                        }
                    }
                }
            }
            if retryable.is_empty() {
                break;
            }
            let Some(delay) = delays.next() else {
                // Schedule exhausted: the last errors are final.
                for (idx, _, err) in retryable {
                    results[idx] = Some(Err(err));
                }
                break;
            };
            for (idx, body, err) in retryable {
                if self.budget.try_spend() {
                    self.retries.inc();
                    outstanding.push((idx, body));
                } else {
                    self.budget_exhausted.inc();
                    results[idx] = Some(Err(err));
                }
            }
            if !outstanding.is_empty() && !delay.is_zero() {
                std::thread::sleep(delay);
            }
        }
        results
            .into_iter()
            .map(|slot| slot.unwrap_or(Err(RpcError::Disconnected)))
            .collect()
    }

    /// Retries issued across all calls.
    pub fn retries(&self) -> u64 {
        self.retries.get()
    }

    /// Calls abandoned because the retry budget was empty.
    pub fn budget_exhausted(&self) -> u64 {
        self.budget_exhausted.get()
    }

    /// The breaker guarding this client.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

/// Whether an error reflects the *backend's* health (trips the breaker)
/// as opposed to a well-formed answer the application disliked.
fn counts_as_breaker_failure(err: &RpcError) -> bool {
    match err {
        RpcError::Io(_)
        | RpcError::Overloaded
        | RpcError::DeadlineExceeded
        | RpcError::Timeout
        | RpcError::Disconnected
        | RpcError::WorkerPanic(_) => true,
        RpcError::Application(_)
        | RpcError::Wire(_)
        | RpcError::CircuitOpen
        | RpcError::CorrelationMismatch { .. } => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{Request, Status};
    use crate::pool::PoolConfig;
    use crate::server::InProcServer;
    use std::sync::Mutex;

    /// A scripted transport: pops the next outcome per attempt.
    struct Scripted {
        outcomes: Mutex<Vec<Result<Response, RpcError>>>,
        attempts: AtomicU64,
    }

    impl Scripted {
        fn new(mut outcomes: Vec<Result<Response, RpcError>>) -> Self {
            outcomes.reverse();
            Self {
                outcomes: Mutex::new(outcomes),
                attempts: AtomicU64::new(0),
            }
        }
    }

    impl ResilientTransport for Scripted {
        fn call_once(
            &self,
            _method: &str,
            _body: Vec<u8>,
            _deadline: Option<Duration>,
        ) -> Result<Response, RpcError> {
            self.attempts.fetch_add(1, Ordering::Relaxed);
            self.outcomes
                .lock()
                .unwrap()
                .pop()
                .unwrap_or(Err(RpcError::Disconnected))
        }
    }

    fn fast_policy(attempts: u32) -> RetryPolicy {
        RetryPolicy::new(attempts, Duration::from_micros(10))
    }

    #[test]
    fn retries_until_success() {
        let telemetry = Telemetry::new();
        let transport = Scripted::new(vec![
            Err(RpcError::Overloaded),
            Err(RpcError::Timeout),
            Ok(Response::ok(vec![9])),
        ]);
        let client = ResilientClient::new(transport, fast_policy(4), &telemetry);
        let resp = client.call("m", vec![]).unwrap();
        assert_eq!(resp.body, vec![9]);
        assert_eq!(client.retries(), 2);
        assert_eq!(client.inner().attempts.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn non_retryable_errors_fail_fast() {
        let telemetry = Telemetry::new();
        let transport = Scripted::new(vec![
            Err(RpcError::Application("bad key".into())),
            Ok(Response::ok(vec![])),
        ]);
        let client = ResilientClient::new(transport, fast_policy(4), &telemetry);
        match client.call("m", vec![]) {
            Err(RpcError::Application(m)) => assert_eq!(m, "bad key"),
            other => panic!("expected fail-fast application error, got {other:?}"),
        }
        assert_eq!(client.retries(), 0);
    }

    #[test]
    fn exhausted_attempts_return_last_error() {
        let telemetry = Telemetry::new();
        let transport = Scripted::new(vec![
            Err(RpcError::Timeout),
            Err(RpcError::Timeout),
            Err(RpcError::Overloaded),
        ]);
        let client = ResilientClient::new(transport, fast_policy(3), &telemetry);
        match client.call("m", vec![]) {
            Err(RpcError::Overloaded) => {}
            other => panic!("expected last error, got {other:?}"),
        }
        assert_eq!(client.retries(), 2);
    }

    #[test]
    fn empty_retry_budget_blocks_retries() {
        let telemetry = Telemetry::new();
        let transport = Scripted::new(vec![Err(RpcError::Timeout), Ok(Response::ok(vec![]))]);
        // deposit_ratio 0: the budget never refills, and it starts full —
        // drain it first so the retry has no token.
        let budget = Arc::new(RetryBudget::new(1, 0.0));
        assert!(budget.try_spend());
        let client =
            ResilientClient::new(transport, fast_policy(4), &telemetry).with_budget(budget);
        match client.call("m", vec![]) {
            Err(RpcError::Timeout) => {}
            other => panic!("expected budget-blocked timeout, got {other:?}"),
        }
        assert_eq!(client.budget_exhausted(), 1);
        assert_eq!(client.retries(), 0);
    }

    #[test]
    fn open_breaker_rejects_without_touching_transport() {
        let telemetry = Telemetry::new();
        let transport = Scripted::new(vec![]);
        let config = BreakerConfig {
            min_calls: 1,
            cooldown: Duration::from_secs(3600),
            ..BreakerConfig::default()
        };
        let breaker = Arc::new(CircuitBreaker::with_telemetry(
            config,
            &telemetry,
            metrics::PREFIX_RPC_BREAKER,
        ));
        breaker.record_failure(); // trips at min_calls=1
        let client = ResilientClient::new(transport, RetryPolicy::no_retries(), &telemetry)
            .with_breaker(Arc::clone(&breaker));
        match client.call("m", vec![]) {
            Err(RpcError::CircuitOpen) => {}
            other => panic!("expected CircuitOpen, got {other:?}"),
        }
        assert_eq!(client.inner().attempts.load(Ordering::Relaxed), 0);
        assert_eq!(breaker.rejected(), 1);
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("rpc.breaker.open_transitions"), Some(1));
        assert_eq!(snap.counter("rpc.breaker.rejected"), Some(1));
    }

    #[test]
    fn repeated_transport_failures_trip_the_breaker() {
        let telemetry = Telemetry::new();
        let outcomes: Vec<Result<Response, RpcError>> =
            (0..32).map(|_| Err(RpcError::Timeout)).collect();
        let transport = Scripted::new(outcomes);
        let config = BreakerConfig {
            min_calls: 4,
            cooldown: Duration::from_secs(3600),
            ..BreakerConfig::default()
        };
        let breaker = Arc::new(CircuitBreaker::with_telemetry(
            config,
            &telemetry,
            metrics::PREFIX_RPC_BREAKER,
        ));
        let client = ResilientClient::new(transport, RetryPolicy::no_retries(), &telemetry)
            .with_breaker(Arc::clone(&breaker));
        let mut saw_circuit_open = false;
        for _ in 0..8 {
            if matches!(client.call("m", vec![]), Err(RpcError::CircuitOpen)) {
                saw_circuit_open = true;
                break;
            }
        }
        assert!(saw_circuit_open, "breaker never opened");
        assert_eq!(breaker.open_transitions(), 1);
    }

    #[test]
    fn wraps_a_real_inproc_server() {
        let server = InProcServer::start(
            |req: &Request| Response::ok(req.body.clone()),
            PoolConfig::single_lane(2),
        );
        let inproc = server.client();
        let telemetry_snapshot_source = inproc.telemetry().clone();
        let client =
            ResilientClient::new(server.client(), fast_policy(3), &telemetry_snapshot_source)
                .with_attempt_deadline(Duration::from_secs(5));
        let resp = client.call("echo", vec![1, 2]).unwrap();
        assert_eq!(resp.body, vec![1, 2]);
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(client.retries(), 0);
        server.shutdown();
    }
}
