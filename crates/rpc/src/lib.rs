//! A Thrift-style RPC stack built from scratch for DCPerf-RS.
//!
//! Every DCPerf benchmark "is designed as a client-server application …
//! \[communicating\] via the Thrift RPC protocol. This emulates not only
//! the communication pattern in production, but also the RPC 'datacenter
//! tax', which consumes a significant amount of CPU cycles and memory"
//! (§3.1). This crate provides that substrate:
//!
//! * [`wire`] — compact binary encoding: ULEB128 varints, zigzag signed
//!   integers, length-prefixed strings and binaries.
//! * [`value`] — a dynamically-typed, Thrift-like value model
//!   ([`Value`]) with tagged struct/list/map encoding, used both as the
//!   RPC payload format and as the serialization "tax" kernel.
//! * [`frame`] — request/response message framing.
//! * [`pipeline`] — pipelining knobs ([`PipelineConfig`]) and the
//!   `rpc.pipeline.*` / `rpc.batch.*` depth and batching telemetry:
//!   connections read ahead, complete out of order by correlation id,
//!   and coalesce response bursts into single writes.
//! * [`pool`] — fixed worker thread pools with *fast/slow lane* routing,
//!   mirroring TAO's separate thread pools for cache hits and misses.
//! * [`server`] / [`client`] — in-process and TCP transports with
//!   synchronous calls and parallel fan-out.
//! * [`resilient`] — a client wrapper adding deadlines, retries with
//!   deterministic backoff, retry budgets, and circuit breaking from
//!   [`dcperf_resilience`].
//!
//! # Examples
//!
//! An in-process echo service:
//!
//! ```
//! use dcperf_rpc::{InProcServer, PoolConfig, Request, Response};
//!
//! let server = InProcServer::start(
//!     |req: &Request| Response::ok(req.body.clone()),
//!     PoolConfig::single_lane(2),
//! );
//! let client = server.client();
//! let reply = client.call("echo", b"hello".to_vec())?;
//! assert_eq!(reply.body, b"hello");
//! server.shutdown();
//! # Ok::<(), dcperf_rpc::RpcError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod pipeline;
pub mod pool;
pub mod resilient;
pub mod server;
pub mod stats;
pub mod value;
pub mod wire;

pub use client::{FanoutResult, InProcClient, TcpClient, TcpClientPool};
pub use frame::{Request, Response, RpcError, Status};
pub use pipeline::{PipelineConfig, PipelineStats};
pub use pool::{Lane, PoolConfig, ThreadPool};
pub use resilient::{ResilientClient, ResilientTransport};
pub use server::{InProcServer, TcpServer};
pub use stats::RpcStats;
pub use value::Value;
