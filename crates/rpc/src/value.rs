//! A dynamically-typed, Thrift-like value model with tagged binary
//! encoding.
//!
//! Production services serialize deeply nested structures (feed stories,
//! cache objects, query rows) through Thrift; [`Value`] reproduces that
//! shape — bools, integers, doubles, strings, binaries, lists, maps, and
//! field-tagged structs — along with a compact self-describing encoding.
//! FeedSim and TaoBench use it for their payloads, and the serialization
//! datacenter-tax microbenchmark measures its encode/decode cost.

use crate::wire::{self, Reader, WireError};
use std::collections::BTreeMap;

// Type tags, one byte each.
const TAG_BOOL_FALSE: u8 = 0x01;
const TAG_BOOL_TRUE: u8 = 0x02;
const TAG_I64: u8 = 0x03;
const TAG_F64: u8 = 0x04;
const TAG_STR: u8 = 0x05;
const TAG_BIN: u8 = 0x06;
const TAG_LIST: u8 = 0x07;
const TAG_MAP: u8 = 0x08;
const TAG_STRUCT: u8 = 0x09;

/// Sanity cap on decoded collection sizes, to keep malformed buffers from
/// triggering enormous allocations.
const MAX_COLLECTION: u64 = 1 << 28;

/// A dynamically-typed RPC value.
///
/// # Examples
///
/// ```
/// use dcperf_rpc::Value;
///
/// let story = Value::Struct(vec![
///     (1, Value::I64(42)),                    // story id
///     (2, Value::Str("hello world".into())),  // text
///     (3, Value::List(vec![Value::F64(0.9), Value::F64(0.1)])), // features
/// ]);
/// let bytes = story.encode();
/// let back = Value::decode(&bytes)?;
/// assert_eq!(story, back);
/// # Ok::<(), dcperf_rpc::wire::WireError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A boolean.
    Bool(bool),
    /// A signed 64-bit integer (zigzag varint on the wire).
    I64(i64),
    /// A double.
    F64(f64),
    /// A UTF-8 string.
    Str(String),
    /// An opaque byte string.
    Bin(Vec<u8>),
    /// A homogeneously-typed-by-convention list.
    List(Vec<Value>),
    /// A string-keyed map.
    Map(BTreeMap<String, Value>),
    /// A struct: ordered `(field id, value)` pairs.
    Struct(Vec<(u32, Value)>),
}

impl Value {
    /// Encodes the value into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        self.encode_into(&mut out);
        out
    }

    /// Appends the encoding of the value to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Value::Bool(false) => out.push(TAG_BOOL_FALSE),
            Value::Bool(true) => out.push(TAG_BOOL_TRUE),
            Value::I64(v) => {
                out.push(TAG_I64);
                wire::write_ivarint(out, *v);
            }
            Value::F64(v) => {
                out.push(TAG_F64);
                wire::write_f64(out, *v);
            }
            Value::Str(s) => {
                out.push(TAG_STR);
                wire::write_str(out, s);
            }
            Value::Bin(b) => {
                out.push(TAG_BIN);
                wire::write_bytes(out, b);
            }
            Value::List(items) => {
                out.push(TAG_LIST);
                wire::write_uvarint(out, items.len() as u64);
                for item in items {
                    item.encode_into(out);
                }
            }
            Value::Map(map) => {
                out.push(TAG_MAP);
                wire::write_uvarint(out, map.len() as u64);
                for (k, v) in map {
                    wire::write_str(out, k);
                    v.encode_into(out);
                }
            }
            Value::Struct(fields) => {
                out.push(TAG_STRUCT);
                wire::write_uvarint(out, fields.len() as u64);
                for (id, v) in fields {
                    wire::write_uvarint(out, *id as u64);
                    v.encode_into(out);
                }
            }
        }
    }

    /// Decodes a value from `buf`, requiring the buffer to be fully
    /// consumed.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on malformed input or trailing bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(buf);
        let v = Self::decode_from(&mut r)?;
        if !r.is_empty() {
            return Err(WireError::InvalidLength(r.remaining() as u64));
        }
        Ok(v)
    }

    /// Decodes a value at the reader's position.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on malformed input.
    pub fn decode_from(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.read_u8()? {
            TAG_BOOL_FALSE => Ok(Value::Bool(false)),
            TAG_BOOL_TRUE => Ok(Value::Bool(true)),
            TAG_I64 => Ok(Value::I64(r.read_ivarint()?)),
            TAG_F64 => Ok(Value::F64(r.read_f64()?)),
            TAG_STR => Ok(Value::Str(r.read_str()?.to_owned())),
            TAG_BIN => Ok(Value::Bin(r.read_bytes()?.to_vec())),
            TAG_LIST => {
                let n = checked_len(r.read_uvarint()?, r)?;
                let mut items = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    items.push(Self::decode_from(r)?);
                }
                Ok(Value::List(items))
            }
            TAG_MAP => {
                let n = checked_len(r.read_uvarint()?, r)?;
                let mut map = BTreeMap::new();
                for _ in 0..n {
                    let k = r.read_str()?.to_owned();
                    let v = Self::decode_from(r)?;
                    map.insert(k, v);
                }
                Ok(Value::Map(map))
            }
            TAG_STRUCT => {
                let n = checked_len(r.read_uvarint()?, r)?;
                let mut fields = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let id = r.read_uvarint()? as u32;
                    let v = Self::decode_from(r)?;
                    fields.push((id, v));
                }
                Ok(Value::Struct(fields))
            }
            other => Err(WireError::UnknownTag(other)),
        }
    }

    /// Looks up a struct field by id. Returns `None` for non-structs.
    pub fn field(&self, id: u32) -> Option<&Value> {
        match self {
            Value::Struct(fields) => fields.iter().find(|(fid, _)| *fid == id).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `i64`, if it is one.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64`, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as bytes, if it is a binary.
    pub fn as_bin(&self) -> Option<&[u8]> {
        match self {
            Value::Bin(b) => Some(b),
            _ => None,
        }
    }

    /// Approximate encoded size in bytes without encoding.
    pub fn encoded_size_hint(&self) -> usize {
        match self {
            Value::Bool(_) => 1,
            Value::I64(_) => 6,
            Value::F64(_) => 9,
            Value::Str(s) => 6 + s.len(),
            Value::Bin(b) => 6 + b.len(),
            Value::List(items) => 6 + items.iter().map(Value::encoded_size_hint).sum::<usize>(),
            Value::Map(map) => {
                6 + map
                    .iter()
                    .map(|(k, v)| 6 + k.len() + v.encoded_size_hint())
                    .sum::<usize>()
            }
            Value::Struct(fields) => {
                6 + fields
                    .iter()
                    .map(|(_, v)| 3 + v.encoded_size_hint())
                    .sum::<usize>()
            }
        }
    }
}

fn checked_len(n: u64, r: &Reader<'_>) -> Result<usize, WireError> {
    // An element costs at least one byte, so a length beyond the remaining
    // buffer (or the absolute cap) is malformed.
    if n > MAX_COLLECTION || n > r.remaining() as u64 {
        return Err(WireError::InvalidLength(n));
    }
    Ok(n as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) {
        let bytes = v.encode();
        let back = Value::decode(&bytes).unwrap();
        assert_eq!(*v, back);
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(&Value::Bool(true));
        round_trip(&Value::Bool(false));
        round_trip(&Value::I64(0));
        round_trip(&Value::I64(i64::MIN));
        round_trip(&Value::I64(i64::MAX));
        round_trip(&Value::F64(-1234.5e-6));
        round_trip(&Value::Str(String::new()));
        round_trip(&Value::Str("日本語 text".into()));
        round_trip(&Value::Bin(vec![0u8; 1000]));
    }

    #[test]
    fn nested_structures_round_trip() {
        let mut map = BTreeMap::new();
        map.insert("scores".into(), Value::List(vec![Value::F64(1.0)]));
        map.insert("name".into(), Value::Str("obj".into()));
        let v = Value::Struct(vec![
            (1, Value::I64(7)),
            (2, Value::Map(map)),
            (
                9,
                Value::List(vec![
                    Value::Struct(vec![(1, Value::Bool(true))]),
                    Value::Struct(vec![]),
                ]),
            ),
        ]);
        round_trip(&v);
    }

    #[test]
    fn empty_collections_round_trip() {
        round_trip(&Value::List(vec![]));
        round_trip(&Value::Map(BTreeMap::new()));
        round_trip(&Value::Struct(vec![]));
    }

    #[test]
    fn field_lookup() {
        let v = Value::Struct(vec![(1, Value::I64(5)), (3, Value::Str("x".into()))]);
        assert_eq!(v.field(1).and_then(Value::as_i64), Some(5));
        assert_eq!(v.field(3).and_then(Value::as_str), Some("x"));
        assert!(v.field(2).is_none());
        assert!(Value::I64(1).field(1).is_none());
    }

    #[test]
    fn accessors_reject_wrong_types() {
        assert_eq!(Value::Str("5".into()).as_i64(), None);
        assert_eq!(Value::I64(5).as_str(), None);
        assert_eq!(Value::I64(5).as_f64(), None);
        assert_eq!(Value::Str("b".into()).as_bin(), None);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = Value::Bool(true).encode();
        bytes.push(0x00);
        assert!(Value::decode(&bytes).is_err());
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(Value::decode(&[0x7F]), Err(WireError::UnknownTag(0x7F)));
    }

    #[test]
    fn huge_claimed_list_rejected_without_allocation() {
        let mut bytes = vec![TAG_LIST];
        crate::wire::write_uvarint(&mut bytes, u64::MAX / 2);
        assert!(matches!(
            Value::decode(&bytes),
            Err(WireError::InvalidLength(_))
        ));
    }

    #[test]
    fn size_hint_is_an_upper_bound_for_typical_values() {
        let v = Value::Struct(vec![
            (1, Value::I64(123)),
            (2, Value::Str("hello".into())),
            (3, Value::List(vec![Value::F64(1.0); 10])),
        ]);
        assert!(v.encoded_size_hint() >= v.encode().len());
    }

    #[test]
    fn truncated_nested_value_is_error_not_panic() {
        let v = Value::List(vec![Value::I64(1), Value::Str("abc".into())]);
        let bytes = v.encode();
        for cut in 0..bytes.len() {
            let _ = Value::decode(&bytes[..cut]); // must not panic
        }
    }
}
