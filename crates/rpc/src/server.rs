//! RPC servers: in-process and TCP.
//!
//! The in-process server is the workhorse of the single-machine DCPerf-RS
//! benchmarks (the paper's benchmarks run all components on one server in
//! most cases); requests still traverse real serialization, bounded queues,
//! and a worker thread pool, so the RPC datacenter tax is paid. The TCP
//! server provides the distributed deployment shape for the benchmarks
//! whose clients run on other machines.

use crate::frame::{append_frame, read_frame, Request, Response};
use crate::pipeline::{PipelineConfig, PipelineStats};
use crate::pool::{Lane, PoolConfig, SpawnError, ThreadPool};
use crate::stats::RpcStats;
use crossbeam::channel;
use dcperf_resilience::Deadline;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
#[cfg(feature = "fault-injection")]
use std::sync::Mutex;

/// The server-side request handler.
pub type Handler = dyn Fn(&Request) -> Response + Send + Sync + 'static;

/// Routes a request to a [`Lane`] before it is queued.
pub type Classifier = dyn Fn(&Request) -> Lane + Send + Sync + 'static;

pub(crate) struct ServerCore {
    pub(crate) handler: Arc<Handler>,
    pub(crate) classifier: Arc<Classifier>,
    pub(crate) pool: ThreadPool,
    pub(crate) stats: Arc<RpcStats>,
    pub(crate) pipeline: Arc<PipelineStats>,
    pub(crate) pipeline_cfg: PipelineConfig,
    pub(crate) telemetry: dcperf_telemetry::Telemetry,
    /// Fault injector applied on the dispatch path (chaos scenarios only).
    #[cfg(feature = "fault-injection")]
    pub(crate) fault_plan: Mutex<Option<Arc<dcperf_resilience::FaultPlan>>>,
}

/// Builds the shed response for a request whose deadline has expired.
fn expired_response(seq: u64, corr: u64) -> Response {
    let mut resp = Response::deadline_exceeded();
    resp.seq = seq;
    resp.corr = corr;
    resp
}

impl ServerCore {
    fn new(
        handler: Arc<Handler>,
        classifier: Arc<Classifier>,
        config: PoolConfig,
        pipeline_cfg: PipelineConfig,
    ) -> Self {
        // One registry per server: transport counters (`rpc.*`), pool
        // counters (`rpc.pool.*`), and pipelining depth (`rpc.pipeline.*`,
        // `rpc.batch.*`) land in the same snapshot.
        let telemetry = dcperf_telemetry::Telemetry::new();
        Self {
            handler,
            classifier,
            pool: ThreadPool::with_telemetry(config, &telemetry),
            stats: Arc::new(RpcStats::with_telemetry(
                &telemetry,
                dcperf_telemetry::metrics::PREFIX_RPC,
            )),
            pipeline: Arc::new(PipelineStats::with_telemetry(&telemetry)),
            pipeline_cfg,
            telemetry,
            #[cfg(feature = "fault-injection")]
            fault_plan: Mutex::new(None),
        }
    }

    #[cfg(feature = "fault-injection")]
    pub(crate) fn install_fault_plan(&self, plan: Option<Arc<dcperf_resilience::FaultPlan>>) {
        if let Ok(mut slot) = self.fault_plan.lock() {
            *slot = plan;
        }
    }

    /// Dispatches a request through the pool; `reply` receives the
    /// response. `blocking` selects closed-loop (wait for queue space) vs
    /// open-loop (shed on full queue) semantics.
    pub(crate) fn dispatch(
        &self,
        req: Request,
        blocking: bool,
        reply: impl FnOnce(Response) + Send + 'static,
    ) {
        // Pin the wire budget (relative microseconds) to an absolute
        // instant the moment the request enters the server.
        let deadline = (req.deadline_us > 0).then(|| Deadline::from_budget_us(req.deadline_us));
        let seq = req.seq;
        let corr = req.corr;
        // Shed already-expired work before it consumes queue space.
        if deadline.is_some_and(|d| d.expired()) {
            self.stats.record_deadline_shed();
            reply(expired_response(seq, corr));
            return;
        }
        let lane = (self.classifier)(&req);
        let handler = Arc::clone(&self.handler);
        let stats = Arc::clone(&self.stats);
        #[cfg(feature = "fault-injection")]
        let plan = self.fault_plan.lock().ok().and_then(|slot| slot.clone());
        let job = move || {
            // Re-check at dequeue / handler entry: queueing delay may have
            // consumed the whole budget, and a reply the client already
            // gave up on is pure waste.
            if deadline.is_some_and(|d| d.expired()) {
                stats.record_deadline_shed();
                reply(expired_response(seq, corr));
                return;
            }
            #[cfg(feature = "fault-injection")]
            if let Some(plan) = &plan {
                use dcperf_resilience::FaultOutcome;
                match plan.apply() {
                    FaultOutcome::Pass => {}
                    FaultOutcome::Error => {
                        let mut resp = Response::error("injected fault");
                        resp.seq = seq;
                        resp.corr = corr;
                        reply(resp);
                        return;
                    }
                    FaultOutcome::Overload => {
                        let mut resp = Response::overloaded();
                        resp.seq = seq;
                        resp.corr = corr;
                        reply(resp);
                        return;
                    }
                }
                // Injected latency may have burned the remaining budget.
                if deadline.is_some_and(|d| d.expired()) {
                    stats.record_deadline_shed();
                    reply(expired_response(seq, corr));
                    return;
                }
            }
            let mut resp = handler(&req);
            resp.seq = seq;
            resp.corr = corr;
            reply(resp);
        };
        let outcome = if blocking {
            self.pool.spawn_blocking(lane, job)
        } else {
            self.pool.spawn(lane, job)
        };
        match outcome {
            Ok(()) => {}
            Err(SpawnError::QueueFull) | Err(SpawnError::Shutdown) => {
                // The job was never queued, so `reply` was consumed by the
                // closure that the pool rejected and dropped; overload is
                // signalled through the stats instead and the caller
                // observes a dropped reply channel.
            }
        }
    }
}

/// An in-process RPC server: clients and server share the process, but
/// every call pays serialization, queueing, and cross-thread dispatch.
///
/// # Examples
///
/// See the [crate-level example](crate).
pub struct InProcServer {
    core: Arc<ServerCore>,
}

impl std::fmt::Debug for InProcServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InProcServer")
            .field("workers", &self.core.pool.worker_count())
            .finish()
    }
}

impl InProcServer {
    /// Starts the server with every request routed to the fast lane.
    pub fn start<H>(handler: H, config: PoolConfig) -> Self
    where
        H: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        Self::start_with_classifier(handler, |_| Lane::Fast, config)
    }

    /// Starts the server with a fast/slow classifier (TAO-style).
    pub fn start_with_classifier<H, C>(handler: H, classifier: C, config: PoolConfig) -> Self
    where
        H: Fn(&Request) -> Response + Send + Sync + 'static,
        C: Fn(&Request) -> Lane + Send + Sync + 'static,
    {
        Self {
            core: Arc::new(ServerCore::new(
                Arc::new(handler),
                Arc::new(classifier),
                config,
                PipelineConfig::default(),
            )),
        }
    }

    /// Creates a client handle. Handles are cheap to clone and share.
    pub fn client(&self) -> crate::client::InProcClient {
        crate::client::InProcClient::new(Arc::clone(&self.core))
    }

    /// Transport counters (shared with all clients).
    pub fn stats(&self) -> &RpcStats {
        &self.core.stats
    }

    /// Pipelining depth and batching telemetry (`rpc.pipeline.*`,
    /// `rpc.batch.*`), shared with in-process pipelined clients.
    pub fn pipeline(&self) -> &PipelineStats {
        &self.core.pipeline
    }

    /// The server's telemetry registry (`rpc.*` transport counters and
    /// `rpc.pool.*` lane counters). Snapshot it to observe everything the
    /// server recorded.
    pub fn telemetry(&self) -> &dcperf_telemetry::Telemetry {
        &self.core.telemetry
    }

    /// Installs (or clears, with `None`) a [`dcperf_resilience::FaultPlan`]
    /// applied to every dispatched request: injected latency is paid on
    /// the worker thread, injected errors and overloads short-circuit the
    /// handler. Only compiled with the `fault-injection` feature, so the
    /// default hot path carries no injector branch.
    #[cfg(feature = "fault-injection")]
    pub fn install_fault_plan(&self, plan: Option<Arc<dcperf_resilience::FaultPlan>>) {
        self.core.install_fault_plan(plan);
    }

    /// Shuts the pool down, draining queued requests.
    pub fn shutdown(self) {
        // Last handle to the core drops the pool, which drains and joins.
        drop(self);
    }
}

/// A TCP RPC server on localhost or beyond, framing requests per
/// [`crate::frame`].
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    core: Arc<ServerCore>,
}

impl std::fmt::Debug for TcpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl TcpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the listener cannot be bound.
    pub fn bind<H>(addr: &str, handler: H, config: PoolConfig) -> std::io::Result<Self>
    where
        H: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        Self::bind_with_classifier(addr, handler, |_| Lane::Fast, config)
    }

    /// Binds with an explicit pipelining configuration (every request
    /// routed to the fast lane). Use [`PipelineConfig::disabled`] for
    /// strict one-request-per-turn v1 semantics.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the listener cannot be bound.
    pub fn bind_with_pipeline<H>(
        addr: &str,
        handler: H,
        config: PoolConfig,
        pipeline: PipelineConfig,
    ) -> std::io::Result<Self>
    where
        H: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        Self::bind_full(addr, handler, |_| Lane::Fast, config, pipeline)
    }

    /// Binds with a fast/slow classifier.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the listener cannot be bound.
    pub fn bind_with_classifier<H, C>(
        addr: &str,
        handler: H,
        classifier: C,
        config: PoolConfig,
    ) -> std::io::Result<Self>
    where
        H: Fn(&Request) -> Response + Send + Sync + 'static,
        C: Fn(&Request) -> Lane + Send + Sync + 'static,
    {
        Self::bind_full(addr, handler, classifier, config, PipelineConfig::default())
    }

    /// Binds with a classifier and an explicit pipelining configuration.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the listener cannot be bound.
    pub fn bind_full<H, C>(
        addr: &str,
        handler: H,
        classifier: C,
        config: PoolConfig,
        pipeline: PipelineConfig,
    ) -> std::io::Result<Self>
    where
        H: Fn(&Request) -> Response + Send + Sync + 'static,
        C: Fn(&Request) -> Lane + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let core = Arc::new(ServerCore::new(
            Arc::new(handler),
            Arc::new(classifier),
            config,
            pipeline,
        ));

        let stop2 = Arc::clone(&stop);
        let core2 = Arc::clone(&core);
        let accept_thread = std::thread::Builder::new()
            .name("rpc-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    // ordering: advisory stop flag; shutdown pokes the socket to force a check
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let core = Arc::clone(&core2);
                    let stop = Arc::clone(&stop2);
                    // Connection threads are detached: they hold their own
                    // Arc to the core and exit when the peer disconnects or
                    // the stop flag trips (observed via the read timeout).
                    // Joining them here would deadlock shutdown against
                    // clients that keep their connections open.
                    let _ = std::thread::Builder::new()
                        .name("rpc-conn".into())
                        .spawn(move || Self::serve_connection(stream, core, stop));
                }
            })?;

        Ok(Self {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
            core,
        })
    }

    /// Serves one connection with a pipelined read-ahead window.
    ///
    /// Three moving parts per connection:
    ///
    /// * the *reader* (this thread) decodes frames and dispatches them
    ///   into the worker pool, blocking on a bounded permit channel once
    ///   `max_inflight` requests are outstanding (the read-ahead window);
    /// * the *pool workers* complete requests in whatever order their
    ///   lanes finish them and enqueue encoded responses — out-of-order
    ///   completion is matched up client-side by correlation id;
    /// * the *writer thread* drains the response queue, coalescing up to
    ///   `max_batch` frames into one buffered `write_all` + flush so a
    ///   burst of completions costs one syscall, not `max_batch`.
    ///
    /// With `max_inflight == 1` the window admits a single request at a
    /// time, which degenerates to the v1 one-request-per-turn behavior
    /// (responses strictly in request order).
    fn serve_connection(stream: TcpStream, core: Arc<ServerCore>, stop: Arc<AtomicBool>) {
        let cfg = core.pipeline_cfg;
        // A read timeout lets the loop observe the stop flag even while a
        // client holds the connection open without sending.
        let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(200)));
        // Response bursts are small; Nagle + the client's delayed ACK
        // would park each one for ~40ms otherwise.
        let _ = stream.set_nodelay(true);
        let Ok(mut write_half) = stream.try_clone() else {
            return;
        };

        // Encoded responses waiting for the writer. The window bounds how
        // many can be pending, so the capacity never blocks completions
        // for long; a dead writer disconnects the channel and sends fail
        // cleanly instead of blocking forever.
        let (resp_tx, resp_rx) = channel::bounded::<Vec<u8>>(cfg.max_inflight.max(cfg.max_batch));
        let pstats = Arc::clone(&core.pipeline);
        let max_batch = cfg.max_batch;
        let writer = std::thread::Builder::new()
            .name("rpc-conn-writer".into())
            .spawn(move || {
                let mut buf = Vec::new();
                while let Ok(first) = resp_rx.recv() {
                    buf.clear();
                    let mut batched = 0usize;
                    if append_frame(&mut buf, &first).is_ok() {
                        batched = 1;
                    }
                    // Opportunistically coalesce whatever has already
                    // completed, up to the batch cap — never waiting, so
                    // a lone response still flushes immediately.
                    while batched < max_batch {
                        match resp_rx.try_recv() {
                            Ok(payload) => {
                                if append_frame(&mut buf, &payload).is_ok() {
                                    batched += 1;
                                }
                            }
                            Err(_) => break,
                        }
                    }
                    if batched == 0 {
                        continue;
                    }
                    if write_half
                        .write_all(&buf)
                        .and_then(|()| write_half.flush())
                        .is_err()
                    {
                        break;
                    }
                    pstats.record_flush(batched);
                }
            });
        let Ok(writer) = writer else {
            return;
        };

        // The read-ahead window: the reader parks on `send` once
        // `max_inflight` permits are out; completing (or shedding) a
        // request returns its permit via the slot guard's drop.
        let (permit_tx, permit_rx) = channel::bounded::<()>(cfg.max_inflight);

        struct WindowSlot {
            permits: channel::Receiver<()>,
            _inflight: crate::pipeline::InflightGuard,
        }
        impl Drop for WindowSlot {
            fn drop(&mut self) {
                // Each slot owns exactly one queued permit, so this never
                // misses; dropping the slot (reply sent, request shed, or
                // closure discarded by a draining pool) reopens the window.
                let _ = self.permits.try_recv();
            }
        }

        let mut reader = BufReader::new(stream);
        loop {
            // ordering: advisory stop flag; a stale read serves at most one more frame
            if stop.load(Ordering::Relaxed) {
                break;
            }
            let frame = match read_frame(&mut reader) {
                Ok(Some(f)) => f,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    // Idle timeout between frames: re-check the stop flag.
                    continue;
                }
                Ok(None) | Err(_) => break,
            };
            let req = match Request::decode(&frame) {
                Ok(r) => r,
                Err(_) => break,
            };
            if permit_tx.send(()).is_err() {
                break;
            }
            let slot = WindowSlot {
                permits: permit_rx.clone(),
                _inflight: core.pipeline.track(),
            };
            let resp_tx = resp_tx.clone();
            core.dispatch(req, true, move |resp| {
                let payload = resp.encode();
                let _ = resp_tx.send(payload);
                drop(slot);
            });
        }
        // Dropping our sender lets the writer exit once every in-flight
        // request has replied (their closures hold the remaining clones).
        drop(resp_tx);
        let _ = writer.join();
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Transport counters.
    pub fn stats(&self) -> &RpcStats {
        &self.core.stats
    }

    /// The server's telemetry registry (`rpc.*` and `rpc.pool.*`).
    pub fn telemetry(&self) -> &dcperf_telemetry::Telemetry {
        &self.core.telemetry
    }

    /// Pipelining depth and batching telemetry (`rpc.pipeline.*`,
    /// `rpc.batch.*`) across all connections.
    pub fn pipeline(&self) -> &PipelineStats {
        &self.core.pipeline
    }

    /// Installs (or clears) a fault plan on the dispatch path; see
    /// [`InProcServer::install_fault_plan`].
    #[cfg(feature = "fault-injection")]
    pub fn install_fault_plan(&self, plan: Option<Arc<dcperf_resilience::FaultPlan>>) {
        self.core.install_fault_plan(plan);
    }

    /// Stops accepting, closes the pool, and joins server threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        // ordering: advisory stop flag; the join below is the real synchronization
        self.stop.store(true, Ordering::Relaxed);
        // Poke the accept loop so it observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::TcpClient;
    use crate::frame::Status;

    fn echo(req: &Request) -> Response {
        Response::ok(req.body.clone())
    }

    #[test]
    fn inproc_round_trip() {
        let server = InProcServer::start(echo, PoolConfig::single_lane(2));
        let client = server.client();
        let resp = client.call("echo", vec![1, 2, 3]).unwrap();
        assert_eq!(resp.body, vec![1, 2, 3]);
        assert_eq!(resp.status, Status::Ok);
        server.shutdown();
    }

    #[test]
    fn inproc_concurrent_clients() {
        let server = InProcServer::start(echo, PoolConfig::single_lane(4));
        let mut handles = Vec::new();
        for t in 0..8 {
            let client = server.client();
            handles.push(std::thread::spawn(move || {
                for i in 0..100u8 {
                    let resp = client.call("echo", vec![t, i]).unwrap();
                    assert_eq!(resp.body, vec![t, i]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.stats().responses(), 800);
        server.shutdown();
    }

    #[test]
    fn classifier_routes_methods() {
        use std::sync::atomic::AtomicU64;
        let slow_calls = Arc::new(AtomicU64::new(0));
        let sc = Arc::clone(&slow_calls);
        let server = InProcServer::start_with_classifier(
            move |req: &Request| {
                if req.method == "miss" {
                    sc.fetch_add(1, Ordering::Relaxed);
                }
                Response::ok(vec![])
            },
            |req: &Request| {
                if req.method == "miss" {
                    Lane::Slow
                } else {
                    Lane::Fast
                }
            },
            PoolConfig::fast_slow(1, 1),
        );
        let client = server.client();
        client.call("hit", vec![]).unwrap();
        client.call("miss", vec![]).unwrap();
        client.call("miss", vec![]).unwrap();
        assert_eq!(slow_calls.load(Ordering::Relaxed), 2);
        server.shutdown();
    }

    #[test]
    fn tcp_round_trip() {
        let server = TcpServer::bind("127.0.0.1:0", echo, PoolConfig::single_lane(2)).unwrap();
        let addr = server.local_addr();
        let mut client = TcpClient::connect(addr).unwrap();
        for i in 0..50u8 {
            let resp = client.call("echo", vec![i; 10]).unwrap();
            assert_eq!(resp.body, vec![i; 10]);
        }
        server.shutdown();
    }

    #[test]
    fn tcp_multiple_connections() {
        let server = TcpServer::bind("127.0.0.1:0", echo, PoolConfig::single_lane(4)).unwrap();
        let addr = server.local_addr();
        let mut handles = Vec::new();
        for t in 0..4 {
            handles.push(std::thread::spawn(move || {
                let mut client = TcpClient::connect(addr).unwrap();
                for i in 0..25u8 {
                    let resp = client.call("echo", vec![t, i]).unwrap();
                    assert_eq!(resp.body, vec![t, i]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn tcp_application_error_propagates() {
        let server = TcpServer::bind(
            "127.0.0.1:0",
            |_req: &Request| Response::error("nope"),
            PoolConfig::single_lane(1),
        )
        .unwrap();
        let mut client = TcpClient::connect(server.local_addr()).unwrap();
        let err = client.call("x", vec![]).unwrap_err();
        assert!(err.to_string().contains("nope"));
        server.shutdown();
    }

    #[test]
    fn expired_deadline_is_shed_with_status() {
        // A handler that must never run for an already-expired request.
        let ran = Arc::new(AtomicBool::new(false));
        let ran2 = Arc::clone(&ran);
        let server = InProcServer::start(
            move |_req: &Request| {
                ran2.store(true, Ordering::Relaxed);
                Response::ok(vec![])
            },
            PoolConfig::single_lane(1),
        );
        let client = server.client();
        // 1us budget: expired by the time dispatch sees it (encode +
        // decode alone take longer).
        let err = client
            .call_with_deadline("x", vec![], std::time::Duration::from_micros(1))
            .unwrap_err();
        assert!(matches!(err, crate::frame::RpcError::DeadlineExceeded));
        assert!(!ran.load(Ordering::Relaxed), "expired work must not run");
        assert_eq!(server.stats().deadline_shed(), 1);
        assert_eq!(server.stats().deadline_exceeded(), 1);
        server.shutdown();
    }

    #[test]
    fn generous_deadline_completes_normally() {
        let server = InProcServer::start(echo, PoolConfig::single_lane(2));
        let client = server.client();
        let resp = client
            .call_with_deadline("echo", vec![7], std::time::Duration::from_secs(5))
            .unwrap();
        assert_eq!(resp.body, vec![7]);
        assert_eq!(server.stats().deadline_shed(), 0);
        server.shutdown();
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn installed_fault_plan_injects_errors() {
        use dcperf_resilience::FaultPlan;
        let server = InProcServer::start(echo, PoolConfig::single_lane(2));
        // error_rate 1.0: every request fails by injection.
        let plan = Arc::new(FaultPlan::new(7).with_error_rate(1.0));
        server.install_fault_plan(Some(Arc::clone(&plan)));
        let client = server.client();
        let err = client.call("echo", vec![1]).unwrap_err();
        assert!(matches!(err, crate::frame::RpcError::Application(_)));
        assert_eq!(plan.injected_errors(), 1);
        // Clearing the plan restores normal service.
        server.install_fault_plan(None);
        assert!(client.call("echo", vec![2]).is_ok());
        server.shutdown();
    }

    #[test]
    fn tcp_shutdown_is_idempotent_via_drop() {
        let server = TcpServer::bind("127.0.0.1:0", echo, PoolConfig::single_lane(1)).unwrap();
        drop(server); // must not hang
    }
}
